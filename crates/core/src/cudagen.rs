//! CUDA-C code generation for annotated loops — the textual artifact the
//! paper's code translator produces ("annotated loops are completely
//! translated to CUDA kernels and necessary data communication calls are
//! inserted; the original loops are replaced by calls to invoke the
//! generated kernels through JNI", §III-B).
//!
//! This reproduction *executes* kernels on the simulator rather than
//! through nvcc, but the generator emits the equivalent CUDA source so the
//! translation itself is inspectable: the loop index is remapped to the
//! CUDA thread id, live-in/live-out variables become kernel parameters, and
//! the host stub carries the `cudaMemcpy` calls derived from the data
//! clauses (or from the automatic live-in/live-out classification).

use crate::compile::Compiled;
use japonica_analysis::LoopAnalysis;
use japonica_ir::{
    BinOp, Expr, ForLoop, Function, Intrinsic, LoopId, ParamTy, Program, Stmt, Ty, UnOp, Value,
    VarId,
};
use std::collections::BTreeSet;
use std::fmt::Write;

/// Render the CUDA translation of an annotated loop: the `__global__`
/// kernel, any `__device__` helper functions it calls, and the host-side
/// launch stub with its data-movement calls.
pub fn cuda_translation(
    program: &Program,
    func: &Function,
    loop_: &ForLoop,
    analysis: &LoopAnalysis,
) -> String {
    let mut g = Gen {
        program,
        func,
        out: String::new(),
    };
    g.render(loop_, analysis);
    g.out
}

impl Compiled {
    /// CUDA source for one annotated loop (kernel + host stub), or `None`
    /// for unknown/un-annotated loops.
    pub fn cuda_source(&self, id: LoopId) -> Option<String> {
        let (_, func, loop_) = self.program.find_loop(id)?;
        let analysis = self.analyses.get(&id)?;
        Some(cuda_translation(&self.program, func, loop_, analysis))
    }
}

struct Gen<'p> {
    program: &'p Program,
    func: &'p Function,
    out: String,
}

fn c_ty(t: Ty) -> &'static str {
    match t {
        Ty::Bool => "bool",
        Ty::Int => "int",
        Ty::Long => "long long",
        Ty::Float => "float",
        Ty::Double => "double",
    }
}

fn c_binop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::UShr => ">>", // emitted with an unsigned cast on the LHS
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::LAnd => "&&",
        BinOp::LOr => "||",
    }
}

impl Gen<'_> {
    fn name(&self, v: VarId) -> String {
        self.func.var_name(v)
    }

    fn render(&mut self, loop_: &ForLoop, analysis: &LoopAnalysis) {
        let kernel_name = format!("{}_{}", self.func.name, loop_.id);
        // Parameters: live-in ∪ live-out, arrays as device pointers.
        let mut params: Vec<VarId> = Vec::new();
        for v in analysis
            .classes
            .live_in
            .iter()
            .chain(&analysis.classes.live_out)
        {
            if !params.contains(v) {
                params.push(*v);
            }
        }
        let param_list: Vec<String> = params
            .iter()
            .map(|&v| {
                let is_array = analysis
                    .classes
                    .uses
                    .get(&v)
                    .map(|u| u.is_array)
                    .unwrap_or(false);
                // Parameter types come from the function signature when the
                // variable is a parameter; locals keep `double`/`int`
                // defaults recovered from declarations (the translator sees
                // the typed AST; here we consult the signature).
                let ty = self
                    .func
                    .params
                    .iter()
                    .find(|p| p.var == v)
                    .map(|p| match p.ty {
                        ParamTy::Scalar(t) | ParamTy::Array(t) => t,
                    })
                    .unwrap_or(Ty::Double);
                if is_array {
                    format!("{}* {}", c_ty(ty), self.name(v))
                } else {
                    format!("{} {}", c_ty(ty), self.name(v))
                }
            })
            .collect();

        // __device__ helpers for user functions called from the body.
        let callees = self.collect_callees(&loop_.body);
        for fid in &callees {
            let f = self.program.function(*fid).expect("callee exists");
            self.render_device_fn(f);
        }

        // ---- the kernel ----
        let ivar = self.name(loop_.var);
        writeln!(
            self.out,
            "extern \"C\" __global__ void {kernel_name}({}, int __start, int __step, int __lo, int __hi)",
            param_list.join(", ")
        )
        .ok();
        self.out.push_str("{\n");
        self.out.push_str(
            "    int __k = blockIdx.x * blockDim.x + threadIdx.x + __lo;\n    if (__k >= __hi) return;\n",
        );
        writeln!(
            self.out,
            "    int {ivar} = __start + __k * __step;  /* loop index remapped to thread id */"
        )
        .ok();
        for s in &loop_.body {
            self.stmt(s, 1);
        }
        self.out.push_str("}\n\n");

        // ---- the host stub ----
        writeln!(self.out, "/* host stub (invoked from Java through JNI) */").ok();
        writeln!(self.out, "void launch_{kernel_name}(...)").ok();
        self.out.push_str("{\n");
        for v in analysis.classes.arrays_in() {
            writeln!(
                self.out,
                "    cudaMemcpy(d_{0}, {0}, bytes_{0}, cudaMemcpyHostToDevice);",
                self.name(v)
            )
            .ok();
        }
        self.out.push_str(
            "    int __n = __hi - __lo;\n    dim3 block(256);\n    dim3 grid((__n + 255) / 256);\n",
        );
        writeln!(
            self.out,
            "    {kernel_name}<<<grid, block>>>({}, __start, __step, __lo, __hi);",
            params
                .iter()
                .map(|&v| {
                    let is_array = analysis
                        .classes
                        .uses
                        .get(&v)
                        .map(|u| u.is_array)
                        .unwrap_or(false);
                    if is_array {
                        format!("d_{}", self.name(v))
                    } else {
                        self.name(v)
                    }
                })
                .collect::<Vec<_>>()
                .join(", ")
        )
        .ok();
        for v in analysis.classes.arrays_out() {
            writeln!(
                self.out,
                "    cudaMemcpy({0}, d_{0}, bytes_{0}, cudaMemcpyDeviceToHost);",
                self.name(v)
            )
            .ok();
        }
        self.out.push_str("}\n");
    }

    fn collect_callees(&self, body: &[Stmt]) -> BTreeSet<japonica_ir::FnId> {
        let mut out = BTreeSet::new();
        for s in body {
            s.walk_exprs(&mut |e| {
                if let Expr::Call(fid, _) = e {
                    out.insert(*fid);
                }
            });
        }
        out
    }

    fn render_device_fn(&mut self, f: &Function) {
        let ret = f.ret.map(c_ty).unwrap_or("void");
        let params: Vec<String> = f
            .params
            .iter()
            .map(|p| match p.ty {
                ParamTy::Scalar(t) => format!("{} {}", c_ty(t), p.name),
                ParamTy::Array(t) => format!("{}* {}", c_ty(t), p.name),
            })
            .collect();
        writeln!(
            self.out,
            "__device__ {ret} {}({})",
            f.name,
            params.join(", ")
        )
        .ok();
        self.out.push_str("{\n");
        // Render with the callee's own variable names.
        let mut inner = Gen {
            program: self.program,
            func: f,
            out: std::mem::take(&mut self.out),
        };
        for s in &f.body {
            inner.stmt(s, 1);
        }
        self.out = inner.out;
        self.out.push_str("}\n\n");
    }

    fn indent(&mut self, depth: usize) {
        for _ in 0..depth {
            self.out.push_str("    ");
        }
    }

    fn stmt(&mut self, s: &Stmt, depth: usize) {
        match s {
            Stmt::DeclVar { var, ty, init } => {
                self.indent(depth);
                let name = self.name(*var);
                match init {
                    Some(e) => {
                        let e = self.expr(e);
                        writeln!(self.out, "{} {name} = {e};", c_ty(*ty)).ok();
                    }
                    None => {
                        writeln!(self.out, "{} {name};", c_ty(*ty)).ok();
                    }
                }
            }
            Stmt::NewArray { var, elem, len } => {
                self.indent(depth);
                let name = self.name(*var);
                let len = self.expr(len);
                writeln!(self.out, "{}* {name} = new {0}[{len}];", c_ty(*elem)).ok();
            }
            Stmt::Assign { var, value } => {
                self.indent(depth);
                let name = self.name(*var);
                let e = self.expr(value);
                writeln!(self.out, "{name} = {e};").ok();
            }
            Stmt::Store {
                array,
                index,
                value,
                ..
            } => {
                self.indent(depth);
                let a = self.name(*array);
                let i = self.expr(index);
                let v = self.expr(value);
                writeln!(self.out, "{a}[{i}] = {v};").ok();
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.indent(depth);
                let c = self.expr(cond);
                writeln!(self.out, "if ({c}) {{").ok();
                for s in then_branch {
                    self.stmt(s, depth + 1);
                }
                if else_branch.is_empty() {
                    self.indent(depth);
                    self.out.push_str("}\n");
                } else {
                    self.indent(depth);
                    self.out.push_str("} else {\n");
                    for s in else_branch {
                        self.stmt(s, depth + 1);
                    }
                    self.indent(depth);
                    self.out.push_str("}\n");
                }
            }
            Stmt::For(l) => {
                self.indent(depth);
                let v = self.name(l.var);
                let (s0, e0, st) = (self.expr(&l.start), self.expr(&l.end), self.expr(&l.step));
                writeln!(self.out, "for (int {v} = {s0}; {v} < {e0}; {v} += {st}) {{").ok();
                for s in &l.body {
                    self.stmt(s, depth + 1);
                }
                self.indent(depth);
                self.out.push_str("}\n");
            }
            Stmt::While { cond, body } => {
                self.indent(depth);
                let c = self.expr(cond);
                writeln!(self.out, "while ({c}) {{").ok();
                for s in body {
                    self.stmt(s, depth + 1);
                }
                self.indent(depth);
                self.out.push_str("}\n");
            }
            Stmt::Return(e) => {
                self.indent(depth);
                match e {
                    Some(e) => {
                        let e = self.expr(e);
                        writeln!(self.out, "return {e};").ok();
                    }
                    None => self.out.push_str("return;\n"),
                }
            }
            Stmt::Break => {
                self.indent(depth);
                self.out.push_str("break;\n");
            }
            Stmt::Continue => {
                self.indent(depth);
                self.out.push_str("continue;\n");
            }
            Stmt::ExprStmt(e) => {
                self.indent(depth);
                let e = self.expr(e);
                writeln!(self.out, "{e};").ok();
            }
        }
    }

    fn expr(&self, e: &Expr) -> String {
        match e {
            Expr::Const(v) => match v {
                Value::Bool(b) => b.to_string(),
                Value::Int(x) => x.to_string(),
                Value::Long(x) => format!("{x}LL"),
                Value::Float(x) => format!("{x:?}f"),
                Value::Double(x) => format!("{x:?}"),
                Value::Array(_) => "/*array literal*/0".into(),
            },
            Expr::Var(v) => self.name(*v),
            Expr::Unary(op, a) => {
                let a = self.expr(a);
                match op {
                    UnOp::Neg => format!("(-{a})"),
                    UnOp::Not => format!("(!{a})"),
                    UnOp::BitNot => format!("(~{a})"),
                }
            }
            Expr::Binary(BinOp::UShr, a, b) => {
                // Java >>> : unsigned shift via cast.
                format!(
                    "((int)(((unsigned int){}) >> {}))",
                    self.expr(a),
                    self.expr(b)
                )
            }
            Expr::Binary(op, a, b) => {
                format!("({} {} {})", self.expr(a), c_binop(*op), self.expr(b))
            }
            Expr::Cast(ty, a) => format!("(({}){})", c_ty(*ty), self.expr(a)),
            Expr::Index { array, index } => {
                format!("{}[{}]", self.name(*array), self.expr(index))
            }
            Expr::Len(v) => format!("len_{}", self.name(*v)),
            Expr::Intrinsic(f, args) => {
                let args: Vec<String> = args.iter().map(|a| self.expr(a)).collect();
                let name = match f {
                    Intrinsic::Exp => "exp",
                    Intrinsic::Log => "log",
                    Intrinsic::Sqrt => "sqrt",
                    Intrinsic::Pow => "pow",
                    Intrinsic::Sin => "sin",
                    Intrinsic::Cos => "cos",
                    Intrinsic::Abs => "fabs",
                    Intrinsic::Max => "fmax",
                    Intrinsic::Min => "fmin",
                    Intrinsic::Floor => "floor",
                    Intrinsic::Ceil => "ceil",
                };
                format!("{name}({})", args.join(", "))
            }
            Expr::Call(fid, args) => {
                let f = self
                    .program
                    .function(*fid)
                    .map(|f| f.name.clone())
                    .unwrap_or_else(|| fid.to_string());
                let args: Vec<String> = args.iter().map(|a| self.expr(a)).collect();
                format!("{f}({})", args.join(", "))
            }
            Expr::Ternary(c, t, f) => {
                format!("({} ? {} : {})", self.expr(c), self.expr(t), self.expr(f))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::compile::compile;

    #[test]
    fn saxpy_kernel_has_thread_remap_and_memcpys() {
        let c = compile(
            "static void saxpy(double[] x, double[] y, double a, int n) {
                /* acc parallel copyin(x[0:n]) copyout(y[0:n]) */
                for (int i = 0; i < n; i++) { y[i] = a * x[i] + y[i]; }
            }",
        )
        .unwrap();
        let id = c.annotated_loops_of("saxpy")[0];
        let cuda = c.cuda_source(id).unwrap();
        assert!(cuda.contains("__global__ void saxpy_L0("));
        assert!(cuda.contains("blockIdx.x * blockDim.x + threadIdx.x"));
        assert!(cuda.contains("int i = __start + __k * __step;"));
        assert!(cuda.contains("y[i] = ((a * x[i]) + y[i]);"));
        assert!(cuda.contains("cudaMemcpyHostToDevice"));
        assert!(cuda.contains("cudaMemcpy(y, d_y"));
        assert!(cuda.contains("<<<grid, block>>>"));
        assert!(cuda.contains("double* x"));
    }

    #[test]
    fn helper_functions_become_device_functions() {
        let c = compile(
            "
            static double sq(double x) { return x * x; }
            static void f(double[] a, int n) {
                /* acc parallel */
                for (int i = 0; i < n; i++) { a[i] = sq(a[i]); }
            }",
        )
        .unwrap();
        let id = c.annotated_loops_of("f")[0];
        let cuda = c.cuda_source(id).unwrap();
        assert!(cuda.contains("__device__ double sq(double x)"));
        assert!(cuda.contains("a[i] = sq(a[i]);"));
    }

    #[test]
    fn ushr_emits_unsigned_cast() {
        let c = compile(
            "static void f(int[] a, int n) {
                /* acc parallel */
                for (int i = 0; i < n; i++) { a[i] = a[i] >>> 3; }
            }",
        )
        .unwrap();
        let id = c.annotated_loops_of("f")[0];
        let cuda = c.cuda_source(id).unwrap();
        assert!(cuda.contains("(unsigned int)"), "{cuda}");
    }

    #[test]
    fn every_bundled_benchmark_generates_cuda() {
        // The full workload suite round-trips through the generator.
        for src in [
            japonica_test_sources::GEMM_LIKE,
            japonica_test_sources::DIVERGENT,
        ] {
            let c = compile(src).unwrap();
            for f in c.program.functions.iter() {
                for l in f.all_loops() {
                    if l.is_annotated() {
                        let cuda = c.cuda_source(l.id).unwrap();
                        assert!(cuda.contains("__global__"));
                    }
                }
            }
        }
    }

    mod japonica_test_sources {
        pub const GEMM_LIKE: &str =
            "static void gemm(double[] a, double[] b, double[] c, int m, int d) {
            /* acc parallel */
            for (int i = 0; i < m; i++) {
                for (int j = 0; j < d; j++) {
                    double s = 0.0;
                    for (int k = 0; k < d; k++) { s += a[i * d + k] * b[k * d + j]; }
                    c[i * d + j] = s;
                }
            }
        }";
        pub const DIVERGENT: &str = "static void f(int[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) {
                int x = i;
                while (x > 1) { if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; } }
                a[i] = i > 5 ? x : 0 - x;
            }
        }";
    }

    #[test]
    fn cuda_source_for_unknown_loop_is_none() {
        let c = compile("static void f() { }").unwrap();
        assert!(c.cuda_source(japonica_ir::LoopId(99)).is_none());
    }
}

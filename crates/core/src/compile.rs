//! The compile-time half of Japonica: translation + static analysis.

use japonica_analysis::{analyze_program, build_pdg, LoopAnalysis, Pdg};
use japonica_frontend::CompileError;
use japonica_ir::{FnId, LoopId, Program};
use japonica_lint::{LintConfig, LintReport};
use std::collections::BTreeMap;

/// A compiled program: IR plus everything the static phases produced.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The lowered program.
    pub program: Program,
    /// Static analysis of every annotated loop.
    pub analyses: BTreeMap<LoopId, LoopAnalysis>,
    /// Per-function program dependence graph over annotated loops.
    pub pdgs: BTreeMap<FnId, Pdg>,
    /// Annotation audit findings (never fatal — the runtime degrades
    /// rather than trusts, but the findings explain where and why).
    pub lints: LintReport,
}

/// Compile annotated MiniJava source: lex, parse, type-check, lower to IR,
/// then statically analyze every annotated loop, build the per-function
/// PDGs and audit the annotations.
pub fn compile(source: &str) -> Result<Compiled, CompileError> {
    let program = japonica_frontend::compile_source(source)?;
    let analyses = analyze_program(&program);
    let pdgs = program
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (FnId(i as u32), build_pdg(f)))
        .collect();
    let lint_cfg = LintConfig {
        // Match the simulated CPU the runtime will actually schedule on.
        max_threads: japonica_cpuexec::CpuConfig::default().cores,
        ..LintConfig::default()
    };
    let lints = japonica_lint::lint(&program, &lint_cfg);
    Ok(Compiled {
        program,
        analyses,
        pdgs,
        lints,
    })
}

impl Compiled {
    /// Human-readable translation report: each annotated loop with its
    /// variable classification and static determination — what the paper's
    /// code translator decides before anything runs.
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for f in &self.program.functions {
            let loops: Vec<_> = f
                .all_loops()
                .into_iter()
                .filter(|l| l.is_annotated())
                .collect();
            if loops.is_empty() {
                continue;
            }
            writeln!(out, "function `{}`:", f.name).ok();
            for l in loops {
                let a = match self.analyses.get(&l.id) {
                    Some(a) => a,
                    None => continue,
                };
                let names = |vs: &[japonica_ir::VarId]| -> String {
                    vs.iter()
                        .map(|v| f.var_name(*v))
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                writeln!(
                    out,
                    "  {}: live-in [{}], live-out [{}], temp [{}]",
                    l.id,
                    names(&a.classes.live_in),
                    names(&a.classes.live_out),
                    names(&a.classes.temp),
                )
                .ok();
                let det = match &a.determination {
                    japonica_analysis::Determination::Doall => "deterministic DOALL".to_string(),
                    japonica_analysis::Determination::Deterministic(s) => format!(
                        "deterministic dependence (TD: {}, FD: {})",
                        s.true_dep, s.false_dep
                    ),
                    japonica_analysis::Determination::Uncertain { reasons, .. } => {
                        format!(
                            "uncertain — profile on GPU ({} unresolved pairs)",
                            reasons.len()
                        )
                    }
                };
                writeln!(out, "      determination: {det}").ok();
            }
        }
        out
    }

    /// The analysis of one loop.
    pub fn analysis(&self, id: LoopId) -> Option<&LoopAnalysis> {
        self.analyses.get(&id)
    }

    /// Ids of the annotated loops of `function`, in source order.
    pub fn annotated_loops_of(&self, function: &str) -> Vec<LoopId> {
        self.program
            .function_by_name(function)
            .map(|(_, f)| {
                f.all_loops()
                    .into_iter()
                    .filter(|l| l.is_annotated())
                    .map(|l| l.id)
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        static void pipeline(double[] a, double[] t, double[] c, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) { t[i] = a[i] * 2.0; }
            /* acc parallel */
            for (int i = 0; i < n; i++) { c[i] = t[i] + 1.0; }
        }
    "#;

    #[test]
    fn compile_produces_analyses_and_pdg() {
        let c = compile(SRC).unwrap();
        assert_eq!(c.analyses.len(), 2);
        assert!(c.analyses.values().all(|a| a.determination.is_doall()));
        let pdg = &c.pdgs[&FnId(0)];
        assert_eq!(pdg.nodes.len(), 2);
        assert_eq!(pdg.edges.len(), 1);
    }

    #[test]
    fn describe_mentions_classes_and_determination() {
        let c = compile(SRC).unwrap();
        let d = c.describe();
        assert!(d.contains("pipeline"));
        assert!(d.contains("DOALL"));
        assert!(d.contains("live-in"));
    }

    #[test]
    fn annotated_loops_of_returns_source_order() {
        let c = compile(SRC).unwrap();
        let ids = c.annotated_loops_of("pipeline");
        assert_eq!(ids.len(), 2);
        assert!(ids[0] < ids[1]);
        assert!(c.annotated_loops_of("nope").is_empty());
    }

    #[test]
    fn compile_error_propagates() {
        assert!(compile("static void f() { x = 1; }").is_err());
    }

    #[test]
    fn clean_source_compiles_without_lints() {
        let c = compile(SRC).unwrap();
        assert!(c.lints.diagnostics.is_empty(), "got {:?}", c.lints);
    }

    #[test]
    fn lints_ride_on_the_compile_result() {
        let c = compile(
            "static void f(double[] a, int n) {
                /* acc parallel threads(99) */
                for (int i = 0; i < n; i++) { a[i] = 1.0; }
            }",
        )
        .unwrap();
        assert_eq!(c.lints.diagnostics.len(), 1);
        assert_eq!(c.lints.diagnostics[0].rule, "L007");
        // The limit comes from the simulated CPU, not the lint default.
        assert!(c.lints.diagnostics[0]
            .message
            .contains(&japonica_cpuexec::CpuConfig::default().cores.to_string()));
    }
}

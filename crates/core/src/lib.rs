//! # japonica
//!
//! **Japonica** — *Java with Auto-Parallelization ON graphIcs Coprocessing
//! Architecture* — is a compiler framework and runtime system that lets an
//! annotated sequential MiniJava program scale transparently across a
//! heterogeneous CPU + GPU platform, reproducing the ICPP 2013 paper by
//! Han, Zhang, Lam and Wang.
//!
//! The pipeline mirrors the paper's Fig. 1:
//!
//! 1. **Code translator** ([`compile()`]) — parses the annotated source,
//!    classifies variables (live-in / live-out / temp), compresses memory
//!    accesses into linear constraints of the iteration ID, and runs the
//!    WAW / RAW conflict tests. Every annotated loop comes out *DOALL*,
//!    *deterministically dependent*, or *uncertain*.
//! 2. **Profiler** — uncertain loops are executed on the simulated GPU with
//!    full access instrumentation to measure their true/false dependency
//!    density (von Praun's quantitative model).
//! 3. **DOALL parallelizer / speculator** — DOALL loops run in parallel on
//!    both devices; loops with modest true-dependence density run under
//!    GPU-TLS; loops with only false dependences run privatized.
//! 4. **Task scheduler** ([`Runtime::run`]) — distributes loop chunks over
//!    CPU and GPU with the *task sharing* scheme, or whole (sub-)loops with
//!    the *task stealing* scheme, guided by the PDG.
//!
//! ```
//! use japonica::{compile, Runtime, RuntimeConfig};
//! use japonica::ir::{Heap, Value};
//!
//! let compiled = compile(r#"
//!     static void scale(double[] a, double[] b, int n) {
//!         /* acc parallel copyin(a[0:n]) copyout(b[0:n]) */
//!         for (int i = 0; i < n; i++) { b[i] = a[i] * 2.0 + 1.0; }
//!     }
//! "#).unwrap();
//!
//! let mut heap = Heap::new();
//! let a = heap.alloc_doubles(&vec![1.0; 4096]);
//! let b = heap.alloc_doubles(&vec![0.0; 4096]);
//! let runtime = Runtime::new(RuntimeConfig::default());
//! let report = runtime
//!     .run(&compiled, "scale", &[Value::Array(a), Value::Array(b), Value::Int(4096)], &mut heap)
//!     .unwrap();
//! assert_eq!(heap.read_doubles(b).unwrap()[0], 3.0);
//! assert_eq!(report.loops.len(), 1);
//! ```

pub mod baseline;
pub mod compile;
pub mod cudagen;
pub(crate) mod exec;
pub mod report;
pub mod runtime;

pub use baseline::{run_baseline, Baseline};
pub use cudagen::cuda_translation;

/// One-shot convenience: compile `source` and run `function` with `args`
/// against `heap` under a default-configured [`Runtime`].
///
/// ```
/// use japonica::ir::{Heap, Value};
/// let mut heap = Heap::new();
/// let a = heap.alloc_doubles(&[1.0, 2.0, 3.0]);
/// let report = japonica::run_source(
///     "static void twice(double[] a, int n) {
///         /* acc parallel */
///         for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0; }
///     }",
///     "twice",
///     &[Value::Array(a), Value::Int(3)],
///     &mut heap,
/// ).unwrap();
/// assert_eq!(heap.read_doubles(a).unwrap(), vec![2.0, 4.0, 6.0]);
/// assert_eq!(report.loops.len(), 1);
/// ```
pub fn run_source(
    source: &str,
    function: &str,
    args: &[ir::Value],
    heap: &mut ir::Heap,
) -> Result<RunReport, Box<dyn std::error::Error>> {
    let compiled = compile(source)?;
    let report = Runtime::new(RuntimeConfig::default()).run(&compiled, function, args, heap)?;
    Ok(report)
}
pub use compile::{compile, Compiled};
pub use report::RunReport;
pub use runtime::{Runtime, RuntimeConfig};

/// Re-export of the static analysis.
pub use japonica_analysis as analysis;
/// Re-export of the CPU executor.
pub use japonica_cpuexec as cpuexec;
/// Re-export of the fault-injection model (plans, stats, resilience knobs).
pub use japonica_faults as faults;
/// Re-export of the front end (errors, AST).
pub use japonica_frontend as frontend;
/// Re-export of the GPU simulator.
pub use japonica_gpusim as gpusim;
/// Re-export of the IR crate (values, heap, programs).
pub use japonica_ir as ir;
/// Re-export of the annotation auditor.
pub use japonica_lint as lint;
/// Re-export of the dynamic profiler.
pub use japonica_profiler as profiler;
/// Re-export of the task scheduler.
pub use japonica_scheduler as scheduler;
/// Re-export of the GPU-TLS engine.
pub use japonica_tls as tls;

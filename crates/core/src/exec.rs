//! The shared function executor: runs glue statements sequentially (with
//! cost accounting) while intercepting annotated loops at *any* nesting
//! depth and handing maximal consecutive runs of them to a dispatcher —
//! the Japonica scheduler or one of the baseline executors.
//!
//! Nested interception matters for level-synchronous and time-stepped
//! codes (BFS, iterative solvers): their annotated inner loops must be
//! scheduled on every encounter of the enclosing sequential loop.

use crate::compile::Compiled;
use crate::report::RunReport;
use japonica_cpuexec::CpuConfig;
use japonica_ir::{
    CountingBackend, Env, ExecError, Flow, ForLoop, Heap, HeapBackend, Interp, ParamTy, Stmt, Value,
};
use japonica_scheduler::SchedError;

/// Called with each maximal run of consecutive annotated loops.
pub(crate) type Dispatch<'d> =
    dyn FnMut(&[&ForLoop], &mut Env, &mut Heap, &mut RunReport) -> Result<(), SchedError> + 'd;

/// Execute `function` with `args`, walking glue sequentially and routing
/// annotated-loop runs through `dispatch`.
pub(crate) fn execute_function(
    compiled: &Compiled,
    function: &str,
    args: &[Value],
    heap: &mut Heap,
    cpu: &CpuConfig,
    dispatch: &mut Dispatch<'_>,
) -> Result<RunReport, SchedError> {
    let (_, f) = compiled
        .program
        .function_by_name(function)
        .ok_or_else(|| ExecError::UnknownFunction(function.to_string()))?;
    if args.len() != f.params.len() {
        return Err(ExecError::ArityMismatch {
            function: f.name.clone(),
            expected: f.params.len(),
            found: args.len(),
        }
        .into());
    }
    let mut env = Env::with_slots(f.num_vars);
    for (p, &a) in f.params.iter().zip(args) {
        let bound = match p.ty {
            ParamTy::Scalar(t) => a.cast(t).ok_or_else(|| ExecError::TypeMismatch {
                expected: t.to_string(),
                found: format!("{a}"),
            })?,
            ParamTy::Array(_) => a,
        };
        env.set(p.var, bound);
    }
    let mut report = RunReport::default();
    let mut exec = Exec {
        interp: Interp::new(&compiled.program),
        cpu,
        dispatch,
    };
    let flow = exec.exec_stmts(&f.body, &mut env, heap, &mut report)?;
    if let Flow::Return(v) = flow {
        report.ret = v;
    }
    report.total_s = report.glue_s + report.profiling_s + report.loops_wall_s();
    Ok(report)
}

fn is_annotated_for(s: &Stmt) -> bool {
    matches!(s, Stmt::For(l) if l.is_annotated())
}

fn contains_annotated(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| {
        let mut found = false;
        s.walk(&mut |s| {
            if is_annotated_for(s) {
                found = true;
            }
        });
        found
    })
}

struct Exec<'a, 'd> {
    interp: Interp<'a>,
    cpu: &'a CpuConfig,
    dispatch: &'a mut Dispatch<'d>,
}

impl Exec<'_, '_> {
    fn glue<T>(
        &self,
        report: &mut RunReport,
        heap: &mut Heap,
        f: impl FnOnce(&Interp, &mut CountingBackend<HeapBackend>) -> Result<T, ExecError>,
    ) -> Result<T, SchedError> {
        let mut be = CountingBackend::new(HeapBackend::new(heap));
        let out = f(&self.interp, &mut be)?;
        report.glue_s += self.cpu.cycles_to_seconds(be.cycles(&self.cpu.cost));
        Ok(out)
    }

    fn exec_stmts(
        &mut self,
        stmts: &[Stmt],
        env: &mut Env,
        heap: &mut Heap,
        report: &mut RunReport,
    ) -> Result<Flow, SchedError> {
        let mut i = 0;
        while i < stmts.len() {
            // Maximal run of consecutive annotated loops.
            let mut j = i;
            while j < stmts.len() && is_annotated_for(&stmts[j]) {
                j += 1;
            }
            if j > i {
                let loops: Vec<&ForLoop> = stmts[i..j]
                    .iter()
                    .map(|s| match s {
                        Stmt::For(l) => l,
                        _ => unreachable!(),
                    })
                    .collect();
                (self.dispatch)(&loops, env, heap, report)?;
                i = j;
                continue;
            }
            match self.exec_stmt(&stmts[i], env, heap, report)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
            i += 1;
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        s: &Stmt,
        env: &mut Env,
        heap: &mut Heap,
        report: &mut RunReport,
    ) -> Result<Flow, SchedError> {
        match s {
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } if contains_annotated(then_branch) || contains_annotated(else_branch) => {
                let c = self.glue(report, heap, |interp, be| interp.eval(cond, env, be, 0))?;
                let taken = c.as_bool().ok_or_else(|| ExecError::TypeMismatch {
                    expected: "boolean".into(),
                    found: format!("{c}"),
                })?;
                if taken {
                    self.exec_stmts(then_branch, env, heap, report)
                } else {
                    self.exec_stmts(else_branch, env, heap, report)
                }
            }
            Stmt::While { cond, body } if contains_annotated(body) => {
                loop {
                    let c = self.glue(report, heap, |interp, be| interp.eval(cond, env, be, 0))?;
                    if !c.as_bool().unwrap_or(false) {
                        break;
                    }
                    match self.exec_stmts(body, env, heap, report)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For(l) if !l.is_annotated() && contains_annotated(&l.body) => {
                let bounds =
                    self.glue(report, heap, |interp, be| interp.loop_bounds(l, env, be))?;
                for k in 0..bounds.trip() {
                    env.set(l.var, Value::Int(bounds.value_of(k) as i32));
                    match self.exec_stmts(&l.body, env, heap, report)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            // Fast path: nothing annotated inside — plain interpretation.
            other => self.glue(report, heap, |interp, be| {
                interp.exec_stmt(other, env, be, 0)
            }),
        }
    }
}

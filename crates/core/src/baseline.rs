//! Baseline executors: the comparison points of the paper's evaluation
//! (best serial CPU, 16-thread CPU, GPU-only, naive 50/50 split).

use crate::compile::Compiled;
use crate::report::RunReport;
use crate::runtime::RuntimeConfig;
use japonica_ir::{Env, Heap, Value};
use japonica_profiler::LoopProfile;
use japonica_scheduler::sharing::{run_cpu_only, run_cpu_serial, run_fixed_split, run_gpu_only};
use japonica_scheduler::{LoopTask, SchedError};
use std::collections::BTreeMap;

/// The baseline to execute every annotated loop with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Baseline {
    /// Best serial: 1 CPU thread.
    Serial,
    /// Multithreaded CPU with the given thread count (the paper uses 16).
    CpuParallel(u32),
    /// GPU-only, like a hand-ported CUDA version (synchronous transfers).
    GpuOnly,
    /// Fixed cooperative split: this fraction to the GPU, the rest to the
    /// CPU, no stealing ("CPU 50% + GPU 50%" uses 0.5).
    FixedSplit(f64),
}

impl std::fmt::Display for Baseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Baseline::Serial => write!(f, "serial CPU"),
            Baseline::CpuParallel(t) => write!(f, "CPU-{t}"),
            Baseline::GpuOnly => write!(f, "GPU-only"),
            Baseline::FixedSplit(frac) => write!(
                f,
                "fixed {:.0}/{:.0} split",
                frac * 100.0,
                (1.0 - frac) * 100.0
            ),
        }
    }
}

/// Execute `function` with every annotated loop dispatched to `baseline`
/// instead of the Japonica scheduler. Uncertain loops are profiled first so
/// the baseline executor knows the loop's dependence class (a hand-ported
/// GPU or parallel-CPU version also embodies that knowledge); profiling
/// time is *not* charged to the baseline.
pub fn run_baseline(
    cfg: &RuntimeConfig,
    compiled: &Compiled,
    function: &str,
    args: &[Value],
    heap: &mut Heap,
    baseline: Baseline,
) -> Result<RunReport, SchedError> {
    let rt = crate::runtime::Runtime::new(cfg.clone());
    crate::exec::execute_function(
        compiled,
        function,
        args,
        heap,
        &cfg.sched.cpu,
        &mut |loops, env, heap, report| {
            for l in loops {
                let analysis = &compiled.analyses[&l.id];
                let mut profiles: BTreeMap<japonica_ir::LoopId, LoopProfile> = BTreeMap::new();
                if analysis.determination.needs_profiling() {
                    if let Some(p) = report.profiles.get(&l.id) {
                        profiles.insert(l.id, p.clone());
                    } else {
                        let p = rt_profile(&rt, compiled, l, analysis, env, heap)?;
                        profiles.insert(l.id, p);
                    }
                }
                let task = LoopTask {
                    loop_: l,
                    analysis,
                    profile: profiles.get(&l.id),
                };
                let r = match baseline {
                    Baseline::Serial => {
                        run_cpu_serial(&compiled.program, &cfg.sched, &task, env, heap)?
                    }
                    Baseline::CpuParallel(t) => {
                        run_cpu_only(&compiled.program, &cfg.sched, &task, env, heap, t)?
                    }
                    Baseline::GpuOnly => {
                        run_gpu_only(&compiled.program, &cfg.sched, &task, env, heap)?
                    }
                    Baseline::FixedSplit(frac) => {
                        run_fixed_split(&compiled.program, &cfg.sched, &task, env, heap, frac)?
                    }
                };
                report.loops.push(r);
                report.profiles.append(&mut profiles);
            }
            Ok(())
        },
    )
}

fn rt_profile(
    rt: &crate::runtime::Runtime,
    compiled: &Compiled,
    loop_: &japonica_ir::ForLoop,
    analysis: &japonica_analysis::LoopAnalysis,
    env: &Env,
    heap: &mut Heap,
) -> Result<LoopProfile, SchedError> {
    use japonica_scheduler::sharing::{eval_bounds, stage_device};
    let bounds = eval_bounds(&compiled.program, loop_, env, heap)?;
    let plan = japonica_scheduler::DataPlan::derive(
        &compiled.program,
        loop_,
        &analysis.classes,
        env,
        heap,
    )?;
    let mut dev = japonica_gpusim::DeviceMemory::new();
    stage_device(&plan, heap, &mut dev, &rt.cfg.sched)?;
    let limit = rt.cfg.profile_limit.unwrap_or(u64::MAX);
    let p = japonica_profiler::profile_loop(
        &compiled.program,
        &rt.cfg.sched.gpu,
        loop_,
        &bounds,
        0..bounds.trip().min(limit),
        env,
        &mut dev,
    )?;
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;

    const SRC: &str = "static void scale(double[] a, double[] b, int n) {
        /* acc parallel */
        for (int i = 0; i < n; i++) { b[i] = a[i] * 2.0 + 1.0; }
    }";

    fn run_with(baseline: Baseline) -> (RunReport, Vec<f64>) {
        let c = compile(SRC).unwrap();
        let mut heap = Heap::new();
        let a = heap.alloc_doubles(&(0..8192).map(|i| i as f64).collect::<Vec<_>>());
        let b = heap.alloc_doubles(&vec![0.0; 8192]);
        let r = run_baseline(
            &RuntimeConfig::default(),
            &c,
            "scale",
            &[Value::Array(a), Value::Array(b), Value::Int(8192)],
            &mut heap,
            baseline,
        )
        .unwrap();
        (r, heap.read_doubles(b).unwrap())
    }

    #[test]
    fn all_baselines_compute_identical_results() {
        let expect: Vec<f64> = (0..8192).map(|i| 2.0 * i as f64 + 1.0).collect();
        for b in [
            Baseline::Serial,
            Baseline::CpuParallel(16),
            Baseline::GpuOnly,
            Baseline::FixedSplit(0.5),
        ] {
            let (_, vals) = run_with(b);
            assert_eq!(vals, expect, "baseline {b}");
        }
    }

    #[test]
    fn serial_is_slowest_cpu_variant() {
        let (serial, _) = run_with(Baseline::Serial);
        let (par, _) = run_with(Baseline::CpuParallel(16));
        assert!(par.total_s < serial.total_s);
    }

    #[test]
    fn baseline_display() {
        assert_eq!(Baseline::CpuParallel(16).to_string(), "CPU-16");
        assert_eq!(Baseline::GpuOnly.to_string(), "GPU-only");
    }
}

//! End-to-end run reports.

use japonica_faults::FaultStats;
use japonica_ir::{LoopId, Value};
use japonica_profiler::LoopProfile;
use japonica_scheduler::{LoopExecReport, StealingReport};
use std::collections::BTreeMap;

/// Report of one [`crate::Runtime::run`] invocation.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Per-loop execution reports (sharing scheme and single-device modes).
    pub loops: Vec<LoopExecReport>,
    /// Reports of stealing-scheme pools (one per consecutive run of
    /// annotated loops scheduled by stealing).
    pub stealing: Vec<StealingReport>,
    /// Dynamic profiles gathered for uncertain loops.
    pub profiles: BTreeMap<LoopId, LoopProfile>,
    /// Simulated seconds spent profiling on the GPU.
    pub profiling_s: f64,
    /// Simulated seconds of sequential glue code around the loops.
    pub glue_s: f64,
    /// The function's return value, if any.
    pub ret: Option<Value>,
    /// End-to-end simulated wall-clock: glue + profiling + loop walls.
    pub total_s: f64,
}

impl RunReport {
    /// Sum of the scheduled loops' wall times (excluding glue/profiling).
    pub fn loops_wall_s(&self) -> f64 {
        self.loops.iter().map(|l| l.wall_s).sum::<f64>()
            + self.stealing.iter().map(|s| s.wall_s).sum::<f64>()
    }

    /// Fault/recovery counters aggregated over every scheduled loop and
    /// stealing pool of the run. All zeros when no fault plan was active.
    pub fn fault_stats(&self) -> FaultStats {
        let mut agg = FaultStats::default();
        for l in &self.loops {
            agg.merge(&l.faults);
        }
        for s in &self.stealing {
            agg.merge(&s.faults);
        }
        agg
    }

    /// One-line-per-loop human-readable summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        // Writing into a String is infallible; discard the Ok(()).
        for l in &self.loops {
            let _ = writeln!(
                out,
                "{} mode {}: {:.3} ms wall (gpu {:.3} ms / cpu {:.3} ms, {}/{} iters, {} B moved)",
                l.loop_id,
                l.mode,
                l.wall_s * 1e3,
                l.gpu_busy_s * 1e3,
                l.cpu_busy_s * 1e3,
                l.gpu_iters,
                l.cpu_iters,
                l.bytes_in + l.bytes_out,
            );
        }
        for s in &self.stealing {
            let _ = writeln!(
                out,
                "stealing pool: {:.3} ms wall, {} tasks ({} stolen), CPU share {:.1}%",
                s.wall_s * 1e3,
                s.tasks.len(),
                s.stolen_by_cpu + s.stolen_by_gpu,
                s.cpu_iter_share() * 100.0,
            );
        }
        if self.profiling_s > 0.0 {
            let _ = writeln!(out, "profiling: {:.3} ms", self.profiling_s * 1e3);
        }
        let faults = self.fault_stats();
        if faults.any() {
            let _ = writeln!(
                out,
                "faults: {} gpu / {} cpu / {} transfer / {} deadline; {} retries, {} fallbacks, {} degradations, level {}",
                faults.gpu_faults,
                faults.cpu_faults,
                faults.transfer_faults,
                faults.deadline_overruns,
                faults.retries,
                faults.fallbacks,
                faults.degradations,
                faults.level,
            );
        }
        let _ = writeln!(out, "total: {:.3} ms", self.total_s * 1e3);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_formats_without_panic() {
        let r = RunReport {
            total_s: 0.001,
            ..RunReport::default()
        };
        assert!(r.summary().contains("total"));
        assert_eq!(r.loops_wall_s(), 0.0);
    }
}

//! The Japonica runtime: executes a compiled function, dispatching every
//! annotated loop through the profiler and the task scheduler.

use crate::compile::Compiled;
use crate::report::RunReport;
use japonica_cpuexec::CpuConfig;
use japonica_ir::{Env, ExecError, ForLoop, Heap, Scheme, Value};
use japonica_profiler::{profile_loop, LoopProfile};
use japonica_scheduler::{
    run_sharing, run_stealing, sharing::eval_bounds, sharing::run_cpu_only, sharing::stage_device,
    DataPlan, LoopTask, SchedError, SchedulerConfig,
};
use std::collections::BTreeMap;

/// Runtime configuration.
#[derive(Debug, Clone, Default)]
pub struct RuntimeConfig {
    /// Platform + scheduler settings.
    pub sched: SchedulerConfig,
    /// Force one scheduling scheme for every loop, overriding `scheme(...)`
    /// clauses (the paper: "every time only one scheme can be used for each
    /// application").
    pub scheme_override: Option<Scheme>,
    /// Cap on profiled iterations per uncertain loop (`None` = profile the
    /// whole iteration space).
    pub profile_limit: Option<u64>,
}

/// The runtime system: owns the configuration; `run` executes one function.
#[derive(Debug, Clone, Default)]
pub struct Runtime {
    /// The configuration in effect.
    pub cfg: RuntimeConfig,
}

impl Runtime {
    /// Create a runtime.
    pub fn new(cfg: RuntimeConfig) -> Runtime {
        Runtime { cfg }
    }

    /// Execute `function` with `args` against `heap`.
    ///
    /// The function body runs statement by statement. Top-level annotated
    /// `for` loops are intercepted: *uncertain* ones are first profiled on
    /// the (simulated) GPU, then every loop is dispatched through the task
    /// scheduler — consecutive annotated loops whose effective scheme is
    /// `stealing` form one job pool (paper §V-B); everything else goes
    /// through task sharing (§V-A). All remaining statements execute
    /// sequentially and are charged as glue time.
    pub fn run(
        &self,
        compiled: &Compiled,
        function: &str,
        args: &[Value],
        heap: &mut Heap,
    ) -> Result<RunReport, SchedError> {
        let fid = compiled
            .program
            .function_by_name(function)
            .map(|(id, _)| id)
            .ok_or_else(|| ExecError::UnknownFunction(function.to_string()))?;
        crate::exec::execute_function(
            compiled,
            function,
            args,
            heap,
            &self.cfg.sched.cpu,
            &mut |loops, env, heap, report| {
                self.schedule_run(compiled, fid, loops, env, heap, report)
            },
        )
    }

    /// Schedule one maximal run of consecutive annotated loops.
    fn schedule_run(
        &self,
        compiled: &Compiled,
        fid: japonica_ir::FnId,
        loops: &[&ForLoop],
        env: &mut Env,
        heap: &mut Heap,
        report: &mut RunReport,
    ) -> Result<(), SchedError> {
        let cfg = &self.cfg.sched;
        // A missing analysis is a compiler-pipeline invariant violation;
        // surface it as a typed error instead of unwinding mid-run.
        let analysis_of = |id: japonica_ir::LoopId| {
            compiled.analyses.get(&id).ok_or_else(|| {
                SchedError::Internal(format!("loop {id} was never analyzed at compile time"))
            })
        };
        // Profile every uncertain loop in the run first; a loop profiled on
        // an earlier encounter (e.g. inside an outer sequential loop) keeps
        // its profile.
        let mut profiles: BTreeMap<japonica_ir::LoopId, LoopProfile> = BTreeMap::new();
        for l in loops {
            let analysis = analysis_of(l.id)?;
            if analysis.determination.needs_profiling() {
                if let Some(p) = report.profiles.get(&l.id) {
                    profiles.insert(l.id, p.clone());
                    continue;
                }
                let p = self.profile(compiled, l, analysis, env, heap)?;
                report.profiling_s += p.profiling_time_s;
                profiles.insert(l.id, p);
            }
        }
        // Degraded CPU-only placement: every loop takes the baseline host
        // path (no device staging, no kernel launches, no fault hooks) —
        // guaranteed progress for the serving layer's last ladder rung.
        // Profiling above still ran on the scratch device: it is a
        // deterministic measurement pass that only feeds mode selection.
        if cfg.cpu_only {
            for l in loops {
                let task = LoopTask {
                    loop_: l,
                    analysis: analysis_of(l.id)?,
                    profile: profiles.get(&l.id),
                };
                let r = run_cpu_only(&compiled.program, cfg, &task, env, heap, cfg.cpu_threads)?;
                report.loops.push(r);
            }
            report.profiles.append(&mut profiles);
            return Ok(());
        }
        // Scheme: global override > first loop's clause > default (sharing).
        let scheme = self.cfg.scheme_override.unwrap_or_else(|| {
            loops[0]
                .annot
                .as_ref()
                .map(|a| a.effective_scheme())
                .unwrap_or_default()
        });
        match scheme {
            Scheme::Stealing if !loops.is_empty() => {
                let mut tasks: Vec<LoopTask> = Vec::with_capacity(loops.len());
                for l in loops {
                    tasks.push(LoopTask {
                        loop_: l,
                        analysis: analysis_of(l.id)?,
                        profile: profiles.get(&l.id),
                    });
                }
                // Restrict the function's PDG to this run's loops.
                let full = compiled.pdgs.get(&fid).ok_or_else(|| {
                    SchedError::Internal(format!("function {fid} has no dependence graph"))
                })?;
                let ids: Vec<_> = loops.iter().map(|l| l.id).collect();
                let pdg = japonica_analysis::Pdg {
                    nodes: full
                        .nodes
                        .iter()
                        .copied()
                        .filter(|n| ids.contains(n))
                        .collect(),
                    edges: full
                        .edges
                        .iter()
                        .filter(|e| ids.contains(&e.from) && ids.contains(&e.to))
                        .cloned()
                        .collect(),
                };
                let r = run_stealing(&compiled.program, cfg, &tasks, &pdg, env, heap)?;
                report.stealing.push(r);
            }
            _ => {
                for l in loops {
                    let task = LoopTask {
                        loop_: l,
                        analysis: analysis_of(l.id)?,
                        profile: profiles.get(&l.id),
                    };
                    let r = run_sharing(&compiled.program, cfg, &task, env, heap)?;
                    report.loops.push(r);
                }
            }
        }
        report.profiles.append(&mut profiles);
        Ok(())
    }

    /// Profile an uncertain loop on a scratch device (the data staged for
    /// profiling is discarded; execution happens afterwards through the
    /// scheduler with the measured densities in hand).
    fn profile(
        &self,
        compiled: &Compiled,
        loop_: &ForLoop,
        analysis: &japonica_analysis::LoopAnalysis,
        env: &Env,
        heap: &mut Heap,
    ) -> Result<LoopProfile, SchedError> {
        let bounds = eval_bounds(&compiled.program, loop_, env, heap)?;
        let plan = DataPlan::derive(&compiled.program, loop_, &analysis.classes, env, heap)?;
        let mut dev = japonica_gpusim::DeviceMemory::new();
        stage_device(&plan, heap, &mut dev, &self.cfg.sched)?;
        let limit = self.cfg.profile_limit.unwrap_or(u64::MAX);
        let range = 0..bounds.trip().min(limit);
        let p = profile_loop(
            &compiled.program,
            &self.cfg.sched.gpu,
            loop_,
            &bounds,
            range,
            env,
            &mut dev,
        )?;
        Ok(p)
    }
}

/// A second-resolution helper mirroring the CPU model (used by baselines and
/// tests to convert measured op counts).
pub fn cpu_seconds(cfg: &CpuConfig, cycles: f64) -> f64 {
    cfg.cycles_to_seconds(cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;

    fn heap_with(n: usize, arrays: usize) -> (Heap, Vec<japonica_ir::ArrayId>) {
        let mut heap = Heap::new();
        let ids = (0..arrays)
            .map(|_| heap.alloc_doubles(&(0..n).map(|i| i as f64).collect::<Vec<_>>()))
            .collect();
        (heap, ids)
    }

    #[test]
    fn runs_doall_loop_with_correct_results_and_report() {
        let c = compile(
            "static void scale(double[] a, double[] b, int n) {
                /* acc parallel */
                for (int i = 0; i < n; i++) { b[i] = a[i] * 3.0; }
            }",
        )
        .unwrap();
        let (mut heap, ids) = heap_with(10_000, 2);
        let rt = Runtime::default();
        let r = rt
            .run(
                &c,
                "scale",
                &[
                    Value::Array(ids[0]),
                    Value::Array(ids[1]),
                    Value::Int(10_000),
                ],
                &mut heap,
            )
            .unwrap();
        assert_eq!(r.loops.len(), 1);
        assert!(r.total_s > 0.0);
        assert!(r.profiles.is_empty());
        let b = heap.read_doubles(ids[1]).unwrap();
        assert!(b.iter().enumerate().all(|(i, &v)| v == 3.0 * i as f64));
    }

    #[test]
    fn uncertain_loop_gets_profiled_then_scheduled() {
        // indirect store -> static analysis cannot decide; at runtime the
        // index map is the identity, so no dependence exists (mode D').
        let c = compile(
            "static void f(double[] a, int[] idx, int n) {
                /* acc parallel */
                for (int i = 0; i < n; i++) { a[idx[i]] = a[idx[i]] * 2.0; }
            }",
        )
        .unwrap();
        let mut heap = Heap::new();
        let a = heap.alloc_doubles(&vec![1.0; 2048]);
        let idx = heap.alloc_ints(&(0..2048).collect::<Vec<_>>());
        let rt = Runtime::default();
        let r = rt
            .run(
                &c,
                "f",
                &[Value::Array(a), Value::Array(idx), Value::Int(2048)],
                &mut heap,
            )
            .unwrap();
        assert_eq!(r.profiles.len(), 1);
        assert!(r.profiling_s > 0.0);
        let p = r.profiles.values().next().unwrap();
        assert!(!p.has_td());
        assert!(heap.read_doubles(a).unwrap().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn scalar_accumulator_returns_through_mode_c() {
        let c = compile(
            "static double sum(double[] a, int n) {
                double s = 0.0;
                /* acc parallel */
                for (int i = 0; i < n; i++) { s = s + a[i]; }
                return s;
            }",
        )
        .unwrap();
        let (mut heap, ids) = heap_with(1000, 1);
        let rt = Runtime::default();
        let r = rt
            .run(
                &c,
                "sum",
                &[Value::Array(ids[0]), Value::Int(1000)],
                &mut heap,
            )
            .unwrap();
        // sum 0..999 = 499500
        assert_eq!(r.ret, Some(Value::Double(499_500.0)));
        assert_eq!(r.loops[0].mode.label(), "C (CPU sequential)");
    }

    #[test]
    fn stealing_scheme_via_clause() {
        let c = compile(
            "static void f(double[] a, double[] x, double[] y, int n) {
                /* acc parallel scheme(stealing) */
                for (int i = 0; i < n; i++) { x[i] = a[i] * 2.0; }
                /* acc parallel scheme(stealing) */
                for (int i = 0; i < n; i++) { y[i] = a[i] + 1.0; }
            }",
        )
        .unwrap();
        let (mut heap, ids) = heap_with(20_000, 3);
        let rt = Runtime::default();
        let r = rt
            .run(
                &c,
                "f",
                &[
                    Value::Array(ids[0]),
                    Value::Array(ids[1]),
                    Value::Array(ids[2]),
                    Value::Int(20_000),
                ],
                &mut heap,
            )
            .unwrap();
        assert_eq!(r.stealing.len(), 1);
        assert!(r.loops.is_empty());
        let x = heap.read_doubles(ids[1]).unwrap();
        assert!(x.iter().enumerate().all(|(i, &v)| v == 2.0 * i as f64));
    }

    #[test]
    fn scheme_override_wins_over_clause() {
        let c = compile(
            "static void f(double[] a, double[] x, int n) {
                /* acc parallel scheme(stealing) */
                for (int i = 0; i < n; i++) { x[i] = a[i] * 2.0; }
            }",
        )
        .unwrap();
        let (mut heap, ids) = heap_with(5000, 2);
        let rt = Runtime::new(RuntimeConfig {
            scheme_override: Some(Scheme::Sharing),
            ..RuntimeConfig::default()
        });
        let r = rt
            .run(
                &c,
                "f",
                &[Value::Array(ids[0]), Value::Array(ids[1]), Value::Int(5000)],
                &mut heap,
            )
            .unwrap();
        assert!(r.stealing.is_empty());
        assert_eq!(r.loops.len(), 1);
    }

    #[test]
    fn glue_code_executes_and_is_charged() {
        let c = compile(
            "static double f(double[] a, int n) {
                double scale = 2.0;
                int m = n - 1;
                /* acc parallel */
                for (int i = 0; i < m; i++) { a[i] = a[i] * scale; }
                return a[0] + m;
            }",
        )
        .unwrap();
        let (mut heap, ids) = heap_with(100, 1);
        let rt = Runtime::default();
        let r = rt
            .run(&c, "f", &[Value::Array(ids[0]), Value::Int(100)], &mut heap)
            .unwrap();
        assert!(r.glue_s > 0.0);
        assert_eq!(r.ret, Some(Value::Double(99.0))); // a[0]=0*2 + 99
                                                      // iteration count respects m = n - 1
        assert_eq!(r.loops[0].iterations, 99);
        assert_eq!(heap.read_doubles(ids[0]).unwrap()[99], 99.0); // untouched
    }

    #[test]
    fn unknown_function_is_an_error() {
        let c = compile("static void f() { }").unwrap();
        let mut heap = Heap::new();
        assert!(Runtime::default().run(&c, "g", &[], &mut heap).is_err());
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let c = compile("static void f(int n) { }").unwrap();
        let mut heap = Heap::new();
        assert!(Runtime::default().run(&c, "f", &[], &mut heap).is_err());
    }
}

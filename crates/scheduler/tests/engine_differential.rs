//! Differential property tests for the three kernel execution engines.
//!
//! Random kernels — generated from a proptest byte genome covering nested
//! control flow, short-circuit conditions, intrinsics, helper calls, and
//! mixed int/double arithmetic — must produce *bit-identical* results under
//! the reference tree walker, the register bytecode VM, and the threaded-code
//! native tier:
//!
//! * GPU path: device memory, `GpuStats`, and every simulated cycle count,
//!   at `host_threads ∈ {1, 4}`, both with an up-front native compile and
//!   through the `KernelCache` hit-counter promotion path;
//! * CPU path: heap memory, op counts, and modeled time for both the
//!   sequential executor and the chunked parallel executor;
//! * TLS path: identical rollback decisions (violations, recovery windows,
//!   kernels launched) and committed memory on a loop with a seeded
//!   cross-iteration dependence;
//! * fault-retry path: identical injected-fault surfacing and identical
//!   post-retry results on both the GPU and CPU guarded executors.

use japonica_cpuexec::{
    run_parallel, run_parallel_guarded, run_sequential, CpuConfig, CpuExecError, CpuReport,
};
use japonica_faults::{FaultKind, FaultOrigin, FaultPlan, FaultRule};
use japonica_frontend::compile_source;
use japonica_gpusim::{
    launch_loop_guarded, launch_loop_par, launch_loop_par_with, DeviceConfig, DeviceMemory,
    KernelReport,
};
use japonica_ir::{
    compile_kernel, ArrayId, Env, ExecEngine, ForLoop, Heap, KernelCache, LoopBounds, Program,
    Value, NATIVE_PROMOTE_USES,
};
use japonica_tls::{run_tls_loop, TlsConfig, TlsReport};
use proptest::prelude::*;

/// The two compiled engines, each diffed against the tree walker.
const COMPILED_ENGINES: [ExecEngine; 2] = [ExecEngine::Bytecode, ExecEngine::Native];

// ---------------------------------------------------------------------------
// Random kernel generator
// ---------------------------------------------------------------------------

/// Deterministic gene reader: statements/expressions are picked by consuming
/// bytes from a proptest-generated genome (wrapping when exhausted), so every
/// failure shrinks to a small reproducible byte vector.
struct Genes<'a> {
    bytes: &'a [u8],
    pos: usize,
    temps: u32,
}

impl<'a> Genes<'a> {
    fn new(bytes: &'a [u8]) -> Genes<'a> {
        Genes {
            bytes,
            pos: 0,
            temps: 0,
        }
    }

    fn next(&mut self) -> u8 {
        let b = self.bytes[self.pos % self.bytes.len()];
        self.pos = self.pos.wrapping_add(1);
        b
    }

    fn pick(&mut self, n: u8) -> u8 {
        self.next() % n
    }

    fn fresh(&mut self) -> u32 {
        self.temps += 1;
        self.temps
    }
}

/// A double-typed expression over `a[i]`, `b[i]`, the induction variable,
/// literals, arithmetic, intrinsics, ternaries, and a helper-function call.
fn gen_expr(g: &mut Genes, depth: u32) -> String {
    const LITS: [&str; 5] = ["0.5", "1.5", "2.0", "3.25", "0.125"];
    if depth == 0 {
        return match g.pick(4) {
            0 => "a[i]".into(),
            1 => "b[i]".into(),
            2 => LITS[g.pick(5) as usize].into(),
            _ => "(double) i".into(),
        };
    }
    match g.pick(10) {
        0..=2 => {
            let op = ["+", "-", "*", "/"][g.pick(4) as usize];
            let l = gen_expr(g, depth - 1);
            let r = gen_expr(g, depth - 1);
            format!("({l} {op} {r})")
        }
        3 => format!("Math.sqrt(Math.abs({}))", gen_expr(g, depth - 1)),
        4 => format!(
            "Math.min({}, {})",
            gen_expr(g, depth - 1),
            gen_expr(g, depth - 1)
        ),
        5 => format!(
            "Math.max({}, {})",
            gen_expr(g, depth - 1),
            gen_expr(g, depth - 1)
        ),
        6 => format!("Math.sin({})", gen_expr(g, depth - 1)),
        7 => {
            let c = gen_cond(g, depth - 1);
            let t = gen_expr(g, depth - 1);
            let f = gen_expr(g, depth - 1);
            format!("({c} ? {t} : {f})")
        }
        8 => format!("h({}, {})", gen_expr(g, depth - 1), gen_expr(g, depth - 1)),
        _ => gen_expr(g, 0),
    }
}

/// A boolean condition, including short-circuit combinations.
fn gen_cond(g: &mut Genes, depth: u32) -> String {
    match g.pick(if depth == 0 { 3 } else { 5 }) {
        0 => {
            let k = 2 + g.pick(4);
            let c = g.pick(k);
            format!("i % {k} == {c}")
        }
        1 => format!("{} < {}", gen_expr(g, 0), gen_expr(g, 0)),
        2 => "i < n / 2".into(),
        3 => format!("({} && {})", gen_cond(g, depth - 1), gen_cond(g, depth - 1)),
        _ => format!("({} || {})", gen_cond(g, depth - 1), gen_cond(g, depth - 1)),
    }
}

/// A statement list writing only `a[i]` and locals (the DOALL contract).
fn gen_stmts(g: &mut Genes, depth: u32) -> String {
    let n = 1 + g.pick(3);
    let mut out = String::new();
    for _ in 0..n {
        let choice = if depth == 0 { g.pick(2) } else { g.pick(5) };
        match choice {
            0 => out.push_str(&format!("a[i] = {};\n", gen_expr(g, 2))),
            1 => {
                let t = g.fresh();
                let op = ["+", "-", "*"][g.pick(3) as usize];
                out.push_str(&format!(
                    "double t{t} = {};\na[i] = (t{t} {op} {});\n",
                    gen_expr(g, 2),
                    gen_expr(g, 1)
                ));
            }
            2 => {
                let c = gen_cond(g, 1);
                let then = gen_stmts(g, depth - 1);
                if g.pick(2) == 0 {
                    out.push_str(&format!("if ({c}) {{\n{then}}}\n"));
                } else {
                    let els = gen_stmts(g, depth - 1);
                    out.push_str(&format!("if ({c}) {{\n{then}}} else {{\n{els}}}\n"));
                }
            }
            3 => {
                let j = g.fresh();
                let k = 1 + g.pick(4);
                out.push_str(&format!(
                    "for (int j{j} = 0; j{j} < {k}; j{j}++) {{\na[i] = (a[i] + ({} * 0.0625));\n}}\n",
                    gen_expr(g, 1)
                ));
            }
            _ => {
                let c = g.fresh();
                let k = 1 + g.pick(3);
                out.push_str(&format!(
                    "int c{c} = 0;\nwhile (c{c} < {k}) {{\na[i] = (a[i] * 1.015625 + {});\nc{c} = c{c} + 1;\n}}\n",
                    gen_expr(g, 0)
                ));
            }
        }
    }
    out
}

/// Assemble a full compilation unit: a helper with divergent control flow
/// plus the DOALL kernel loop whose body comes from the genome.
fn gen_kernel(genes: &[u8]) -> String {
    let mut g = Genes::new(genes);
    let body = gen_stmts(&mut g, 2);
    format!(
        "static double h(double x, double y) {{
            if (x > y) {{ return x - y; }}
            return y - x + 1.0;
        }}
        static void k(double[] a, double[] b, int n) {{
            /* acc parallel */
            for (int i = 0; i < n; i++) {{
{body}            }}
        }}"
    )
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

struct Fx {
    program: Program,
    loop_: ForLoop,
    env: Env,
    heap: Heap,
    a: ArrayId,
    b: ArrayId,
    bounds: LoopBounds,
    n: usize,
}

fn fx(src: &str, n: usize) -> Fx {
    let program = compile_source(src).unwrap();
    let (_, f) = program.function_by_name("k").unwrap();
    let loop_ = f.all_loops()[0].clone();
    let mut heap = Heap::new();
    let a = heap.alloc_doubles(
        &(0..n)
            .map(|i| (i as f64 * 0.7).sin() + 0.5)
            .collect::<Vec<_>>(),
    );
    let b = heap.alloc_doubles(
        &(0..n)
            .map(|i| (i as f64 * 1.3).cos() * 2.0)
            .collect::<Vec<_>>(),
    );
    let mut env = Env::with_slots(f.num_vars);
    env.set(f.params[0].var, Value::Array(a));
    env.set(f.params[1].var, Value::Array(b));
    env.set(f.params[2].var, Value::Int(n as i32));
    let bounds = LoopBounds {
        start: 0,
        end: n as i64,
        step: 1,
    };
    Fx {
        program,
        loop_,
        env,
        heap,
        a,
        b,
        bounds,
        n,
    }
}

fn mem_bits(dev: &DeviceMemory, a: ArrayId) -> Vec<u64> {
    let arr = dev.array(a).unwrap();
    (0..arr.len())
        .map(|i| match arr.get(i) {
            Value::Double(d) => d.to_bits(),
            v => panic!("unexpected value {v:?}"),
        })
        .collect()
}

fn heap_bits(heap: &Heap, a: ArrayId) -> Vec<u64> {
    heap.read_doubles(a)
        .unwrap()
        .iter()
        .map(|d| d.to_bits())
        .collect()
}

/// Everything a [`CpuReport`] carries, f64s as raw bits.
#[derive(Debug, PartialEq, Eq)]
struct CpuFingerprint {
    time_bits: u64,
    counts: japonica_ir::OpCounts,
    threads_used: u32,
    per_thread_bits: Vec<u64>,
}

impl CpuFingerprint {
    fn of(r: &CpuReport) -> CpuFingerprint {
        CpuFingerprint {
            time_bits: r.time_s.to_bits(),
            counts: r.counts.clone(),
            threads_used: r.threads_used,
            per_thread_bits: r.per_thread_seconds.iter().map(|t| t.to_bits()).collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// GPU path
// ---------------------------------------------------------------------------

fn run_gpu(fx: &Fx, engine: ExecEngine, threads: usize) -> (KernelReport, Vec<u64>) {
    let mut cfg = DeviceConfig::default();
    cfg.sim.engine = engine;
    cfg.sim.host_threads = threads;
    let mut dev = DeviceMemory::new();
    dev.copy_in(&fx.heap, fx.a, 0, fx.n, &cfg).unwrap();
    dev.copy_in(&fx.heap, fx.b, 0, fx.n, &cfg).unwrap();
    let r = launch_loop_par(
        &fx.program,
        &cfg,
        &fx.loop_,
        &fx.bounds,
        0..fx.n as u64,
        &fx.env,
        &mut dev,
        None,
        None,
    )
    .unwrap();
    let mem = mem_bits(&dev, fx.a);
    (r, mem)
}

/// [`run_gpu`] through a shared [`KernelCache`], exercising the demand-driven
/// tier-promotion path rather than the uncached up-front native compile.
fn run_gpu_cached(
    fx: &Fx,
    engine: ExecEngine,
    threads: usize,
    kernels: &KernelCache,
) -> (KernelReport, Vec<u64>) {
    let mut cfg = DeviceConfig::default();
    cfg.sim.engine = engine;
    cfg.sim.host_threads = threads;
    let mut dev = DeviceMemory::new();
    dev.copy_in(&fx.heap, fx.a, 0, fx.n, &cfg).unwrap();
    dev.copy_in(&fx.heap, fx.b, 0, fx.n, &cfg).unwrap();
    let r = launch_loop_par_with(
        &fx.program,
        &cfg,
        &fx.loop_,
        &fx.bounds,
        0..fx.n as u64,
        &fx.env,
        &mut dev,
        None,
        None,
        Some(kernels),
    )
    .unwrap();
    let mem = mem_bits(&dev, fx.a);
    (r, mem)
}

// ---------------------------------------------------------------------------
// CPU path
// ---------------------------------------------------------------------------

fn run_cpu_seq(fx: &Fx, engine: ExecEngine) -> (CpuFingerprint, Vec<u64>) {
    let mut cfg = CpuConfig::default();
    cfg.engine = engine;
    let mut heap = fx.heap.clone();
    let r = run_sequential(
        &fx.program,
        &cfg,
        &fx.loop_,
        &fx.bounds,
        0..fx.n as u64,
        &mut fx.env.clone(),
        &mut heap,
    )
    .unwrap();
    (CpuFingerprint::of(&r), heap_bits(&heap, fx.a))
}

fn run_cpu_par(fx: &Fx, engine: ExecEngine, threads: u32) -> (CpuFingerprint, Vec<u64>) {
    let mut cfg = CpuConfig::default();
    cfg.engine = engine;
    let mut heap = fx.heap.clone();
    let r = run_parallel(
        &fx.program,
        &cfg,
        &fx.loop_,
        &fx.bounds,
        0..fx.n as u64,
        &fx.env,
        &mut heap,
        threads,
    )
    .unwrap();
    (CpuFingerprint::of(&r), heap_bits(&heap, fx.a))
}

// ---------------------------------------------------------------------------
// TLS path (seeded RAW dependence so rollbacks actually happen)
// ---------------------------------------------------------------------------

/// Scheduler-visible rollback decisions from a [`TlsReport`], bit-exact.
#[derive(Debug, PartialEq, Eq)]
struct TlsFingerprint {
    kernels: u32,
    clean_subloops: u32,
    violations: u32,
    intra_warp: u32,
    inter_warp: u32,
    recovered_iters: u64,
    gpu_time_bits: u64,
    cpu_time_bits: u64,
    time_bits: u64,
}

impl TlsFingerprint {
    fn of(r: &TlsReport) -> TlsFingerprint {
        TlsFingerprint {
            kernels: r.kernels,
            clean_subloops: r.clean_subloops,
            violations: r.violations,
            intra_warp: r.intra_warp_violations,
            inter_warp: r.inter_warp_violations,
            recovered_iters: r.recovered_iters,
            gpu_time_bits: r.gpu_time_s.to_bits(),
            cpu_time_bits: r.cpu_time_s.to_bits(),
            time_bits: r.time_s.to_bits(),
        }
    }
}

fn run_tls(n: i64, dist: i64, subloop: u64, engine: ExecEngine) -> (TlsFingerprint, Vec<i64>) {
    let src = format!(
        "static void f(long[] a, int n) {{
            /* acc parallel */
            for (int i = 0; i < n; i++) {{
                if (i >= {dist}) {{ a[i] = a[i - {dist}] + 1; }} else {{ a[i] = 1; }}
            }}
        }}"
    );
    let program = compile_source(&src).unwrap();
    let f = &program.functions[0];
    let loop_ = f.all_loops()[0].clone();
    let mut heap = Heap::new();
    let a = heap.alloc_longs(&(0..n).collect::<Vec<_>>());
    let mut dcfg = DeviceConfig::default();
    dcfg.sim.engine = engine;
    let mut dev = DeviceMemory::new();
    dev.copy_in(&heap, a, 0, n as usize, &dcfg).unwrap();
    let mut env = Env::with_slots(f.num_vars);
    env.set(f.params[0].var, Value::Array(a));
    env.set(f.params[1].var, Value::Int(n as i32));
    let bounds = LoopBounds {
        start: 0,
        end: n,
        step: 1,
    };
    let tls = TlsConfig {
        subloop_iters: subloop,
        ..TlsConfig::default()
    };
    let r = run_tls_loop(
        &program,
        &dcfg,
        &CpuConfig::default(),
        &tls,
        &loop_,
        &bounds,
        0..n as u64,
        &env,
        &mut dev,
        None,
    )
    .unwrap();
    let mem: Vec<i64> = {
        let arr = dev.array(a).unwrap();
        (0..arr.len())
            .map(|i| arr.get(i).as_i64().unwrap())
            .collect()
    };
    (TlsFingerprint::of(&r), mem)
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// GPU path: for random kernels the bytecode SIMT VM, the native tier,
    /// and the tree walker agree on memory bits, `GpuStats`, and cycle bit
    /// patterns at `host_threads ∈ {1, 4}`.
    #[test]
    fn gpu_engines_bit_identical(
        genes in proptest::collection::vec(any::<u8>(), 8..64),
        n in 33usize..700,
    ) {
        let src = gen_kernel(&genes);
        let fx = fx(&src, n);
        // The generated grammar stays inside the compilable subset: assert
        // it so the compiled legs genuinely exercise the VM and native tier
        // (an uncompilable kernel would silently fall back to the walker).
        prop_assert!(
            compile_kernel(&fx.program, &fx.loop_).is_ok(),
            "generated kernel must compile to bytecode:\n{}", src
        );
        for threads in [1usize, 4] {
            let (rw, mw) = run_gpu(&fx, ExecEngine::TreeWalker, threads);
            for engine in COMPILED_ENGINES {
                let (rb, mb) = run_gpu(&fx, engine, threads);
                prop_assert_eq!(
                    &rw.stats, &rb.stats,
                    "{:?} GpuStats diverged at {} threads:\n{}", engine, threads, &src
                );
                prop_assert_eq!(
                    rw.critical_cycles.to_bits(), rb.critical_cycles.to_bits(),
                    "{:?} critical cycles diverged at {} threads:\n{}", engine, threads, &src
                );
                prop_assert_eq!(
                    rw.time_s.to_bits(), rb.time_s.to_bits(),
                    "{:?} kernel time diverged at {} threads:\n{}", engine, threads, &src
                );
                prop_assert_eq!(&rw, &rb, "{:?} report diverged at {} threads:\n{}", engine, threads, &src);
                prop_assert_eq!(&mw, &mb, "{:?} memory diverged at {} threads:\n{}", engine, threads, &src);
            }
            // Demand-driven promotion: warm a shared cache past the
            // threshold so this launch resolves native via the hit counter.
            let cache = KernelCache::new();
            for _ in 0..NATIVE_PROMOTE_USES {
                cache.get_or_compile(&fx.program, &fx.loop_);
            }
            let (rn, mn) = run_gpu_cached(&fx, ExecEngine::Native, threads, &cache);
            prop_assert_eq!(&rw, &rn, "promoted-native report diverged at {} threads:\n{}", threads, &src);
            prop_assert_eq!(&mw, &mn, "promoted-native memory diverged at {} threads:\n{}", threads, &src);
        }
    }

    /// CPU path: sequential and chunked-parallel execution agree between
    /// engines on heap bits, op counts, and modeled time.
    #[test]
    fn cpu_engines_bit_identical(
        genes in proptest::collection::vec(any::<u8>(), 8..64),
        n in 33usize..700,
    ) {
        let src = gen_kernel(&genes);
        let fx = fx(&src, n);
        prop_assert!(
            compile_kernel(&fx.program, &fx.loop_).is_ok(),
            "generated kernel must compile to bytecode:\n{}", src
        );
        let (fw, mw) = run_cpu_seq(&fx, ExecEngine::TreeWalker);
        for engine in COMPILED_ENGINES {
            let (fb, mb) = run_cpu_seq(&fx, engine);
            prop_assert_eq!(&fw, &fb, "{:?} sequential report diverged:\n{}", engine, &src);
            prop_assert_eq!(&mw, &mb, "{:?} sequential memory diverged:\n{}", engine, &src);
        }
        for threads in [1u32, 4] {
            let (fw, mw) = run_cpu_par(&fx, ExecEngine::TreeWalker, threads);
            for engine in COMPILED_ENGINES {
                let (fb, mb) = run_cpu_par(&fx, engine, threads);
                prop_assert_eq!(&fw, &fb, "{:?} parallel report diverged at {} threads:\n{}", engine, threads, &src);
                prop_assert_eq!(&mw, &mb, "{:?} parallel memory diverged at {} threads:\n{}", engine, threads, &src);
            }
        }
    }

    /// TLS path: on loops with true cross-iteration dependences all three
    /// engines make identical rollback decisions and commit identical
    /// memory.
    #[test]
    fn tls_rollback_decisions_engine_invariant(
        n in 200i64..900,
        dist in 1i64..250,
        subloop in prop_oneof![Just(64u64), Just(256u64)],
    ) {
        let (fw, mw) = run_tls(n, dist, subloop, ExecEngine::TreeWalker);
        for engine in COMPILED_ENGINES {
            let (fb, mb) = run_tls(n, dist, subloop, engine);
            prop_assert_eq!(&fw, &fb, "{:?} rollback decisions diverged (n={}, dist={})", engine, n, dist);
            prop_assert_eq!(&mw, &mb, "{:?} committed memory diverged (n={}, dist={})", engine, n, dist);
        }
    }

    /// Fault-retry path: a transient injected fault surfaces identically
    /// under every engine, and the retry that follows produces identical
    /// results — on both the guarded GPU launch and the guarded CPU
    /// executor.
    #[test]
    fn fault_retry_paths_engine_invariant(
        genes in proptest::collection::vec(any::<u8>(), 8..48),
        n in 33usize..300,
    ) {
        let src = gen_kernel(&genes);
        let fx = fx(&src, n);
        prop_assert!(
            compile_kernel(&fx.program, &fx.loop_).is_ok(),
            "generated kernel must compile to bytecode:\n{}", src
        );

        // GPU: transient launch fault fires once, retry succeeds.
        let mut gpu_runs = Vec::new();
        for engine in [ExecEngine::TreeWalker, ExecEngine::Bytecode, ExecEngine::Native] {
            let mut cfg = DeviceConfig::default();
            cfg.sim.engine = engine;
            let mut dev = DeviceMemory::new();
            dev.copy_in(&fx.heap, fx.a, 0, fx.n, &cfg).unwrap();
            dev.copy_in(&fx.heap, fx.b, 0, fx.n, &cfg).unwrap();
            let plan = FaultPlan::new(9, vec![FaultRule::transient(FaultKind::KernelLaunch, 1)]);
            let launch = |dev: &mut DeviceMemory| {
                launch_loop_guarded(
                    &fx.program, &cfg, &fx.loop_, &fx.bounds, 0..fx.n as u64,
                    &fx.env, dev, Some(&plan), None,
                )
            };
            let first = launch(&mut dev);
            prop_assert!(first.is_err(), "{:?}: injected launch fault did not surface", engine);
            let retry = launch(&mut dev);
            prop_assert!(retry.is_ok(), "{:?}: retry after transient fault failed", engine);
            gpu_runs.push((
                format!("{:?}", first.err()),
                retry.ok(),
                mem_bits(&dev, fx.a),
            ));
        }
        for (engine, run) in COMPILED_ENGINES.iter().zip(&gpu_runs[1..]) {
            prop_assert_eq!(&gpu_runs[0].0, &run.0, "{:?} fault surfaced differently:\n{}", engine, &src);
            prop_assert_eq!(&gpu_runs[0].1, &run.1, "{:?} post-retry report diverged:\n{}", engine, &src);
            prop_assert_eq!(&gpu_runs[0].2, &run.2, "{:?} post-retry memory diverged:\n{}", engine, &src);
        }

        // CPU: transient worker-chunk fault fires once, retry succeeds.
        let mut cpu_runs = Vec::new();
        for engine in [ExecEngine::TreeWalker, ExecEngine::Bytecode, ExecEngine::Native] {
            let mut cfg = CpuConfig::default();
            cfg.engine = engine;
            let mut heap = fx.heap.clone();
            let plan = FaultPlan::new(9, vec![FaultRule::transient(FaultKind::CpuChunk, 1)]);
            let run = |heap: &mut Heap| {
                run_parallel_guarded(
                    &fx.program, &cfg, &fx.loop_, &fx.bounds, 0..fx.n as u64,
                    &fx.env, heap, 4, Some(&plan), FaultOrigin::default(),
                )
            };
            let first = run(&mut heap);
            prop_assert!(
                matches!(&first, Err(CpuExecError::Fault(f)) if f.kind == FaultKind::CpuChunk),
                "{:?}: injected chunk fault did not surface", engine
            );
            let retry = run(&mut heap);
            prop_assert!(retry.is_ok(), "{:?}: retry after transient fault failed", engine);
            cpu_runs.push((
                format!("{:?}", first.err()),
                retry.ok().map(|r| CpuFingerprint::of(&r)),
                heap_bits(&heap, fx.a),
            ));
        }
        for (engine, run) in COMPILED_ENGINES.iter().zip(&cpu_runs[1..]) {
            prop_assert_eq!(&cpu_runs[0].0, &run.0, "{:?} fault surfaced differently:\n{}", engine, &src);
            prop_assert_eq!(&cpu_runs[0].1, &run.1, "{:?} post-retry report diverged:\n{}", engine, &src);
            prop_assert_eq!(&cpu_runs[0].2, &run.2, "{:?} post-retry memory diverged:\n{}", engine, &src);
        }
    }
}

//! Mode-selection and correctness matrix for the scheduler: one loop per
//! dependence class, executed under task sharing, pinned to the expected
//! Fig. 2 execution mode and validated against sequential interpretation.

use japonica_analysis::analyze_loop;
use japonica_frontend::compile_source;
use japonica_gpusim::DeviceMemory;
use japonica_ir::{ArrayId, Env, Heap, HeapBackend, Interp, ParamTy, Program, Value};
use japonica_profiler::profile_loop;
use japonica_scheduler::{
    run_sharing, sharing::eval_bounds, sharing::stage_device, DataPlan, ExecutionMode, LoopTask,
    SchedulerConfig,
};

struct Case {
    program: Program,
    loop_: japonica_ir::ForLoop,
    env: Env,
    heap: Heap,
    arrays: Vec<ArrayId>,
}

fn case(src: &str, n: usize) -> Case {
    let program = compile_source(src).unwrap();
    let f = &program.functions[0];
    let loop_ = f
        .all_loops()
        .into_iter()
        .find(|l| l.is_annotated())
        .unwrap()
        .clone();
    let mut heap = Heap::new();
    let mut env = Env::with_slots(f.num_vars);
    let mut arrays = Vec::new();
    for p in &f.params {
        match p.ty {
            ParamTy::Array(_) => {
                let vals: Vec<i64> = (0..n as i64).map(|i| i % 97).collect();
                let a = heap.alloc_longs(&vals);
                env.set(p.var, Value::Array(a));
                arrays.push(a);
            }
            ParamTy::Scalar(_) => env.set(p.var, Value::Int(n as i32)),
        }
    }
    Case {
        program,
        loop_,
        env,
        heap,
        arrays,
    }
}

/// Run the full profile-then-share pipeline on the case; returns the mode
/// and checks outputs against sequential interpretation.
fn schedule_and_check(c: &mut Case) -> ExecutionMode {
    let cfg = SchedulerConfig::default();
    let analysis = analyze_loop(&c.loop_);

    // Sequential ground truth.
    let mut seq_heap = c.heap.clone();
    {
        let bounds = eval_bounds(&c.program, &c.loop_, &c.env, &mut seq_heap).unwrap();
        let mut env = c.env.clone();
        let mut be = HeapBackend::new(&mut seq_heap);
        Interp::new(&c.program)
            .exec_range(&c.loop_, &bounds, 0, bounds.trip(), &mut env, &mut be)
            .unwrap();
    }

    // Profile when uncertain (scratch device).
    let profile = if analysis.determination.needs_profiling() {
        let bounds = eval_bounds(&c.program, &c.loop_, &c.env, &mut c.heap).unwrap();
        let plan =
            DataPlan::derive(&c.program, &c.loop_, &analysis.classes, &c.env, &mut c.heap).unwrap();
        let mut dev = DeviceMemory::new();
        stage_device(&plan, &c.heap, &mut dev, &cfg).unwrap();
        Some(
            profile_loop(
                &c.program,
                &cfg.gpu,
                &c.loop_,
                &bounds,
                0..bounds.trip(),
                &c.env,
                &mut dev,
            )
            .unwrap(),
        )
    } else {
        None
    };
    let task = LoopTask {
        loop_: &c.loop_,
        analysis: &analysis,
        profile: profile.as_ref(),
    };
    let mode = task.mode(&cfg);
    let mut env = c.env.clone();
    let report = run_sharing(&c.program, &cfg, &task, &mut env, &mut c.heap).unwrap();
    assert_eq!(report.mode, mode);
    for a in &c.arrays {
        assert_eq!(
            c.heap.read_ints(*a).unwrap(),
            seq_heap.read_ints(*a).unwrap(),
            "array {a} under mode {mode}"
        );
    }
    mode
}

#[test]
fn doall_loop_selects_mode_a() {
    let mut c = case(
        "static void f(long[] a, long[] b, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) { b[i] = a[i] * 5 + 1; }
        }",
        20_000,
    );
    assert_eq!(schedule_and_check(&mut c), ExecutionMode::A);
}

#[test]
fn static_true_dependence_selects_mode_c() {
    let mut c = case(
        "static void f(long[] a, int n) {
            /* acc parallel */
            for (int i = 1; i < n; i++) { a[i] = a[i - 1] + a[i]; }
        }",
        5_000,
    );
    assert_eq!(schedule_and_check(&mut c), ExecutionMode::C);
}

#[test]
fn low_density_profiled_loop_selects_mode_b() {
    let mut c = case(
        "static void f(long[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) {
                if (i % 101 == 100) { a[i] = a[i - 50] + 1; } else { a[i] = i; }
            }
        }",
        10_100,
    );
    assert_eq!(schedule_and_check(&mut c), ExecutionMode::B);
}

#[test]
fn high_density_profiled_loop_selects_mode_c() {
    // every other iteration depends on the previous: density 0.5 > 0.1
    let mut c = case(
        "static void f(long[] a, int n) {
            /* acc parallel */
            for (int i = 1; i < n; i++) {
                if (i % 2 == 0) { a[i] = a[i - 1] + 1; } else { a[i] = i; }
            }
        }",
        4_000,
    );
    assert_eq!(schedule_and_check(&mut c), ExecutionMode::C);
}

#[test]
fn fd_only_profiled_loop_selects_mode_d() {
    let mut c = case(
        "static void f(long[] t, long[] o, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) { t[i % 64] = i; o[i] = t[i % 64] * 2; }
        }",
        8_192,
    );
    assert_eq!(schedule_and_check(&mut c), ExecutionMode::D);
}

#[test]
fn clean_profiled_loop_selects_mode_d_prime() {
    // statically uncertain (indirect), dynamically independent
    let mut c = case(
        "static void f(long[] a, long[] idx, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) { a[(int) idx[i] % n] = i; }
        }",
        6_000, // idx[i] = i % 97 ... wait: values are i % 97, so a[(i%97)%n]
    );
    // values i%97 repeat -> WAW across iterations! That is FD, mode D.
    assert_eq!(schedule_and_check(&mut c), ExecutionMode::D);
}

#[test]
fn statically_proven_fd_selects_mode_d_without_profiling() {
    let mut c = case(
        "static void f(long[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) { a[0] = i; }
        }",
        2_048,
    );
    let analysis = analyze_loop(&c.loop_);
    assert!(!analysis.determination.needs_profiling());
    assert_eq!(schedule_and_check(&mut c), ExecutionMode::D);
}

#[test]
fn boundary_fraction_reacts_to_device_strengths() {
    let mut weak_gpu = SchedulerConfig::default();
    weak_gpu.gpu.sm_count = 2;
    let strong = SchedulerConfig::default();
    assert!(weak_gpu.boundary_fraction() < strong.boundary_fraction());
    let mut weak_cpu = SchedulerConfig::default();
    weak_cpu.cpu.cores = 2;
    assert!(weak_cpu.boundary_fraction() > strong.boundary_fraction());
}

#[test]
fn threads_clause_limits_cpu_side_parallelism() {
    // Same loop with threads(1) vs threads(16): the CPU side of the share
    // must be slower with one thread.
    let run = |threads: u32| {
        let mut c = case(
            &format!(
                "static void f(long[] a, long[] b, int n) {{
                    /* acc parallel threads({threads}) */
                    for (int i = 0; i < n; i++) {{ b[i] = a[i] * 3 + i; }}
                }}"
            ),
            60_000,
        );
        let cfg = SchedulerConfig::default();
        let analysis = analyze_loop(&c.loop_);
        let task = LoopTask {
            loop_: &c.loop_,
            analysis: &analysis,
            profile: None,
        };
        let mut env = c.env.clone();
        run_sharing(&c.program, &cfg, &task, &mut env, &mut c.heap).unwrap()
    };
    let one = run(1);
    let many = run(16);
    assert!(one.cpu_iters > 0 && many.cpu_iters > 0);
    let one_rate = one.cpu_busy_s / one.cpu_iters as f64;
    let many_rate = many.cpu_busy_s / many.cpu_iters as f64;
    assert!(
        one_rate > 4.0 * many_rate,
        "threads(1) {one_rate} vs threads(16) {many_rate}"
    );
}

#[test]
fn paper_literal_sharing_pins_the_cpu_to_its_boundary_partition() {
    let run = |steals_back: bool| {
        let mut c = case(
            "static void f(long[] a, long[] b, int n) {
                /* acc parallel */
                for (int i = 0; i < n; i++) { b[i] = a[i] + i; }
            }",
            80_000,
        );
        let cfg = SchedulerConfig {
            cpu_steals_back: steals_back,
            ..SchedulerConfig::default()
        };
        let analysis = analyze_loop(&c.loop_);
        let task = LoopTask {
            loop_: &c.loop_,
            analysis: &analysis,
            profile: None,
        };
        let mut env = c.env.clone();
        let r = run_sharing(&c.program, &cfg, &task, &mut env, &mut c.heap).unwrap();
        // results stay correct either way
        assert_eq!(r.gpu_iters + r.cpu_iters, 80_000);
        r
    };
    let bidir = run(true);
    let literal = run(false);
    let boundary = SchedulerConfig::default().boundary_fraction();
    // Literal sharing: CPU share can never exceed (1 - boundary) rounded up
    // to chunk granularity.
    assert!(
        (literal.cpu_iters as f64) < (1.0 - boundary) * 80_000.0 + 4096.0,
        "literal CPU share {} crosses the boundary",
        literal.cpu_iters
    );
    // Bidirectional sharing lets the CPU take more of this cheap loop.
    assert!(bidir.cpu_iters > literal.cpu_iters);
}

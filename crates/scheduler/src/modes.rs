//! Execution-mode selection: the decision workflow of paper Fig. 2(b).

use japonica_analysis::Determination;
use japonica_profiler::LoopProfile;

/// The execution model assigned to one loop (paper Fig. 2(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Mode A — deterministic DOALL: parallel execution on the GPU plus
    /// multithreaded execution on the CPU, split at the boundary.
    A,
    /// Mode B — low true-dependence density: GPU-TLS speculation with CPU
    /// fallback on violation.
    B,
    /// Mode C — high true-dependence density: sequential CPU execution.
    C,
    /// Mode D — only false dependences observed: privatized parallel
    /// execution PE(V) on the GPU, *sequential* execution of the CPU share
    /// (lock-step SIMD made the GPU check reliable; a parallel CPU could
    /// still expose true dependences, §V-A).
    D,
    /// Mode D′ — profiling observed no dependences at all: like A, both
    /// sides parallel, but decided dynamically.
    DPrime,
}

impl ExecutionMode {
    /// Does the mode use the GPU at all?
    pub fn uses_gpu(self) -> bool {
        !matches!(self, ExecutionMode::C)
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ExecutionMode::A => "A (DOALL share)",
            ExecutionMode::B => "B (GPU-TLS)",
            ExecutionMode::C => "C (CPU sequential)",
            ExecutionMode::D => "D (privatize + seq CPU)",
            ExecutionMode::DPrime => "D' (no runtime deps)",
        }
    }
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Decide the execution mode for a loop from its static determination and
/// (when the determination was *uncertain*) its dynamic profile.
///
/// This is the Fig. 2(b) workflow verbatim:
/// determined DOALL → A; else profile → TD density high → C, low → B,
/// zero TD → any FD? → D, else D′. Statically *proven* dependences skip
/// profiling: proven TD → C, proven FD-only → D.
pub fn decide_mode(
    det: &Determination,
    profile: Option<&LoopProfile>,
    td_density_threshold: f64,
) -> ExecutionMode {
    try_decide_mode(det, profile, td_density_threshold)
        .expect("uncertain loops must be profiled before scheduling")
}

/// [`decide_mode`] without the panic: returns `None` when the loop's
/// determination is uncertain and no profile is available — the runtime
/// turns that into a typed scheduler error instead of unwinding.
pub fn try_decide_mode(
    det: &Determination,
    profile: Option<&LoopProfile>,
    td_density_threshold: f64,
) -> Option<ExecutionMode> {
    Some(match det {
        Determination::Doall => ExecutionMode::A,
        Determination::Deterministic(s) => {
            if s.true_dep {
                ExecutionMode::C
            } else {
                ExecutionMode::D
            }
        }
        Determination::Uncertain { .. } => {
            let p = profile?;
            if p.has_td() {
                if p.td_density > td_density_threshold {
                    ExecutionMode::C
                } else {
                    ExecutionMode::B
                }
            } else if p.has_fd() {
                ExecutionMode::D
            } else {
                ExecutionMode::DPrime
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use japonica_analysis::DepSummary;

    fn profile(td_density: f64, raw: u64, war: u64) -> LoopProfile {
        LoopProfile {
            td_density,
            raw_pairs: raw,
            war_pairs: war,
            iterations: 100,
            ..LoopProfile::default()
        }
    }

    fn uncertain() -> Determination {
        Determination::Uncertain {
            reasons: vec![japonica_analysis::Blocker::loop_level(
                "test",
                japonica_ir::Span::none(),
            )],
            partial: DepSummary::default(),
        }
    }

    #[test]
    fn doall_gets_mode_a() {
        assert_eq!(
            decide_mode(&Determination::Doall, None, 0.1),
            ExecutionMode::A
        );
    }

    #[test]
    fn proven_td_gets_mode_c() {
        let det = Determination::Deterministic(DepSummary {
            true_dep: true,
            ..DepSummary::default()
        });
        assert_eq!(decide_mode(&det, None, 0.1), ExecutionMode::C);
    }

    #[test]
    fn proven_fd_only_gets_mode_d() {
        let det = Determination::Deterministic(DepSummary {
            false_dep: true,
            ..DepSummary::default()
        });
        assert_eq!(decide_mode(&det, None, 0.1), ExecutionMode::D);
    }

    #[test]
    fn profiled_low_density_gets_tls() {
        let p = profile(0.012, 5, 0); // the paper's BlackScholes density
        assert_eq!(decide_mode(&uncertain(), Some(&p), 0.1), ExecutionMode::B);
    }

    #[test]
    fn profiled_high_density_gets_cpu() {
        let p = profile(0.8, 80, 0);
        assert_eq!(decide_mode(&uncertain(), Some(&p), 0.1), ExecutionMode::C);
    }

    #[test]
    fn profiled_fd_only_gets_mode_d() {
        let p = profile(0.0, 0, 30);
        assert_eq!(decide_mode(&uncertain(), Some(&p), 0.1), ExecutionMode::D);
    }

    #[test]
    fn profiled_clean_gets_d_prime() {
        let p = profile(0.0, 0, 0);
        assert_eq!(
            decide_mode(&uncertain(), Some(&p), 0.1),
            ExecutionMode::DPrime
        );
    }

    #[test]
    #[should_panic(expected = "must be profiled")]
    fn uncertain_without_profile_panics() {
        decide_mode(&uncertain(), None, 0.1);
    }

    #[test]
    fn mode_properties() {
        assert!(ExecutionMode::A.uses_gpu());
        assert!(!ExecutionMode::C.uses_gpu());
        assert!(ExecutionMode::B.label().contains("TLS"));
    }
}

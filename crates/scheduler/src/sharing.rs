//! The task sharing scheme (paper §V-A) plus the single-device baseline
//! executors used throughout the evaluation.
//!
//! Task sharing splits one loop's iteration space across GPU and CPU at the
//! boundary `Cg·Fg / (Cg·Fg + Cc·Fc)`. Iterations before the boundary are
//! *preferential* to the GPU: their data is streamed to the device in
//! advance, asynchronously with kernel execution, so transfer latency hides
//! behind compute. The GPU consumes uniform chunks in ascending order while
//! the CPU consumes chunks from the other end in descending order; whichever
//! device drains its share early pulls chunks from the other side — pulls
//! beyond the boundary pay a *synchronous* transfer (the paper's "extra
//! overhead" observed on GEMM).

use crate::config::SchedulerConfig;
use crate::modes::{decide_mode, try_decide_mode, ExecutionMode};
use crate::plan::DataPlan;
use crate::report::{LoopExecReport, SchedError};
use japonica_analysis::LoopAnalysis;
use japonica_cpuexec::{
    run_parallel_guarded_with, run_parallel_with, run_sequential_with, CpuConfig, CpuExecError,
};
use japonica_faults::{DegradationLevel, FaultOrigin, FaultStats, ResilienceConfig};
use japonica_gpusim::{launch_loop_par_with, DeviceMemory, SimtError};
use japonica_ir::{
    compile_native, ArrayId, Env, ExecEngine, ExecError, ForLoop, Heap, HeapBackend, Interp,
    KernelCache, LoopBounds, NativeKernel, NativeVm, Program, ScalarVm, Scheme, Value,
};
use japonica_profiler::LoopProfile;
use japonica_tls::{run_privatized_with, run_tls_loop_guarded_with, SpeculativeMemory};

/// Everything the scheduler needs to know about one annotated loop.
#[derive(Debug, Clone, Copy)]
pub struct LoopTask<'a> {
    pub loop_: &'a ForLoop,
    pub analysis: &'a LoopAnalysis,
    pub profile: Option<&'a LoopProfile>,
}

impl<'a> LoopTask<'a> {
    /// The execution mode per the Fig. 2(b) workflow.
    ///
    /// Panics when an uncertain loop has no profile; runtime code paths use
    /// [`LoopTask::try_mode`] instead.
    pub fn mode(&self, cfg: &SchedulerConfig) -> ExecutionMode {
        decide_mode(
            &self.analysis.determination,
            self.profile,
            cfg.td_density_threshold,
        )
    }

    /// Panic-free mode selection for the scheduling hot path.
    pub fn try_mode(&self, cfg: &SchedulerConfig) -> Result<ExecutionMode, SchedError> {
        try_decide_mode(
            &self.analysis.determination,
            self.profile,
            cfg.td_density_threshold,
        )
        .ok_or_else(|| {
            SchedError::Internal(format!(
                "loop {} has an uncertain determination but no profile",
                self.loop_.id
            ))
        })
    }
}

/// Evaluate the loop's canonical bounds in `env`.
pub fn eval_bounds(
    program: &Program,
    loop_: &ForLoop,
    env: &Env,
    heap: &mut Heap,
) -> Result<LoopBounds, ExecError> {
    let mut env = env.clone();
    let mut be = HeapBackend::new(heap);
    Interp::new(program).loop_bounds(loop_, &mut env, &mut be)
}

/// Functionally mirror the plan's arrays onto the device (transfer *time*
/// is modeled by the callers' timelines, not by this copy).
pub fn stage_device(
    plan: &DataPlan,
    heap: &Heap,
    dev: &mut DeviceMemory,
    cfg: &SchedulerConfig,
) -> Result<(), ExecError> {
    for e in plan.device_arrays() {
        let len = heap.len_of(e.array)?;
        // `create` arrays are device-only: allocate without a transfer
        // (paper Table I: "do not copy data between the host and device").
        let create_only = plan.create.iter().any(|c| c.array == e.array)
            && !plan.copyin.iter().any(|c| c.array == e.array)
            && !plan.copyout.iter().any(|c| c.array == e.array);
        if create_only {
            let ty = heap.array(e.array)?.ty();
            dev.alloc(e.array, ty, len);
        } else {
            dev.copy_in(heap, e.array, 0, len, &cfg.gpu)?;
        }
    }
    Ok(())
}

/// Run one guarded transfer, retrying transient injected faults with a
/// linear backoff charged to `stats`. Persistent (or retry-exhausted)
/// faults surface as [`SchedError::Device`] for the caller's fallback rung.
pub(crate) fn transfer_with_retry<T>(
    res: &ResilienceConfig,
    stats: &mut FaultStats,
    mut attempt_fn: impl FnMut() -> Result<T, SimtError>,
) -> Result<T, SchedError> {
    let mut attempt = 0u32;
    loop {
        match attempt_fn() {
            Ok(v) => return Ok(v),
            Err(SimtError::Fault(f)) => {
                stats.observe(&f);
                if f.transient && attempt < res.max_retries {
                    attempt += 1;
                    stats.retries += 1;
                    stats.backoff_s += res.retry_backoff_us * 1e-6 * attempt as f64;
                    continue;
                }
                return Err(SchedError::Device {
                    fault: f,
                    stats: *stats,
                });
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// [`stage_device`] under an active fault plan: H2D staging transfers go
/// through the guarded copy path with transient-fault retry. Nothing is
/// special-cased when `cfg.faults` is `None` — the guarded copy degenerates
/// to the plain one.
pub(crate) fn stage_device_guarded(
    plan: &DataPlan,
    heap: &Heap,
    dev: &mut DeviceMemory,
    cfg: &SchedulerConfig,
    origin: FaultOrigin,
    stats: &mut FaultStats,
) -> Result<(), SchedError> {
    let faults = cfg.faults.as_ref();
    for e in plan.device_arrays() {
        let len = heap.len_of(e.array)?;
        let create_only = plan.create.iter().any(|c| c.array == e.array)
            && !plan.copyin.iter().any(|c| c.array == e.array)
            && !plan.copyout.iter().any(|c| c.array == e.array);
        if create_only {
            let ty = heap.array(e.array)?.ty();
            dev.alloc(e.array, ty, len);
        } else {
            transfer_with_retry(&cfg.resilience, stats, || {
                dev.copy_in_guarded(heap, e.array, 0, len, &cfg.gpu, faults, origin)
            })?;
        }
    }
    Ok(())
}

/// Run `lo..hi` of a loop sequentially against a fresh write buffer using
/// whichever chunk engine `ccfg` selects (the deferred-write path modes D
/// and D′ use for ordered cross-device commits). Returns the buffered
/// backend for cycle accounting and write harvesting.
#[allow(clippy::too_many_arguments)] // mirrors the chunk-dispatch signature
pub(crate) fn exec_chunk_buffered<'h>(
    program: &Program,
    ccfg: &CpuConfig,
    loop_: &ForLoop,
    bounds: &LoopBounds,
    lo: u64,
    hi: u64,
    env: &Env,
    heap: &'h Heap,
    kernels: &KernelCache,
) -> Result<japonica_cpuexec::BufferedBackend<'h>, ExecError> {
    let mut be = japonica_cpuexec::BufferedBackend::new(heap);
    let mut cenv = env.clone();
    let compiled = if ccfg.engine == ExecEngine::TreeWalker {
        None
    } else {
        kernels.get_or_compile(program, loop_)
    };
    let native = if ccfg.engine == ExecEngine::Native {
        kernels.native_tier::<NativeKernel, _>(loop_.id.0, compile_native)
    } else {
        None
    };
    match (&native, &compiled) {
        (Some(nk), _) => {
            NativeVm::new().exec_range(nk, loop_.var, bounds, lo, hi, &mut cenv, &mut be)?;
        }
        (None, Some(k)) => {
            ScalarVm::new().exec_range(k, loop_.var, bounds, lo, hi, &mut cenv, &mut be)?;
        }
        (None, None) => {
            Interp::new(program).exec_range(loop_, bounds, lo, hi, &mut cenv, &mut be)?;
        }
    }
    Ok(be)
}

fn apply_writes_to_host(
    heap: &mut Heap,
    writes: &[((ArrayId, i64), Value)],
) -> Result<usize, ExecError> {
    let mut bytes = 0usize;
    for ((arr, idx), v) in writes {
        heap.store(*arr, *idx, *v)?;
        bytes += heap.array(*arr)?.ty().size_bytes();
    }
    Ok(bytes)
}

/// Execute one loop under the task sharing scheme (or its degenerate
/// single-device modes B and C). The host heap holds the authoritative
/// result afterwards.
pub fn run_sharing(
    program: &Program,
    cfg: &SchedulerConfig,
    task: &LoopTask,
    env: &mut Env,
    heap: &mut Heap,
) -> Result<LoopExecReport, SchedError> {
    let mode = task.try_mode(cfg)?;
    let bounds = eval_bounds(program, task.loop_, env, heap)?;
    let trip = bounds.trip();
    let plan = DataPlan::derive(program, task.loop_, &task.analysis.classes, env, heap)?;
    let mut report = LoopExecReport::new(task.loop_.id, mode, Scheme::Sharing);
    report.iterations = trip;
    if trip == 0 {
        return Ok(report);
    }
    // One bytecode compilation per loop, shared by every chunk launch, TLS
    // re-execution and fault-ladder retry below. Private to the run unless
    // the caller hands in a program-scoped cache via `cfg.kernels`
    // (`LoopId`s are only unique within one program, so a shared cache must
    // never span programs).
    let kernels = cfg
        .kernels
        .clone()
        .unwrap_or_else(|| std::sync::Arc::new(KernelCache::new()));
    match mode {
        ExecutionMode::A | ExecutionMode::DPrime => greedy_share(
            program, cfg, task, env, heap, &bounds, &plan, report, /*cpu_seq=*/ false,
            /*privatized=*/ false, &kernels,
        ),
        ExecutionMode::D => greedy_share(
            program, cfg, task, env, heap, &bounds, &plan, report, /*cpu_seq=*/ true,
            /*privatized=*/ true, &kernels,
        ),
        ExecutionMode::B => run_mode_b(
            program, cfg, task, env, heap, &bounds, &plan, report, &kernels,
        ),
        ExecutionMode::C => {
            let r = run_sequential_with(
                program,
                &cfg.cpu,
                task.loop_,
                &bounds,
                0..trip,
                env,
                heap,
                Some(&kernels),
            )?;
            report.cpu_iters = trip;
            report.cpu_busy_s = r.time_s;
            report.wall_s = r.time_s;
            Ok(report)
        }
    }
}

/// The boundary-guided greedy chunk loop shared by modes A, D and D′.
#[allow(clippy::too_many_arguments)]
fn greedy_share(
    program: &Program,
    cfg: &SchedulerConfig,
    task: &LoopTask,
    env: &mut Env,
    heap: &mut Heap,
    bounds: &LoopBounds,
    plan: &DataPlan,
    mut report: LoopExecReport,
    cpu_seq: bool,
    privatized: bool,
    kernels: &KernelCache,
) -> Result<LoopExecReport, SchedError> {
    let trip = bounds.trip();
    // `threads(n)` clause overrides the configured CPU thread count.
    let cpu_threads = task
        .loop_
        .annot
        .as_ref()
        .and_then(|a| a.threads)
        .unwrap_or(cfg.cpu_threads);
    // Uniform chunks of moderate size: one 32nd of the loop, but at least
    // 16 iterations (heavy-iteration loops like MVT still split) and at
    // most `chunk_iters` (cheap-iteration loops amortize per-chunk costs).
    let chunk = trip
        .div_ceil(cfg.max_chunks.max(1))
        .clamp(16.min(trip.max(1)), cfg.chunk_iters.max(16));
    let nchunks = trip.div_ceil(chunk);
    let boundary_iter = (trip as f64 * cfg.boundary_fraction()) as u64;
    let faults = cfg.faults.as_ref();
    let res = &cfg.resilience;
    let watchdog = if faults.is_some() {
        res.watchdog()
    } else {
        None
    };
    let loop_origin = FaultOrigin::for_loop(task.loop_.id);

    let mut dev = DeviceMemory::new();
    if let Err(e) = stage_device_guarded(plan, heap, &mut dev, cfg, loop_origin, &mut report.faults)
    {
        match e {
            SchedError::Device { fault, .. } => {
                // The device is unreachable before any compute was queued:
                // bottom rung of the ladder, the whole loop runs
                // sequentially on the host — unless the caller asked for the
                // fault to escape instead of being absorbed.
                if res.fail_fast {
                    return Err(SchedError::Device {
                        fault,
                        stats: report.faults,
                    });
                }
                report.faults.fallbacks += 1;
                report.faults.escalate(DegradationLevel::Sequential);
                let r = run_sequential_with(
                    program,
                    &cfg.cpu,
                    task.loop_,
                    bounds,
                    0..trip,
                    env,
                    heap,
                    Some(kernels),
                )?;
                report.cpu_iters = trip;
                report.cpu_busy_s = r.time_s + report.faults.backoff_s;
                report.wall_s = report.cpu_busy_s;
                return Ok(report);
            }
            other => return Err(other),
        }
    }
    let stage_backoff = report.faults.backoff_s;
    let bytes_in_total = plan.bytes_in(heap);
    let in_bytes_per_iter = bytes_in_total as f64 / trip as f64;

    // Per-SM availability: Fermi runs concurrent kernels, so small chunk
    // kernels from different stream launches occupy different SMs in
    // parallel instead of serializing.
    let mut sm_free = vec![0.0f64; cfg.gpu.effective_sms() as usize];
    let mut gpu_clock = 0.0f64; // time the GPU *finishes* everything queued
    let mut cpu_clock = 0.0f64;
    let mut transfer_clock = 0.0f64; // the async H2D stream
    let mut front = 0u64;
    let mut back = nchunks;
    // Writes collected per chunk so they can be committed to the host heap
    // in iteration order — false-dependence loops (mode D) need the last
    // writer to win exactly as in sequential execution.
    let mut ordered_writes: Vec<(u64, bool, japonica_tls::WriteList)> = Vec::new();
    let se_overhead = if privatized {
        cfg.tls.se_overhead_cycles / 2.0
    } else {
        0.0
    };

    let mut gpu_started = false;
    let mut cpu_per_chunk_est: Option<f64> = None;
    // Under the paper's literal scheme the CPU never crosses the boundary
    // into the GPU's preferred partition.
    let mut cpu_blocked = false;
    // Degradation ladder state: a device that exhausts its fault tolerance
    // is retired for the rest of the run.
    let mut gpu_alive = true;
    let mut cpu_pool_alive = true;
    while front < back {
        if !cfg.cpu_steals_back && !cpu_blocked {
            let next_cpu_lo = (back - 1) * chunk;
            if next_cpu_lo < boundary_iter {
                cpu_blocked = true;
            }
        }
        // The GPU pulls when an SM can start no later than the CPU frees up.
        let gpu_next = sm_free.iter().copied().fold(f64::INFINITY, f64::min);
        if gpu_alive && (gpu_next <= cpu_clock || cpu_blocked) {
            // GPU pulls the lowest remaining chunk.
            let idx = front;
            let lo = front * chunk;
            let hi = ((front + 1) * chunk).min(trip);
            front += 1;
            let tbytes = (in_bytes_per_iter * (hi - lo) as f64) as usize;
            if !gpu_started {
                // Opening the stream pays the one-time JNI + driver and
                // PCIe latencies; subsequent chunks pipeline behind it.
                gpu_started = true;
                let open = cfg.gpu.kernel_launch_us * 1e-6 + cfg.gpu.pcie_latency_us * 1e-6;
                for f in &mut sm_free {
                    *f += open;
                }
                transfer_clock = sm_free[0];
            }
            let tsec = cfg.gpu.stream_seconds(tbytes);
            let arrival = if lo < boundary_iter {
                // Pre-boundary data streams asynchronously.
                transfer_clock += tsec;
                transfer_clock
            } else {
                // Stolen from the CPU side: synchronous transfer.
                gpu_next + cfg.gpu.transfer_seconds(tbytes)
            };
            // Launch with bounded retry; an unabsorbed fault resubmits the
            // chunk on the CPU timeline. The speculative buffer dies with
            // the kernel, so nothing partial ever reaches device memory.
            let mut attempt = 0u32;
            let mut chunk_backoff = 0.0f64;
            let mut gpu_result = None;
            loop {
                let mut spec = SpeculativeMemory::new(&mut dev, se_overhead);
                match launch_loop_par_with(
                    program,
                    &cfg.gpu,
                    task.loop_,
                    bounds,
                    lo..hi,
                    env,
                    &mut spec,
                    faults,
                    watchdog,
                    Some(kernels),
                ) {
                    Ok(kr) => {
                        let writes = spec.commit_all_collect()?;
                        gpu_result = Some((kr, writes));
                        break;
                    }
                    Err(SimtError::Fault(f)) => {
                        drop(spec);
                        report.faults.observe(&f);
                        if f.transient && attempt < res.max_retries {
                            attempt += 1;
                            report.faults.retries += 1;
                            let b = res.retry_backoff_us * 1e-6 * attempt as f64;
                            report.faults.backoff_s += b;
                            chunk_backoff += b;
                            continue;
                        }
                        if res.fail_fast {
                            return Err(SchedError::Device {
                                fault: f,
                                stats: report.faults,
                            });
                        }
                        report.faults.fallbacks += 1;
                        report.faults.escalate(DegradationLevel::GpuDegraded);
                        let device_faults = report.faults.gpu_faults
                            + report.faults.transfer_faults
                            + report.faults.deadline_overruns;
                        if device_faults >= res.device_fault_tolerance {
                            gpu_alive = false;
                            report.faults.escalate(DegradationLevel::CpuOnly);
                        }
                        break;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            match gpu_result {
                Some((kr, writes)) => {
                    let commit_s = if privatized {
                        cfg.gpu.cycles_to_seconds(
                            writes.len() as f64 * cfg.tls.commit_cycles_per_write,
                        )
                    } else {
                        0.0
                    };
                    ordered_writes.push((idx, true, writes));
                    // Spread this chunk's warps over the least-loaded SMs
                    // (streamed launches pipeline: ~2us issue per chunk
                    // instead of the full JNI launch cost). Each warp
                    // occupies its SM for its share of the chunk's occupied
                    // cycles.
                    let warps = kr.warps.max(1) as usize;
                    let occupied = kr.stats.issue_cycles
                        + kr.stats.mem_cycles / cfg.gpu.mem_concurrency.max(1.0);
                    let per_warp_s = cfg.gpu.cycles_to_seconds(occupied / warps as f64)
                        + commit_s / warps as f64
                        + 2e-6;
                    let mut order: Vec<usize> = (0..sm_free.len()).collect();
                    order.sort_by(|&a, &b| sm_free[a].total_cmp(&sm_free[b]));
                    for w in 0..warps {
                        let sm = order[w % order.len()];
                        sm_free[sm] = sm_free[sm].max(arrival) + per_warp_s + chunk_backoff;
                    }
                    gpu_clock = sm_free.iter().copied().fold(0.0, f64::max);
                    report.gpu_iters += hi - lo;
                }
                None => {
                    // Chunk resubmission: the failed GPU chunk re-runs on
                    // the host. This rung is deliberately unguarded — the
                    // ladder must terminate.
                    let batch_s = if cpu_seq {
                        let be = exec_chunk_buffered(
                            program, &cfg.cpu, task.loop_, bounds, lo, hi, env, heap, kernels,
                        )?;
                        let t = cfg.cpu.cycles_to_seconds(cfg.cpu.cost.total(&be.counts));
                        let writes: Vec<_> = be.into_writes().into_iter().collect();
                        ordered_writes.push((idx, false, writes));
                        t
                    } else {
                        run_parallel_with(
                            program,
                            &cfg.cpu,
                            task.loop_,
                            bounds,
                            lo..hi,
                            env,
                            heap,
                            cpu_threads,
                            Some(kernels),
                        )?
                        .time_s
                    };
                    cpu_clock += batch_s + chunk_backoff;
                    report.cpu_iters += hi - lo;
                }
            }
        } else {
            // CPU pulls from the high end, taking enough chunks per batch
            // that the thread-dispatch overhead stays amortized (the
            // paper's CPU partition is one descending multithreaded range,
            // not per-chunk dispatches).
            let mut take = match cpu_per_chunk_est {
                Some(t) if t > 0.0 => (((50e-6 / t).ceil() as u64).max(1)).min(back - front),
                _ => 1,
            };
            if !cfg.cpu_steals_back && gpu_alive {
                // The whole batch must stay above the boundary.
                let first_cpu_chunk = boundary_iter.div_ceil(chunk);
                take = take.min(back.saturating_sub(first_cpu_chunk)).max(1);
            }
            back -= take;
            let idx = back;
            let lo = back * chunk;
            let hi = ((back + take) * chunk).min(trip);
            let batch_s = if cpu_seq {
                // Deferred-write sequential execution so commits can be
                // ordered across devices (safe for FD-only loops: every
                // cross-chunk read is killed by an own-iteration write).
                let be = exec_chunk_buffered(
                    program, &cfg.cpu, task.loop_, bounds, lo, hi, env, heap, kernels,
                )?;
                let cycles = cfg.cpu.cost.total(&be.counts);
                let t = cfg.cpu.cycles_to_seconds(cycles);
                let writes: Vec<_> = be.into_writes().into_iter().collect();
                ordered_writes.push((idx, false, writes));
                t
            } else {
                // Worker-pool dispatch with bounded retry; a pool that
                // exhausts its fault tolerance is retired and batches drop
                // to sequential execution (the guaranteed rung).
                let mut attempt = 0u32;
                loop {
                    if !cpu_pool_alive {
                        let r = run_sequential_with(
                            program,
                            &cfg.cpu,
                            task.loop_,
                            bounds,
                            lo..hi,
                            &mut env.clone(),
                            heap,
                            Some(kernels),
                        )?;
                        break r.time_s;
                    }
                    match run_parallel_guarded_with(
                        program,
                        &cfg.cpu,
                        task.loop_,
                        bounds,
                        lo..hi,
                        env,
                        heap,
                        cpu_threads,
                        faults,
                        loop_origin.with_chunk(idx),
                        Some(kernels),
                    ) {
                        Ok(r) => break r.time_s,
                        Err(CpuExecError::Fault(f)) => {
                            report.faults.observe(&f);
                            if f.transient && attempt < res.max_retries {
                                attempt += 1;
                                report.faults.retries += 1;
                                let b = res.retry_backoff_us * 1e-6 * attempt as f64;
                                report.faults.backoff_s += b;
                                cpu_clock += b;
                                continue;
                            }
                            if res.fail_fast {
                                return Err(SchedError::Device {
                                    fault: f,
                                    stats: report.faults,
                                });
                            }
                            report.faults.fallbacks += 1;
                            if report.faults.cpu_faults >= res.device_fault_tolerance {
                                cpu_pool_alive = false;
                                report.faults.escalate(DegradationLevel::Sequential);
                            }
                            // One sequential shot for this batch either way.
                            let r = run_sequential_with(
                                program,
                                &cfg.cpu,
                                task.loop_,
                                bounds,
                                lo..hi,
                                &mut env.clone(),
                                heap,
                                Some(kernels),
                            )?;
                            break r.time_s;
                        }
                        Err(CpuExecError::Exec(e)) => return Err(e.into()),
                    }
                }
            };
            cpu_clock += batch_s;
            cpu_per_chunk_est = Some(batch_s / take as f64);
            report.cpu_iters += hi - lo;
        }
    }

    // Commit all deferred writes in chunk (iteration) order; count the
    // GPU-written bytes for the device-to-host transfer model.
    ordered_writes.sort_by_key(|(idx, _, _)| *idx);
    let mut bytes_out = 0usize;
    for (_, from_gpu, writes) in &ordered_writes {
        let b = apply_writes_to_host(heap, writes)?;
        if *from_gpu {
            bytes_out += b;
        }
    }
    if report.gpu_iters > 0 {
        // Results stream back on the return direction of the (full-duplex)
        // link, overlapping compute; only the tail of the last chunk's
        // write-back lands after the final kernel.
        let gpu_chunks = (report.gpu_iters as f64 / chunk as f64).ceil().max(1.0);
        gpu_clock += cfg.gpu.stream_seconds(bytes_out) / gpu_chunks;
    }
    report.gpu_busy_s = gpu_clock;
    report.cpu_busy_s = cpu_clock;
    report.bytes_in = (in_bytes_per_iter * report.gpu_iters as f64) as usize;
    report.bytes_out = bytes_out;
    report.transfer_s =
        cfg.gpu.transfer_seconds(report.bytes_in) + cfg.gpu.transfer_seconds(bytes_out);
    report.wall_s = gpu_clock.max(cpu_clock) + stage_backoff;
    Ok(report)
}

/// Mode B: the whole iteration space under GPU-TLS, with transfers at both
/// ends and CPU recovery inside the engine.
#[allow(clippy::too_many_arguments)]
fn run_mode_b(
    program: &Program,
    cfg: &SchedulerConfig,
    task: &LoopTask,
    env: &Env,
    heap: &mut Heap,
    bounds: &LoopBounds,
    plan: &DataPlan,
    mut report: LoopExecReport,
    kernels: &KernelCache,
) -> Result<LoopExecReport, SchedError> {
    let trip = bounds.trip();
    let faults = cfg.faults.as_ref();
    let res = &cfg.resilience;
    let loop_origin = FaultOrigin::for_loop(task.loop_.id);
    // The sequential rung for mode B restores the heap to its pre-loop
    // state and replays everything on the host.
    let sequential_rung =
        |report: &mut LoopExecReport, heap: &mut Heap, pristine: Heap| -> Result<(), SchedError> {
            report.faults.fallbacks += 1;
            report.faults.escalate(DegradationLevel::Sequential);
            *heap = pristine;
            let r = run_sequential_with(
                program,
                &cfg.cpu,
                task.loop_,
                bounds,
                0..trip,
                &mut env.clone(),
                heap,
                Some(kernels),
            )?;
            report.gpu_iters = 0;
            report.cpu_iters = trip;
            report.cpu_busy_s = r.time_s + report.faults.backoff_s;
            report.wall_s = report.cpu_busy_s;
            Ok(())
        };
    // Snapshot only under an active plan; the happy path pays nothing.
    let pristine = faults.map(|_| heap.clone());
    let mut dev = DeviceMemory::new();
    if let Err(e) = stage_device_guarded(plan, heap, &mut dev, cfg, loop_origin, &mut report.faults)
    {
        return match (e, pristine) {
            (SchedError::Device { fault, .. }, Some(p)) => {
                if res.fail_fast {
                    return Err(SchedError::Device {
                        fault,
                        stats: report.faults,
                    });
                }
                sequential_rung(&mut report, heap, p)?;
                Ok(report)
            }
            (other, _) => Err(other),
        };
    }
    let h2d = cfg.gpu.transfer_seconds(plan.bytes_in(heap));
    let tls = run_tls_loop_guarded_with(
        program,
        &cfg.gpu,
        &cfg.cpu,
        &cfg.tls,
        task.loop_,
        bounds,
        0..trip,
        env,
        &mut dev,
        task.profile.map(|p| &p.td_iters),
        faults,
        res,
        Some(kernels),
    )?;
    report.faults.gpu_faults += tls.device_faults;
    report.faults.retries += tls.fault_retries;
    if tls.device_faults > 0 {
        report.faults.escalate(DegradationLevel::GpuDegraded);
    }
    // The full loop ran against the device: copy the output plan back.
    // Transfer faults are retried; an unabsorbed one discards the partial
    // copy-back and drops to the sequential rung from the pristine heap.
    let mut bytes_out = 0;
    for e in &plan.copyout {
        let copied = transfer_with_retry(res, &mut report.faults, || {
            dev.copy_out_guarded(heap, e.array, e.lo, e.hi, &cfg.gpu, faults, loop_origin)
        });
        match copied {
            Ok(_) => bytes_out += e.bytes(heap),
            Err(SchedError::Device { fault, .. }) => {
                let (Some(p), false) = (pristine, res.fail_fast) else {
                    return Err(SchedError::Device {
                        fault,
                        stats: report.faults,
                    });
                };
                sequential_rung(&mut report, heap, p)?;
                return Ok(report);
            }
            Err(other) => return Err(other),
        }
    }
    let d2h = cfg.gpu.transfer_seconds(bytes_out);
    report.gpu_iters = trip - tls.recovered_iters;
    report.cpu_iters = tls.recovered_iters;
    report.gpu_busy_s = tls.gpu_time_s;
    report.cpu_busy_s = tls.cpu_time_s;
    report.bytes_in = plan.bytes_in(heap);
    report.bytes_out = bytes_out;
    report.transfer_s = h2d + d2h;
    report.wall_s = h2d + tls.time_s + d2h;
    report.tls = Some(tls);
    Ok(report)
}

// ---------------------------------------------------------------------
// Baseline executors (used by the evaluation harness).
// ---------------------------------------------------------------------

/// CPU-only execution: multithreaded for loops without proven/observed true
/// dependences, sequential otherwise.
pub fn run_cpu_only(
    program: &Program,
    cfg: &SchedulerConfig,
    task: &LoopTask,
    env: &mut Env,
    heap: &mut Heap,
    threads: u32,
) -> Result<LoopExecReport, SchedError> {
    let mode = task.try_mode(cfg)?;
    let bounds = eval_bounds(program, task.loop_, env, heap)?;
    let trip = bounds.trip();
    let mut report = LoopExecReport::new(task.loop_.id, mode, Scheme::Sharing);
    report.iterations = trip;
    report.cpu_iters = trip;
    let kernels = cfg
        .kernels
        .clone()
        .unwrap_or_else(|| std::sync::Arc::new(KernelCache::new()));
    let r = match mode {
        ExecutionMode::B | ExecutionMode::C => {
            // A true dependence exists somewhere: a plain Java port cannot
            // blindly multithread this loop.
            run_sequential_with(
                program,
                &cfg.cpu,
                task.loop_,
                &bounds,
                0..trip,
                env,
                heap,
                Some(&kernels),
            )?
        }
        _ => run_parallel_with(
            program,
            &cfg.cpu,
            task.loop_,
            &bounds,
            0..trip,
            env,
            heap,
            threads,
            Some(&kernels),
        )?,
    };
    report.cpu_busy_s = r.time_s;
    report.wall_s = r.time_s;
    Ok(report)
}

/// Serial (1-thread) CPU execution — the paper's "best serial" baseline.
pub fn run_cpu_serial(
    program: &Program,
    cfg: &SchedulerConfig,
    task: &LoopTask,
    env: &mut Env,
    heap: &mut Heap,
) -> Result<LoopExecReport, SchedError> {
    let bounds = eval_bounds(program, task.loop_, env, heap)?;
    let trip = bounds.trip();
    let mut report = LoopExecReport::new(task.loop_.id, task.try_mode(cfg)?, Scheme::Sharing);
    report.iterations = trip;
    report.cpu_iters = trip;
    let kernels = cfg
        .kernels
        .clone()
        .unwrap_or_else(|| std::sync::Arc::new(KernelCache::new()));
    let r = run_sequential_with(
        program,
        &cfg.cpu,
        task.loop_,
        &bounds,
        0..trip,
        env,
        heap,
        Some(&kernels),
    )?;
    report.cpu_busy_s = r.time_s;
    report.wall_s = r.time_s;
    Ok(report)
}

/// GPU-only execution, like a plain CUDA port: synchronous full H2D, one
/// engine run over the whole range, synchronous full D2H. The engine
/// matches the loop's dependence class (plain kernel / privatized / TLS).
pub fn run_gpu_only(
    program: &Program,
    cfg: &SchedulerConfig,
    task: &LoopTask,
    env: &Env,
    heap: &mut Heap,
) -> Result<LoopExecReport, SchedError> {
    let mode = task.try_mode(cfg)?;
    let bounds = eval_bounds(program, task.loop_, env, heap)?;
    let trip = bounds.trip();
    let plan = DataPlan::derive(program, task.loop_, &task.analysis.classes, env, heap)?;
    let mut report = LoopExecReport::new(task.loop_.id, mode, Scheme::Sharing);
    report.iterations = trip;
    report.gpu_iters = trip;
    if trip == 0 {
        return Ok(report);
    }
    let mut dev = DeviceMemory::new();
    stage_device(&plan, heap, &mut dev, cfg)?;
    let h2d = cfg.gpu.transfer_seconds(plan.bytes_in(heap));
    let mut tls_report = None;
    let kernels = cfg
        .kernels
        .clone()
        .unwrap_or_else(|| std::sync::Arc::new(KernelCache::new()));
    let compute_s = match mode {
        ExecutionMode::A | ExecutionMode::DPrime => {
            let kr = launch_loop_par_with(
                program,
                &cfg.gpu,
                task.loop_,
                &bounds,
                0..trip,
                env,
                &mut dev,
                None,
                None,
                Some(&kernels),
            )?;
            kr.time_s
        }
        ExecutionMode::D => {
            let r = run_privatized_with(
                program,
                &cfg.gpu,
                &cfg.tls,
                task.loop_,
                &bounds,
                0..trip,
                env,
                &mut dev,
                Some(&kernels),
            )?;
            let t = r.time_s;
            tls_report = Some(r);
            t
        }
        ExecutionMode::B | ExecutionMode::C => {
            // Speculation is the only way a GPU port can run a loop with
            // true dependences; dense TD makes this thrash (Gauss-Seidel's
            // tiny GPU bar in the paper's Fig. 4). A hand-ported GPU-only
            // version has no profiler, so it speculates blind.
            let r = run_tls_loop_guarded_with(
                program,
                &cfg.gpu,
                &cfg.cpu,
                &cfg.tls,
                task.loop_,
                &bounds,
                0..trip,
                env,
                &mut dev,
                None,
                None,
                &ResilienceConfig::default(),
                Some(&kernels),
            )?;
            let t = r.time_s;
            report.cpu_iters = r.recovered_iters;
            report.gpu_iters = trip - r.recovered_iters;
            tls_report = Some(r);
            t
        }
    };
    let mut bytes_out = 0;
    for e in &plan.copyout {
        dev.copy_out(heap, e.array, e.lo, e.hi, &cfg.gpu)?;
        bytes_out += e.bytes(heap);
    }
    let d2h = cfg.gpu.transfer_seconds(bytes_out);
    report.gpu_busy_s = compute_s;
    report.bytes_in = plan.bytes_in(heap);
    report.bytes_out = bytes_out;
    report.transfer_s = h2d + d2h;
    report.tls = tls_report;
    report.wall_s = h2d + compute_s + d2h;
    Ok(report)
}

/// A fixed-fraction cooperative split with no stealing and no streamed
/// transfers — the paper's naive "CPU 50% + GPU 50%" comparison point.
pub fn run_fixed_split(
    program: &Program,
    cfg: &SchedulerConfig,
    task: &LoopTask,
    env: &Env,
    heap: &mut Heap,
    gpu_fraction: f64,
) -> Result<LoopExecReport, SchedError> {
    let mode = task.try_mode(cfg)?;
    let bounds = eval_bounds(program, task.loop_, env, heap)?;
    let trip = bounds.trip();
    let plan = DataPlan::derive(program, task.loop_, &task.analysis.classes, env, heap)?;
    let mut report = LoopExecReport::new(task.loop_.id, mode, Scheme::Sharing);
    report.iterations = trip;
    let split = ((trip as f64 * gpu_fraction) as u64).min(trip);
    let mut dev = DeviceMemory::new();
    stage_device(&plan, heap, &mut dev, cfg)?;
    let in_share = (plan.bytes_in(heap) as f64 * gpu_fraction) as usize;
    let h2d = cfg.gpu.transfer_seconds(in_share);
    let kernels = cfg
        .kernels
        .clone()
        .unwrap_or_else(|| std::sync::Arc::new(KernelCache::new()));
    let mut spec = SpeculativeMemory::new(&mut dev, 0.0);
    let kr = launch_loop_par_with(
        program,
        &cfg.gpu,
        task.loop_,
        &bounds,
        0..split,
        env,
        &mut spec,
        None,
        None,
        Some(&kernels),
    )?;
    let writes = spec.commit_all_collect()?;
    let cpu = run_parallel_with(
        program,
        &cfg.cpu,
        task.loop_,
        &bounds,
        split..trip,
        env,
        heap,
        cfg.cpu_threads,
        Some(&kernels),
    )?;
    let bytes_out = apply_writes_to_host(heap, &writes)?;
    let d2h = cfg.gpu.transfer_seconds(bytes_out);
    report.gpu_iters = split;
    report.cpu_iters = trip - split;
    report.gpu_busy_s = h2d + kr.time_s + d2h;
    report.cpu_busy_s = cpu.time_s;
    report.bytes_in = in_share;
    report.bytes_out = bytes_out;
    report.transfer_s = h2d + d2h;
    report.wall_s = report.gpu_busy_s.max(report.cpu_busy_s);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use japonica_analysis::analyze_loop;
    use japonica_frontend::compile_source;
    use japonica_ir::ParamTy;

    /// Compile + bind one double array of len n per array param; returns
    /// everything needed to schedule the first annotated loop.
    pub(crate) struct Fx {
        pub program: Program,
        pub loop_: ForLoop,
        pub analysis: LoopAnalysis,
        pub env: Env,
        pub heap: Heap,
        pub arrays: Vec<ArrayId>,
    }

    pub(crate) fn fx(src: &str, n: usize) -> Fx {
        let program = compile_source(src).unwrap();
        let f = &program.functions[0];
        let loop_ = f
            .all_loops()
            .into_iter()
            .find(|l| l.is_annotated())
            .unwrap()
            .clone();
        let analysis = analyze_loop(&loop_);
        let mut heap = Heap::new();
        let mut env = Env::with_slots(f.num_vars);
        let mut arrays = Vec::new();
        for p in &f.params {
            match p.ty {
                ParamTy::Array(_) => {
                    let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
                    let a = heap.alloc_doubles(&vals);
                    env.set(p.var, Value::Array(a));
                    arrays.push(a);
                }
                ParamTy::Scalar(_) => env.set(p.var, Value::Int(n as i32)),
            }
        }
        Fx {
            program: program.clone(),
            loop_,
            analysis,
            env,
            heap,
            arrays,
        }
    }

    fn seq_reference(fx: &Fx) -> Vec<Vec<f64>> {
        let mut heap = fx.heap.clone();
        let bounds = eval_bounds(&fx.program, &fx.loop_, &fx.env, &mut heap).unwrap();
        run_sequential_with(
            &fx.program,
            &CpuConfig::default(),
            &fx.loop_,
            &bounds,
            0..bounds.trip(),
            &mut fx.env.clone(),
            &mut heap,
            None,
        )
        .unwrap();
        fx.arrays
            .iter()
            .map(|a| heap.read_doubles(*a).unwrap())
            .collect()
    }

    use japonica_cpuexec::CpuConfig;

    const SAXPY: &str = "static void f(double[] x, double[] y, int n) {
        /* acc parallel */
        for (int i = 0; i < n; i++) { y[i] = 2.0 * x[i] + y[i]; }
    }";

    #[test]
    fn mode_a_sharing_produces_sequential_results() {
        let mut f = fx(SAXPY, 20_000);
        let expect = seq_reference(&f);
        let cfg = SchedulerConfig::default();
        let task = LoopTask {
            loop_: &f.loop_,
            analysis: &f.analysis,
            profile: None,
        };
        let r = run_sharing(&f.program, &cfg, &task, &mut f.env.clone(), &mut f.heap).unwrap();
        assert_eq!(r.mode, ExecutionMode::A);
        assert_eq!(r.gpu_iters + r.cpu_iters, 20_000);
        assert!(r.gpu_iters > 0, "GPU should take most of a DOALL loop");
        for (a, e) in f.arrays.iter().zip(&expect) {
            assert_eq!(&f.heap.read_doubles(*a).unwrap(), e);
        }
    }

    const HEAVY: &str = "static void f(double[] x, double[] y, int n) {
        /* acc parallel */
        for (int i = 0; i < n; i++) {
            y[i] = Math.sqrt(x[i] * x[i] + y[i] * y[i]) + Math.exp(x[i] * 0.001);
        }
    }";

    #[test]
    fn sharing_beats_both_single_device_baselines_on_compute_heavy_loop() {
        let cfg = SchedulerConfig::default();
        let n = 200_000;
        let wall = |runner: &dyn Fn(&mut Fx) -> LoopExecReport| {
            let mut f = fx(HEAVY, n);
            runner(&mut f).wall_s
        };
        let shared = wall(&|f| {
            let task = LoopTask {
                loop_: &f.loop_,
                analysis: &f.analysis,
                profile: None,
            };
            run_sharing(&f.program, &cfg, &task, &mut f.env.clone(), &mut f.heap).unwrap()
        });
        let gpu = wall(&|f| {
            let task = LoopTask {
                loop_: &f.loop_,
                analysis: &f.analysis,
                profile: None,
            };
            run_gpu_only(&f.program, &cfg, &task, &f.env.clone(), &mut f.heap).unwrap()
        });
        let cpu = wall(&|f| {
            let task = LoopTask {
                loop_: &f.loop_,
                analysis: &f.analysis,
                profile: None,
            };
            run_cpu_only(&f.program, &cfg, &task, &mut f.env.clone(), &mut f.heap, 16).unwrap()
        });
        assert!(shared < gpu, "shared {shared} vs gpu {gpu}");
        assert!(shared < cpu, "shared {shared} vs cpu {cpu}");
    }

    #[test]
    fn mode_c_runs_entirely_on_cpu() {
        let mut f = fx(
            "static void f(double[] a, int n) {
                /* acc parallel */
                for (int i = 1; i < n; i++) { a[i] = a[i - 1] * 0.5 + a[i]; }
            }",
            4096,
        );
        let expect = seq_reference(&f);
        let cfg = SchedulerConfig::default();
        let task = LoopTask {
            loop_: &f.loop_,
            analysis: &f.analysis,
            profile: None,
        };
        let r = run_sharing(&f.program, &cfg, &task, &mut f.env.clone(), &mut f.heap).unwrap();
        assert_eq!(r.mode, ExecutionMode::C);
        assert_eq!(r.gpu_iters, 0);
        assert_eq!(f.heap.read_doubles(f.arrays[0]).unwrap(), expect[0]);
    }

    #[test]
    fn fixed_split_fifty_fifty_matches_results() {
        let mut f = fx(SAXPY, 10_000);
        let expect = seq_reference(&f);
        let cfg = SchedulerConfig::default();
        let task = LoopTask {
            loop_: &f.loop_,
            analysis: &f.analysis,
            profile: None,
        };
        let r = run_fixed_split(&f.program, &cfg, &task, &f.env, &mut f.heap, 0.5).unwrap();
        assert_eq!(r.gpu_iters, 5000);
        assert_eq!(r.cpu_iters, 5000);
        for (a, e) in f.arrays.iter().zip(&expect) {
            assert_eq!(&f.heap.read_doubles(*a).unwrap(), e);
        }
    }

    #[test]
    fn gpu_only_pays_unoverlapped_transfers() {
        let mut f = fx(SAXPY, 50_000);
        let cfg = SchedulerConfig::default();
        let task = LoopTask {
            loop_: &f.loop_,
            analysis: &f.analysis,
            profile: None,
        };
        let r = run_gpu_only(&f.program, &cfg, &task, &f.env, &mut f.heap).unwrap();
        // wall includes both directions of traffic
        assert!(r.transfer_s > 0.0);
        assert!(r.wall_s >= r.transfer_s);
        assert_eq!(r.bytes_in, 2 * 50_000 * 8); // x and y in
        assert_eq!(r.bytes_out, 50_000 * 8); // y out
    }

    #[test]
    fn report_accounts_every_iteration_once() {
        let mut f = fx(SAXPY, 33_333);
        let cfg = SchedulerConfig {
            chunk_iters: 1000,
            ..SchedulerConfig::default()
        };
        let task = LoopTask {
            loop_: &f.loop_,
            analysis: &f.analysis,
            profile: None,
        };
        let r = run_sharing(&f.program, &cfg, &task, &mut f.env.clone(), &mut f.heap).unwrap();
        assert_eq!(r.gpu_iters + r.cpu_iters, 33_333);
        assert!(r.wall_s >= r.gpu_busy_s.min(r.cpu_busy_s));
    }
}

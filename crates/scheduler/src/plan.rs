//! The data-movement plan: which arrays move host↔device, over which
//! element ranges (paper §III-B).

use japonica_analysis::VarClasses;
use japonica_ir::{ArrayId, Env, ExecError, ForLoop, Heap, HeapBackend, Interp, Program};

/// One array transfer entry: the element range `lo..hi`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanEntry {
    pub array: ArrayId,
    pub lo: usize,
    pub hi: usize,
}

impl PlanEntry {
    /// Bytes this entry moves.
    pub fn bytes(&self, heap: &Heap) -> usize {
        let elem = heap
            .array(self.array)
            .map(|a| a.ty().size_bytes())
            .unwrap_or(0);
        (self.hi.saturating_sub(self.lo)) * elem
    }
}

/// The complete data plan of one loop.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataPlan {
    /// Host→device before the loop.
    pub copyin: Vec<PlanEntry>,
    /// Device→host after the loop.
    pub copyout: Vec<PlanEntry>,
    /// Device-only allocations.
    pub create: Vec<PlanEntry>,
}

impl DataPlan {
    /// Derive the plan for `loop_`: explicit clause ranges when the user
    /// gave data clauses, otherwise whole-array transfers for the live-in /
    /// live-out arrays found by classification (paper: "our code translator
    /// could automatically generate necessary data movement APIs for the
    /// live-in and live-out variables").
    pub fn derive(
        program: &Program,
        loop_: &ForLoop,
        classes: &VarClasses,
        env: &Env,
        heap: &mut Heap,
    ) -> Result<DataPlan, ExecError> {
        let interp = Interp::new(program);
        let annot = loop_.annot.clone().unwrap_or_default();
        let mut plan = DataPlan::default();
        if annot.has_data_clauses() {
            let mut eval_ranges =
                |ranges: &[japonica_ir::ArrayRange]| -> Result<Vec<PlanEntry>, ExecError> {
                    let mut out = Vec::new();
                    for r in ranges {
                        let mut env = env.clone();
                        let arr = env.get(r.array)?.as_array().ok_or_else(|| {
                            ExecError::TypeMismatch {
                                expected: "array".into(),
                                found: format!("{}", r.array),
                            }
                        })?;
                        let len = heap.len_of(arr)?;
                        let mut be = HeapBackend::new(heap);
                        let lo = match &r.lo {
                            Some(e) => interp
                                .eval(e, &mut env, &mut be, 0)?
                                .as_i64()
                                .unwrap_or(0)
                                .max(0) as usize,
                            None => 0,
                        };
                        let hi = match &r.hi {
                            Some(e) => (interp
                                .eval(e, &mut env, &mut be, 0)?
                                .as_i64()
                                .unwrap_or(len as i64)
                                .max(0) as usize)
                                .min(len),
                            None => len,
                        };
                        out.push(PlanEntry { array: arr, lo, hi });
                    }
                    Ok(out)
                };
            plan.copyin = eval_ranges(&annot.copyin)?;
            plan.copyout = eval_ranges(&annot.copyout)?;
            plan.create = eval_ranges(&annot.create)?;
        } else {
            let whole = |ids: Vec<japonica_ir::VarId>,
                         env: &Env,
                         heap: &Heap|
             -> Result<Vec<PlanEntry>, ExecError> {
                let mut out = Vec::new();
                for v in ids {
                    if let Some(arr) = env.get(v)?.as_array() {
                        out.push(PlanEntry {
                            array: arr,
                            lo: 0,
                            hi: heap.len_of(arr)?,
                        });
                    }
                }
                Ok(out)
            };
            plan.copyin = whole(classes.arrays_in(), env, heap)?;
            plan.copyout = whole(classes.arrays_out(), env, heap)?;
        }
        Ok(plan)
    }

    /// All arrays that must be resident on the device.
    pub fn device_arrays(&self) -> Vec<PlanEntry> {
        let mut out = self.copyin.clone();
        for e in self.copyout.iter().chain(&self.create) {
            if !out.iter().any(|x| x.array == e.array) {
                out.push(e.clone());
            }
        }
        out
    }

    /// Total host→device bytes.
    pub fn bytes_in(&self, heap: &Heap) -> usize {
        self.copyin.iter().map(|e| e.bytes(heap)).sum()
    }

    /// Total device→host bytes if the whole copyout plan moves back.
    pub fn bytes_out(&self, heap: &Heap) -> usize {
        self.copyout.iter().map(|e| e.bytes(heap)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use japonica_analysis::classify_variables;
    use japonica_frontend::compile_source;
    use japonica_ir::Value;

    fn plan_for(src: &str, n: usize) -> (DataPlan, Heap, Vec<ArrayId>) {
        let p = compile_source(src).unwrap();
        let f = &p.functions[0];
        let l = f
            .all_loops()
            .into_iter()
            .find(|l| l.is_annotated())
            .unwrap()
            .clone();
        let mut heap = Heap::new();
        let mut env = Env::with_slots(f.num_vars);
        let mut arrays = Vec::new();
        for prm in &f.params {
            match prm.ty {
                japonica_ir::ParamTy::Array(_) => {
                    let a = heap.alloc_doubles(&vec![0.0; n]);
                    env.set(prm.var, Value::Array(a));
                    arrays.push(a);
                }
                japonica_ir::ParamTy::Scalar(_) => env.set(prm.var, Value::Int(n as i32)),
            }
        }
        let classes = classify_variables(&l);
        let plan = DataPlan::derive(&p, &l, &classes, &env, &mut heap).unwrap();
        (plan, heap, arrays)
    }

    #[test]
    fn explicit_clauses_win() {
        let (plan, heap, arrays) = plan_for(
            "static void f(double[] a, double[] b, int n) {
                /* acc parallel copyin(a[0:n]) copyout(b[10:20]) */
                for (int i = 0; i < n; i++) { b[i] = a[i]; }
            }",
            100,
        );
        assert_eq!(
            plan.copyin,
            vec![PlanEntry {
                array: arrays[0],
                lo: 0,
                hi: 100
            }]
        );
        assert_eq!(
            plan.copyout,
            vec![PlanEntry {
                array: arrays[1],
                lo: 10,
                hi: 20
            }]
        );
        assert_eq!(plan.bytes_in(&heap), 800);
        assert_eq!(plan.bytes_out(&heap), 80);
    }

    #[test]
    fn automatic_plan_from_classification() {
        let (plan, _, arrays) = plan_for(
            "static void f(double[] a, double[] b, int n) {
                /* acc parallel */
                for (int i = 0; i < n; i++) { b[i] = a[i] * 2.0; }
            }",
            64,
        );
        assert_eq!(plan.copyin.len(), 1);
        assert_eq!(plan.copyin[0].array, arrays[0]);
        assert_eq!(plan.copyout.len(), 1);
        assert_eq!(plan.copyout[0].array, arrays[1]);
        assert_eq!(plan.copyin[0].hi, 64);
    }

    #[test]
    fn inout_array_appears_on_both_sides() {
        let (plan, _, arrays) = plan_for(
            "static void f(double[] a, int n) {
                /* acc parallel */
                for (int i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
            }",
            16,
        );
        assert_eq!(plan.copyin[0].array, arrays[0]);
        assert_eq!(plan.copyout[0].array, arrays[0]);
        // device set deduplicates
        assert_eq!(plan.device_arrays().len(), 1);
    }

    #[test]
    fn clause_ranges_clamped_to_length() {
        let (plan, _, _) = plan_for(
            "static void f(double[] a, double[] b, int n) {
                /* acc parallel copyin(a[0:n*n]) copyout(b) */
                for (int i = 0; i < n; i++) { b[i] = a[i]; }
            }",
            10,
        );
        // n*n = 100 > len 10: clamped
        assert_eq!(plan.copyin[0].hi, 10);
        assert_eq!(plan.copyout[0].hi, 10);
    }
}

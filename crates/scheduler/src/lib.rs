//! # japonica-scheduler
//!
//! The profile-guided task scheduler of Japonica (paper §V): the component
//! that distributes annotated-loop work across the CPU cores and the GPU.
//!
//! * [`modes`] — the execution-mode decision workflow of paper Fig. 2(b):
//!   statically-proven DOALL loops run in **mode A** (split across GPU and
//!   CPU at the boundary); profiled loops run in **mode B** (GPU-TLS, low
//!   true-dependence density), **mode C** (CPU sequential, high density),
//!   **mode D** (privatization on GPU + sequential CPU share, only false
//!   dependences) or **mode D′** (no dependences observed at run time —
//!   parallel on both sides);
//! * [`plan`] — the data-movement plan: explicit `copyin`/`copyout` clause
//!   ranges when given, otherwise automatically derived from the live-in /
//!   live-out classification (paper §III-B);
//! * [`sharing`] — the **task sharing** scheme (§V-A): one loop's iteration
//!   space is split at the boundary `Cg·Fg / (Cg·Fg + Cc·Fc)`; the GPU works
//!   through uniform chunks in ascending order with asynchronous streamed
//!   transfers, the CPU works multi-threaded from the back, and whichever
//!   device drains its share early pulls chunks from the other side (extra
//!   transfers included — the paper's GEMM overhead note);
//! * [`stealing`] — the **task stealing** scheme (§V-B, Algorithm 1): whole
//!   loops (or sub-loops) are tasks; the PDG yields topologically sorted
//!   batches of independent tasks, each distributed to the CPU or GPU queue
//!   by dependence class, with idle-device stealing;
//! * [`report`] — per-loop and per-run execution reports.

pub mod config;
pub mod modes;
pub mod plan;
pub mod report;
pub mod sharing;
pub mod stealing;

pub use config::SchedulerConfig;
pub use modes::{decide_mode, ExecutionMode};
pub use plan::DataPlan;
pub use report::{LoopExecReport, SchedError};
pub use sharing::{run_sharing, LoopTask};
pub use stealing::{run_stealing, StealingReport};

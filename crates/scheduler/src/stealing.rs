//! The task stealing scheme (paper §V-B, Algorithm 1).
//!
//! Tasks are whole loops (or sub-loops: the paper splits BICG's loops into
//! four and Crypt's into eight). The PDG groups tasks into topologically
//! sorted batches of mutually independent tasks; each batch is distributed
//! to the CPU and GPU queues by dependence class:
//!
//! * loops with high TD density → CPU (obligatory);
//! * loops without TD after profiling → GPU (obligatory);
//! * loops with moderate TD density → CPU;
//! * compile-time DOALL loops → GPU.
//!
//! After distribution, an empty queue immediately steals one preferential
//! task from the other queue (Algorithm 1, lines 7–10); during execution,
//! a worker that drains its queue steals from the other side. A barrier
//! separates batches ("wait until all tasks in taskSet are done").

use crate::config::SchedulerConfig;
use crate::modes::ExecutionMode;
use crate::plan::DataPlan;
use crate::report::{LoopExecReport, SchedError};
use crate::sharing::{eval_bounds, stage_device_guarded, transfer_with_retry, LoopTask};
use japonica_analysis::Pdg;
use japonica_cpuexec::{run_parallel_guarded_with, run_sequential_with, CpuExecError};
use japonica_faults::{DegradationLevel, FaultOrigin, FaultStats};
use japonica_gpusim::{launch_loop_par_with, DeviceMemory, SimtError};
use japonica_ir::{Env, Heap, KernelCache, LoopBounds, LoopId, Program, Scheme};
use japonica_tls::SpeculativeMemory;
use std::collections::VecDeque;

/// Which device executed a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Device {
    Gpu,
    Cpu,
}

/// Execution record of one (sub-)task.
#[derive(Debug, Clone)]
pub struct TaskRecord {
    pub loop_id: LoopId,
    /// Sub-loop index within its loop and the loop's sub-loop count.
    pub subloop: (u32, u32),
    /// Iteration range (0-based indices).
    pub range: (u64, u64),
    pub device: Device,
    /// The task ran on the other device than initially queued.
    pub stolen: bool,
    /// Simulated start/end on its device timeline.
    pub start_s: f64,
    pub end_s: f64,
}

/// Report of a whole stealing-scheme run.
#[derive(Debug, Clone, Default)]
pub struct StealingReport {
    /// Per-task execution records, in simulated completion order.
    pub tasks: Vec<TaskRecord>,
    /// Batch boundaries (simulated end time of each batch).
    pub batch_ends: Vec<f64>,
    pub gpu_busy_s: f64,
    pub cpu_busy_s: f64,
    /// Tasks the GPU stole from the CPU queue and vice versa.
    pub stolen_by_gpu: u32,
    pub stolen_by_cpu: u32,
    pub gpu_iters: u64,
    pub cpu_iters: u64,
    /// Injected-fault bookkeeping: retries, fallbacks, degradation ladder.
    pub faults: FaultStats,
    /// End-to-end simulated wall time.
    pub wall_s: f64,
}

impl StealingReport {
    /// Export the schedule as a `chrome://tracing` / Perfetto JSON trace:
    /// one row per device, one complete event per (sub-)task, timestamps in
    /// simulated microseconds.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[");
        for (i, t) in self.tasks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let tid = match t.device {
                Device::Gpu => 1,
                Device::Cpu => 2,
            };
            out.push_str(&format!(
                "{{\"name\":\"{} sub {}/{}{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                t.loop_id,
                t.subloop.0 + 1,
                t.subloop.1,
                if t.stolen { " (stolen)" } else { "" },
                tid,
                t.start_s * 1e6,
                (t.end_s - t.start_s) * 1e6,
            ));
        }
        out.push(']');
        out
    }

    /// Fraction of all iterations the CPU ended up executing (the paper
    /// reports the CPU finishing 62.5% of BICG's subloops).
    pub fn cpu_iter_share(&self) -> f64 {
        let total = self.gpu_iters + self.cpu_iters;
        if total == 0 {
            0.0
        } else {
            self.cpu_iters as f64 / total as f64
        }
    }
}

struct SubTask<'t, 'a> {
    task: &'t LoopTask<'a>,
    mode: ExecutionMode,
    bounds: LoopBounds,
    plan: DataPlan,
    lo: u64,
    hi: u64,
    sub: (u32, u32),
    queued_on: Device,
    /// Obligatory tasks may not be stolen (paper §V-B: high-TD loops are
    /// obligatory CPU, profiled no-TD loops obligatory GPU).
    obligatory: bool,
}

/// Run a pool of loops under the task stealing scheme. `pdg` must cover the
/// pool's loop ids; loops execute in topological batches.
pub fn run_stealing(
    program: &Program,
    cfg: &SchedulerConfig,
    pool: &[LoopTask<'_>],
    pdg: &Pdg,
    env: &Env,
    heap: &mut Heap,
) -> Result<StealingReport, SchedError> {
    let mut report = StealingReport::default();
    // One bytecode compilation per loop: sub-loops, steals, TLS re-launches
    // and fault retries all hit the cache. Private to the run unless the
    // caller hands in a program-scoped cache via `cfg.kernels` (`LoopId`s
    // are only unique within one program, so a shared cache must never span
    // programs).
    let kernels = cfg
        .kernels
        .clone()
        .unwrap_or_else(|| std::sync::Arc::new(KernelCache::new()));
    let mut gpu_clock = 0.0f64;
    let mut cpu_clock = 0.0f64;
    // Degradation ladder state: once the device exhausts its fault
    // tolerance it is retired for the remainder of the run (all batches).
    let mut gpu_alive = true;
    let res = &cfg.resilience;

    for batch in pdg.batches() {
        // --- build this batch's sub-tasks ---
        let mut gpu_q: VecDeque<SubTask> = VecDeque::new();
        let mut cpu_q: VecDeque<SubTask> = VecDeque::new();
        for id in &batch {
            let task = match pool.iter().find(|t| t.loop_.id == *id) {
                Some(t) => t,
                None => continue, // loop not in this pool
            };
            let mode = task.try_mode(cfg)?;
            let bounds = eval_bounds(program, task.loop_, env, heap)?;
            let plan = DataPlan::derive(program, task.loop_, &task.analysis.classes, env, heap)?;
            let trip = bounds.trip();
            // Only dependence-free tasks may be split into sub-loops.
            let splits = if matches!(mode, ExecutionMode::A | ExecutionMode::DPrime) {
                cfg.subloops_per_task.max(1).min(trip.max(1) as u32)
            } else {
                1
            };
            let per = trip.div_ceil(splits as u64).max(1);
            for s in 0..splits {
                let lo = s as u64 * per;
                let hi = ((s + 1) as u64 * per).min(trip);
                if lo >= hi {
                    break;
                }
                // Distribution rules (paper §V-B): high-TD and moderate-TD
                // loops to the CPU (obligatory for high), no-TD profiled
                // loops obligatory GPU, compile-time DOALL preferred GPU.
                let (dev, obligatory) = match mode {
                    ExecutionMode::A => (Device::Gpu, false),
                    ExecutionMode::D | ExecutionMode::DPrime => (Device::Gpu, true),
                    ExecutionMode::B | ExecutionMode::C => (Device::Cpu, true),
                };
                let st = SubTask {
                    task,
                    mode,
                    bounds,
                    plan: plan.clone(),
                    lo,
                    hi,
                    sub: (s, splits),
                    queued_on: dev,
                    obligatory,
                };
                match dev {
                    Device::Gpu => gpu_q.push_back(st),
                    Device::Cpu => cpu_q.push_back(st),
                }
            }
        }
        // Initial balancing steal (Algorithm 1 lines 7-10); obligatory
        // tasks stay put.
        fn steal_back<'t, 'a>(q: &mut VecDeque<SubTask<'t, 'a>>) -> Option<SubTask<'t, 'a>> {
            let idx = q.iter().rposition(|t| !t.obligatory)?;
            q.remove(idx)
        }
        if gpu_q.is_empty() && cpu_q.len() >= 2 {
            if let Some(t) = steal_back(&mut cpu_q) {
                report.stolen_by_gpu += 1;
                gpu_q.push_back(SubTask {
                    queued_on: Device::Gpu,
                    ..t
                });
            }
        }
        if cpu_q.is_empty() && gpu_q.len() >= 2 {
            if let Some(t) = steal_back(&mut gpu_q) {
                report.stolen_by_cpu += 1;
                cpu_q.push_back(SubTask {
                    queued_on: Device::Cpu,
                    ..t
                });
            }
        }

        // --- workers drain the queues, stealing when idle ---
        let batch_start = gpu_clock.max(cpu_clock);
        gpu_clock = batch_start;
        cpu_clock = batch_start;
        // The GPU opens one stream per batch; its tasks pipeline behind it:
        // H2D shares ride an async stream ahead of the kernels, D2H results
        // ride the return direction, and only the last write-back's tail
        // lands after the final kernel.
        let mut gpu_opened = false;
        let mut gpu_xfer_clock = batch_start;
        let mut gpu_return_clock = batch_start;
        // A retired GPU hands its queue to the CPU wholesale.
        if !gpu_alive {
            while let Some(mut t) = gpu_q.pop_front() {
                t.queued_on = Device::Cpu;
                cpu_q.push_back(t);
            }
        }
        while !gpu_q.is_empty() || !cpu_q.is_empty() {
            // The device whose clock is behind acts next; it pops its own
            // queue first and steals the other queue's latest non-obligatory
            // task when idle. A device that can get no work yields the turn.
            let mut gpu_turn = gpu_alive && gpu_clock <= cpu_clock;
            if gpu_turn && gpu_q.is_empty() && !cpu_q.iter().any(|t| !t.obligatory) {
                gpu_turn = false;
            }
            if gpu_alive && !gpu_turn && cpu_q.is_empty() && !gpu_q.iter().any(|t| !t.obligatory) {
                gpu_turn = true;
            }
            let (me, own_q, other_q) = if gpu_turn {
                (Device::Gpu, &mut gpu_q, &mut cpu_q)
            } else {
                (Device::Cpu, &mut cpu_q, &mut gpu_q)
            };
            let (t, mut stolen) = match own_q.pop_front() {
                Some(t) => {
                    let stolen = t.queued_on != me;
                    (t, stolen)
                }
                None => {
                    let t = steal_back(other_q).ok_or_else(|| {
                        SchedError::Internal(
                            "turn selection promised a stealable task but found none".into(),
                        )
                    })?;
                    (t, true)
                }
            };
            let (device_used, start, end) = match me {
                Device::Gpu => {
                    if !gpu_opened {
                        gpu_opened = true;
                        let open = (cfg.gpu.kernel_launch_us + cfg.gpu.pcie_latency_us) * 1e-6;
                        gpu_clock += open;
                        gpu_xfer_clock = gpu_clock;
                        gpu_return_clock = gpu_return_clock.max(gpu_clock);
                    }
                    match exec_gpu(program, cfg, &t, env, heap, &kernels, &mut report.faults) {
                        Ok((h2d, kernel, d2h)) => {
                            gpu_xfer_clock += h2d; // streamed ahead of the kernel
                            let start = gpu_clock.max(gpu_xfer_clock);
                            let end = start + kernel;
                            gpu_clock = end;
                            gpu_return_clock = gpu_return_clock.max(end) + d2h;
                            (Device::Gpu, start, end)
                        }
                        Err(SchedError::Device { fault, .. }) => {
                            // The fault already went through its retry
                            // budget inside exec_gpu and the heap is
                            // untouched: resubmit the task on the CPU
                            // timeline — unless the caller wants the fault
                            // surfaced instead of absorbed.
                            if res.fail_fast {
                                return Err(SchedError::Device {
                                    fault,
                                    stats: report.faults,
                                });
                            }
                            report.faults.fallbacks += 1;
                            report.faults.escalate(DegradationLevel::GpuDegraded);
                            let device_faults = report.faults.gpu_faults
                                + report.faults.transfer_faults
                                + report.faults.deadline_overruns;
                            if device_faults >= res.device_fault_tolerance {
                                gpu_alive = false;
                                report.faults.escalate(DegradationLevel::CpuOnly);
                                while let Some(mut q) = gpu_q.pop_front() {
                                    q.queued_on = Device::Cpu;
                                    cpu_q.push_back(q);
                                }
                            }
                            let dur = exec_cpu(
                                program,
                                cfg,
                                &t,
                                env,
                                heap,
                                res,
                                &kernels,
                                &mut report.faults,
                            )?;
                            let start = cpu_clock;
                            cpu_clock += dur;
                            stolen = true;
                            (Device::Cpu, start, cpu_clock)
                        }
                        Err(e) => return Err(e),
                    }
                }
                Device::Cpu => {
                    let dur = exec_cpu(
                        program,
                        cfg,
                        &t,
                        env,
                        heap,
                        res,
                        &kernels,
                        &mut report.faults,
                    )?;
                    let start = cpu_clock;
                    cpu_clock += dur;
                    (Device::Cpu, start, cpu_clock)
                }
            };
            report.tasks.push(TaskRecord {
                loop_id: t.task.loop_.id,
                subloop: t.sub,
                range: (t.lo, t.hi),
                device: device_used,
                stolen,
                start_s: start,
                end_s: end,
            });
            match device_used {
                Device::Gpu => {
                    report.gpu_busy_s += end - start;
                    report.gpu_iters += t.hi - t.lo;
                    if stolen {
                        report.stolen_by_gpu += 1;
                    }
                }
                Device::Cpu => {
                    report.cpu_busy_s += end - start;
                    report.cpu_iters += t.hi - t.lo;
                    if stolen {
                        report.stolen_by_cpu += 1;
                    }
                }
            }
        }
        // Barrier: the batch ends when both devices are done, including the
        // GPU's trailing write-back on the return stream.
        let end = gpu_clock.max(gpu_return_clock).max(cpu_clock);
        gpu_clock = end;
        cpu_clock = end;
        report.batch_ends.push(end);
    }
    report.wall_s = gpu_clock.max(cpu_clock);
    Ok(report)
}

/// Execute one sub-task on the GPU: per-task H2D share, buffered kernel,
/// write-back of exactly what it wrote. Returns the `(h2d, compute, d2h)`
/// stream components so the caller can overlap transfers with compute.
fn exec_gpu(
    program: &Program,
    cfg: &SchedulerConfig,
    t: &SubTask,
    env: &Env,
    heap: &mut Heap,
    kernels: &KernelCache,
    stats: &mut FaultStats,
) -> Result<(f64, f64, f64), SchedError> {
    let faults = cfg.faults.as_ref();
    let res = &cfg.resilience;
    let watchdog = if faults.is_some() {
        res.watchdog()
    } else {
        None
    };
    let origin = FaultOrigin::for_loop(t.task.loop_.id)
        .with_subloop(t.lo)
        .with_chunk(t.sub.0 as u64);
    let mut dev = DeviceMemory::new();
    stage_device_guarded(&t.plan, heap, &mut dev, cfg, origin, stats)?;
    let trip = t.bounds.trip().max(1);
    let share = (t.hi - t.lo) as f64 / trip as f64;
    // Transfers ride the batch's open stream (the caller charges the
    // one-time open).
    let h2d = cfg
        .gpu
        .stream_seconds((t.plan.bytes_in(heap) as f64 * share) as usize);
    if matches!(t.mode, ExecutionMode::B | ExecutionMode::C) {
        // Defensive: a true-dependence task can only run on the GPU under
        // speculation (never reached for obligatory-CPU tasks).
        let r = japonica_tls::run_tls_loop_guarded_with(
            program,
            &cfg.gpu,
            &cfg.cpu,
            &cfg.tls,
            t.task.loop_,
            &t.bounds,
            t.lo..t.hi,
            env,
            &mut dev,
            t.task.profile.map(|p| &p.td_iters),
            faults,
            res,
            Some(kernels),
        )?;
        stats.gpu_faults += r.device_faults;
        stats.retries += r.fault_retries;
        let mut bytes_out = 0usize;
        for e in &t.plan.copyout {
            transfer_with_retry(res, stats, || {
                dev.copy_out_guarded(heap, e.array, e.lo, e.hi, &cfg.gpu, faults, origin)
            })?;
            bytes_out += e.bytes(heap);
        }
        return Ok((h2d, r.time_s, cfg.gpu.stream_seconds(bytes_out)));
    }
    let overhead = match t.mode {
        ExecutionMode::D => cfg.tls.se_overhead_cycles / 2.0,
        _ => 0.0,
    };
    // Launch with bounded retry; the speculative buffer dies with a faulted
    // kernel, so the host heap stays untouched until the launch succeeds
    // AND the write-back below is cleared to proceed — a prerequisite for
    // safe CPU resubmission by the caller.
    let mut attempt = 0u32;
    let mut backoff = 0.0f64;
    let (kr, writes) = loop {
        let mut spec = SpeculativeMemory::new(&mut dev, overhead);
        match launch_loop_par_with(
            program,
            &cfg.gpu,
            t.task.loop_,
            &t.bounds,
            t.lo..t.hi,
            env,
            &mut spec,
            faults,
            watchdog,
            Some(kernels),
        ) {
            Ok(kr) => {
                let writes = spec.commit_all_collect()?;
                break (kr, writes);
            }
            Err(SimtError::Fault(f)) => {
                drop(spec);
                stats.observe(&f);
                if f.transient && attempt < res.max_retries {
                    attempt += 1;
                    stats.retries += 1;
                    let b = res.retry_backoff_us * 1e-6 * attempt as f64;
                    stats.backoff_s += b;
                    backoff += b;
                    continue;
                }
                return Err(SchedError::Device {
                    fault: f,
                    stats: *stats,
                });
            }
            Err(e) => return Err(e.into()),
        }
    };
    // D2H gate: check (and retry) the return transfer before the first
    // element lands on the host, so a faulted write-back leaves the heap
    // untouched.
    transfer_with_retry(res, stats, || {
        if let Some(plan) = faults {
            if let Some(f) = plan.on_transfer(false, origin) {
                return Err(SimtError::Fault(f));
            }
        }
        Ok(())
    })?;
    let mut bytes_out = 0usize;
    for ((arr, idx), v) in &writes {
        heap.store(*arr, *idx, *v)?;
        bytes_out += heap.array(*arr)?.ty().size_bytes();
    }
    let d2h = cfg.gpu.stream_seconds(bytes_out);
    // Launches pipeline on the open stream.
    let kernel_s = (kr.time_s - cfg.gpu.kernel_launch_us * 1e-6).max(0.0) + 5e-6 + backoff;
    Ok((h2d, kernel_s, d2h))
}

/// Execute one sub-task on the CPU: multithreaded for dependence-free
/// tasks, sequential otherwise. Injected worker-chunk faults are retried
/// and then absorbed by dropping the batch to sequential execution — the
/// CPU rung always completes.
#[allow(clippy::too_many_arguments)] // mirrors exec_gpu plus the kernel cache
fn exec_cpu(
    program: &Program,
    cfg: &SchedulerConfig,
    t: &SubTask,
    env: &Env,
    heap: &mut Heap,
    res: &japonica_faults::ResilienceConfig,
    kernels: &KernelCache,
    stats: &mut FaultStats,
) -> Result<f64, SchedError> {
    let faults = cfg.faults.as_ref();
    let origin = FaultOrigin::for_loop(t.task.loop_.id)
        .with_subloop(t.lo)
        .with_chunk(t.sub.0 as u64);
    let r = match t.mode {
        ExecutionMode::B | ExecutionMode::C | ExecutionMode::D => run_sequential_with(
            program,
            &cfg.cpu,
            t.task.loop_,
            &t.bounds,
            t.lo..t.hi,
            &mut env.clone(),
            heap,
            Some(kernels),
        )?,
        _ => {
            let threads = t
                .task
                .loop_
                .annot
                .as_ref()
                .and_then(|a| a.threads)
                .unwrap_or(cfg.cpu_threads);
            let mut attempt = 0u32;
            loop {
                match run_parallel_guarded_with(
                    program,
                    &cfg.cpu,
                    t.task.loop_,
                    &t.bounds,
                    t.lo..t.hi,
                    env,
                    heap,
                    threads,
                    faults,
                    origin,
                    Some(kernels),
                ) {
                    Ok(r) => break r,
                    Err(CpuExecError::Fault(f)) => {
                        stats.observe(&f);
                        if f.transient && attempt < res.max_retries {
                            attempt += 1;
                            stats.retries += 1;
                            stats.backoff_s += res.retry_backoff_us * 1e-6 * attempt as f64;
                            continue;
                        }
                        if res.fail_fast {
                            return Err(SchedError::Device {
                                fault: f,
                                stats: *stats,
                            });
                        }
                        stats.fallbacks += 1;
                        if stats.cpu_faults >= res.device_fault_tolerance {
                            stats.escalate(DegradationLevel::Sequential);
                        }
                        break run_sequential_with(
                            program,
                            &cfg.cpu,
                            t.task.loop_,
                            &t.bounds,
                            t.lo..t.hi,
                            &mut env.clone(),
                            heap,
                            Some(kernels),
                        )?;
                    }
                    Err(CpuExecError::Exec(e)) => return Err(e.into()),
                }
            }
        }
    };
    Ok(r.time_s)
}

/// Convenience: summarize a stealing run as a [`LoopExecReport`]-like
/// record for the run's primary loop (used by the evaluation harness when a
/// single number per app is wanted).
pub fn stealing_as_loop_report(r: &StealingReport, loop_id: LoopId) -> LoopExecReport {
    let mut out = LoopExecReport::new(loop_id, ExecutionMode::A, Scheme::Stealing);
    out.iterations = r.gpu_iters + r.cpu_iters;
    out.gpu_iters = r.gpu_iters;
    out.cpu_iters = r.cpu_iters;
    out.gpu_busy_s = r.gpu_busy_s;
    out.cpu_busy_s = r.cpu_busy_s;
    out.wall_s = r.wall_s;
    out
}

// Re-exported for harness code that needs raw array access.
pub use japonica_ir::Heap as HostHeap;

#[cfg(test)]
mod tests {
    use super::*;
    use japonica_analysis::{analyze_loop, build_pdg, LoopAnalysis};
    use japonica_frontend::compile_source;
    use japonica_ir::{ArrayId, ParamTy, Value};

    struct Pool {
        program: Program,
        loops: Vec<japonica_ir::ForLoop>,
        analyses: Vec<LoopAnalysis>,
        pdg: Pdg,
        env: Env,
        heap: Heap,
        arrays: Vec<ArrayId>,
    }

    fn pool(src: &str, n: usize) -> Pool {
        let program = compile_source(src).unwrap();
        let f = &program.functions[0];
        let loops: Vec<_> = f
            .all_loops()
            .into_iter()
            .filter(|l| l.is_annotated())
            .cloned()
            .collect();
        let analyses: Vec<_> = loops.iter().map(analyze_loop).collect();
        let pdg = build_pdg(f);
        let mut heap = Heap::new();
        let mut env = Env::with_slots(f.num_vars);
        let mut arrays = Vec::new();
        for p in &f.params {
            match p.ty {
                ParamTy::Array(_) => {
                    let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
                    let a = heap.alloc_doubles(&vals);
                    env.set(p.var, Value::Array(a));
                    arrays.push(a);
                }
                ParamTy::Scalar(_) => env.set(p.var, Value::Int(n as i32)),
            }
        }
        Pool {
            program: program.clone(),
            loops,
            analyses,
            pdg,
            env,
            heap,
            arrays,
        }
    }

    fn tasks<'a>(p: &'a Pool) -> Vec<LoopTask<'a>> {
        p.loops
            .iter()
            .zip(&p.analyses)
            .map(|(l, a)| LoopTask {
                loop_: l,
                analysis: a,
                profile: None,
            })
            .collect()
    }

    // BICG-like: two independent DOALL loops over different outputs.
    const BICG_LIKE: &str = "static void f(double[] a, double[] x, double[] y, int n) {
        /* acc parallel */
        for (int i = 0; i < n; i++) { x[i] = a[i] * 2.0; }
        /* acc parallel */
        for (int i = 0; i < n; i++) { y[i] = a[i] + 5.0; }
    }";

    #[test]
    fn independent_loops_run_in_one_batch_on_both_devices() {
        let mut p = pool(BICG_LIKE, 50_000);
        let cfg = SchedulerConfig::default();
        let env = p.env.clone();
        let mut heap = p.heap.clone();
        let ts = tasks(&p);
        let r = run_stealing(&p.program, &cfg, &ts, &p.pdg, &env, &mut heap).unwrap();
        p.heap = heap;
        assert_eq!(r.batch_ends.len(), 1);
        assert_eq!(r.gpu_iters + r.cpu_iters, 100_000);
        // Both devices worked: the CPU queue was empty initially (both
        // loops are DOALL -> GPU), so the CPU must have stolen.
        assert!(r.cpu_iters > 0, "CPU stole nothing");
        assert!(r.stolen_by_cpu > 0);
        // results correct
        let x = p.heap.read_doubles(p.arrays[1]).unwrap();
        let y = p.heap.read_doubles(p.arrays[2]).unwrap();
        assert!(x.iter().enumerate().all(|(i, &v)| v == 2.0 * i as f64));
        assert!(y.iter().enumerate().all(|(i, &v)| v == i as f64 + 5.0));
    }

    // 2MM/Crypt-like: the second loop consumes the first loop's output.
    const CHAIN: &str = "static void f(double[] a, double[] t, double[] c, int n) {
        /* acc parallel */
        for (int i = 0; i < n; i++) { t[i] = a[i] * 3.0; }
        /* acc parallel */
        for (int i = 0; i < n; i++) { c[i] = t[i] + 1.0; }
    }";

    #[test]
    fn dependent_loops_form_two_batches_with_correct_results() {
        let mut p = pool(CHAIN, 20_000);
        let cfg = SchedulerConfig::default();
        let env = p.env.clone();
        let mut heap = p.heap.clone();
        let ts = tasks(&p);
        let r = run_stealing(&p.program, &cfg, &ts, &p.pdg, &env, &mut heap).unwrap();
        p.heap = heap;
        assert_eq!(r.batch_ends.len(), 2);
        // The dependent loop must not start before the first batch ends.
        let batch0_end = r.batch_ends[0];
        for t in &r.tasks {
            if t.loop_id == p.loops[1].id {
                assert!(t.start_s >= batch0_end - 1e-12);
            }
        }
        let c = p.heap.read_doubles(p.arrays[2]).unwrap();
        assert!(c
            .iter()
            .enumerate()
            .all(|(i, &v)| v == 3.0 * i as f64 + 1.0));
    }

    #[test]
    fn subloop_splitting_respects_config() {
        let mut p = pool(BICG_LIKE, 10_000);
        let cfg = SchedulerConfig {
            subloops_per_task: 4,
            ..SchedulerConfig::default()
        };
        let env = p.env.clone();
        let mut heap = p.heap.clone();
        let ts = tasks(&p);
        let r = run_stealing(&p.program, &cfg, &ts, &p.pdg, &env, &mut heap).unwrap();
        p.heap = heap;
        // 2 loops x 4 subloops
        assert_eq!(r.tasks.len(), 8);
        assert!(r.tasks.iter().all(|t| t.subloop.1 == 4));
    }

    #[test]
    fn td_loop_is_pinned_to_cpu() {
        let mut p = pool(
            "static void f(double[] a, int n) {
                /* acc parallel */
                for (int i = 1; i < n; i++) { a[i] = a[i - 1] + a[i]; }
            }",
            4096,
        );
        let cfg = SchedulerConfig::default();
        let env = p.env.clone();
        let mut heap = p.heap.clone();
        let ts = tasks(&p);
        let r = run_stealing(&p.program, &cfg, &ts, &p.pdg, &env, &mut heap).unwrap();
        p.heap = heap;
        // a single sequential CPU task... except the idle GPU may steal it?
        // No: stealing only happens when a queue coexists; with one task
        // total the GPU queue starts empty and the initial balancing steal
        // would move it — unless it is obligatory CPU. Check it ran on CPU.
        assert_eq!(r.tasks.len(), 1);
        // Wherever queued, a TD loop must execute sequentially-correctly:
        let a = p.heap.read_doubles(p.arrays[0]).unwrap();
        let mut expect = vec![0.0f64; 4096];
        for (i, e) in expect.iter_mut().enumerate() {
            *e = i as f64;
        }
        for i in 1..4096 {
            expect[i] += expect[i - 1];
        }
        assert_eq!(a, expect);
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let mut p = pool(BICG_LIKE, 20_000);
        let cfg = SchedulerConfig::default();
        let env = p.env.clone();
        let mut heap = p.heap.clone();
        let ts = tasks(&p);
        let r = run_stealing(&p.program, &cfg, &ts, &p.pdg, &env, &mut heap).unwrap();
        p.heap = heap;
        let trace = r.to_chrome_trace();
        assert!(trace.starts_with('[') && trace.ends_with(']'));
        assert_eq!(trace.matches("\"ph\":\"X\"").count(), r.tasks.len());
        assert!(trace.contains("\"tid\":1") || trace.contains("\"tid\":2"));
    }

    #[test]
    fn cpu_share_is_reported() {
        let mut p = pool(BICG_LIKE, 50_000);
        let cfg = SchedulerConfig::default();
        let env = p.env.clone();
        let mut heap = p.heap.clone();
        let ts = tasks(&p);
        let r = run_stealing(&p.program, &cfg, &ts, &p.pdg, &env, &mut heap).unwrap();
        p.heap = heap;
        let share = r.cpu_iter_share();
        assert!(share > 0.0 && share < 1.0, "{share}");
    }
}

//! Scheduler configuration.

use japonica_cpuexec::CpuConfig;
use japonica_faults::{FaultPlan, ResilienceConfig};
use japonica_gpusim::{DeviceConfig, DevicePartition};
use japonica_ir::KernelCache;
use japonica_tls::TlsConfig;
use std::sync::Arc;

/// Tunables of both scheduling schemes plus the platform descriptions.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// The simulated GPU.
    pub gpu: DeviceConfig,
    /// The simulated CPU.
    pub cpu: CpuConfig,
    /// The TLS engine settings (modes B and D).
    pub tls: TlsConfig,
    /// Worker threads for CPU-side multithreaded execution. The paper uses
    /// 16 (on 12 cores), reserving one thread for GPU management and one
    /// for CPU thread management.
    pub cpu_threads: u32,
    /// Minimum iterations per sharing chunk ("uniform chunks of moderate
    /// size", §V-A).
    pub chunk_iters: u64,
    /// Upper bound on the number of sharing chunks per loop — large loops
    /// get proportionally larger chunks so kernel-launch overhead stays
    /// amortized.
    pub max_chunks: u64,
    /// The density threshold `N` of Fig. 2(b): profiled loops with true-
    /// dependence density above it go to the CPU (mode C), below it to
    /// GPU-TLS (mode B).
    pub td_density_threshold: f64,
    /// How many sub-loops the stealing scheme splits each DOALL task into
    /// (the paper splits BICG loops into 4 and Crypt loops into 8).
    pub subloops_per_task: u32,
    /// May an idle CPU pull chunks back from the GPU's boundary partition?
    /// `true` (default) is this reproduction's bidirectional sharing;
    /// `false` is the paper's literal scheme, where the boundary statically
    /// fixes the CPU partition and only the GPU extends its run (§V-A).
    pub cpu_steals_back: bool,
    /// Retry/backoff/watchdog policy applied when a fault plan is active.
    pub resilience: ResilienceConfig,
    /// Optional seeded fault-injection plan; `None` (default) leaves every
    /// hot path untouched.
    pub faults: Option<FaultPlan>,
    /// Degraded placement: route every loop through the CPU-only baseline
    /// executor (no device staging, no kernel launches, no fault hooks).
    /// The serving layer's last ladder rung before giving up on a job.
    pub cpu_only: bool,
    /// Optional externally owned kernel/native-tier cache. When `None`
    /// (default) each run compiles into a private per-run cache, exactly as
    /// before. A serving layer may hand in a cache scoped to one *program*
    /// (loop ids are only unique within a program) so repeat executions of
    /// the same program on the same device keep their compiled bytecode and
    /// promoted native tiers warm. Engine choice never changes result bits
    /// (walker ≡ bytecode ≡ native, proven by the differential suites), so
    /// cache warmth affects host wall-clock only — never a report.
    pub kernels: Option<Arc<KernelCache>>,
}

impl SchedulerConfig {
    /// Set how many host threads the GPU simulator spreads warps over
    /// (purely a wall-clock knob — simulated results are bit-identical for
    /// every value; see `japonica_gpusim::SimConfig`).
    pub fn with_host_threads(mut self, n: usize) -> SchedulerConfig {
        self.gpu.sim.host_threads = n.max(1);
        self
    }

    /// Restrict this configuration to one tenant's share of a partitioned
    /// platform: the GPU simulation sees only `partition`'s SM slice and
    /// the CPU side gets `cpu_slots` worker threads (each backed by one
    /// core, capped at the physical core count). This is the view a
    /// `DeviceLease` hands to the schedulers — the sharing boundary,
    /// chunk occupancy, TLS dependence checking and profiling all scale to
    /// the slice automatically, and none of them observe `sm_base`, so a
    /// job on a lease is bit-identical to the same job alone on an
    /// equal-sized device.
    pub fn with_partition(mut self, partition: DevicePartition, cpu_slots: u32) -> SchedulerConfig {
        self.gpu.partition = Some(partition);
        self.cpu_threads = cpu_slots.max(1);
        self.cpu.cores = self.cpu.cores.min(cpu_slots.max(1));
        self
    }

    /// The task-sharing boundary `Cg·Fg / (Cg·Fg + Cc·Fc)` (paper §V-A):
    /// the fraction of the iteration space preferentially assigned to the
    /// GPU, from the devices' core counts and clock frequencies.
    pub fn boundary_fraction(&self) -> f64 {
        let cg_fg = self.gpu.total_lanes() as f64 * self.gpu.clock_ghz;
        let cc_fc = self.cpu.cores as f64 * self.cpu.clock_ghz;
        cg_fg / (cg_fg + cc_fc)
    }
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            gpu: DeviceConfig::default(),
            cpu: CpuConfig::default(),
            tls: TlsConfig::default(),
            cpu_threads: 16,
            chunk_iters: 2048,
            max_chunks: 32,
            td_density_threshold: 0.1,
            subloops_per_task: 4,
            cpu_steals_back: true,
            resilience: ResilienceConfig::default(),
            faults: None,
            cpu_only: false,
            kernels: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_matches_paper_formula() {
        let c = SchedulerConfig::default();
        // 448 lanes * 1.15 GHz vs 12 cores * 2.66 GHz
        let expect = (448.0 * 1.15) / (448.0 * 1.15 + 12.0 * 2.66);
        assert!((c.boundary_fraction() - expect).abs() < 1e-12);
        // The M2050/X5650 boundary strongly favors the GPU.
        assert!(c.boundary_fraction() > 0.9);
    }

    #[test]
    fn partition_view_scales_boundary_and_cpu_side() {
        let full = SchedulerConfig::default();
        let half = SchedulerConfig::default().with_partition(
            DevicePartition {
                sm_base: 7,
                sm_count: 7,
            },
            8,
        );
        assert_eq!(half.gpu.effective_sms(), 7);
        assert_eq!(half.cpu_threads, 8);
        assert_eq!(half.cpu.cores, 8);
        // The boundary of the half-GPU slice tilts toward the CPU relative
        // to the whole machine's boundary.
        assert!(half.boundary_fraction() < full.boundary_fraction());
        // sm_base does not enter any derived quantity.
        let other = SchedulerConfig::default().with_partition(
            DevicePartition {
                sm_base: 0,
                sm_count: 7,
            },
            8,
        );
        assert_eq!(
            half.boundary_fraction().to_bits(),
            other.boundary_fraction().to_bits()
        );
    }

    #[test]
    fn defaults_are_sane() {
        let c = SchedulerConfig::default();
        assert_eq!(c.cpu_threads, 16);
        assert!(c.td_density_threshold > 0.0 && c.td_density_threshold < 1.0);
    }
}

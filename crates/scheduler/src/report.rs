//! Execution reports and scheduler errors.

use crate::modes::ExecutionMode;
use japonica_faults::{DeviceFault, FaultStats};
use japonica_gpusim::SimtError;
use japonica_ir::{ExecError, LoopId, Scheme};
use japonica_tls::{TlsError, TlsReport};

/// Any error surfaced while scheduling/executing a loop.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    Exec(ExecError),
    Simt(SimtError),
    Tls(TlsError),
    /// A device fault that exhausted every retry/fallback rung (or escaped
    /// early under `ResilienceConfig::fail_fast`), carried with its
    /// structured origin (loop, sub-loop, warp, chunk) and the resilience
    /// counters accumulated before the run gave up, so callers above the
    /// scheduler see what the ladder tried rather than just a message.
    Device {
        fault: DeviceFault,
        stats: FaultStats,
    },
    /// A scheduler invariant was violated — replaces what used to be a
    /// panic on the hot path.
    Internal(String),
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::Exec(e) => write!(f, "{e}"),
            SchedError::Simt(e) => write!(f, "{e}"),
            SchedError::Tls(e) => write!(f, "{e}"),
            SchedError::Device { fault, .. } => write!(f, "unrecovered device fault: {fault}"),
            SchedError::Internal(m) => write!(f, "scheduler invariant violated: {m}"),
        }
    }
}

impl std::error::Error for SchedError {
    /// Expose the wrapped error so `?`-propagated `SchedError`s keep their
    /// cause chain across crate boundaries (e.g. into `japonica-serve`'s
    /// `ServeError`).
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Exec(e) => Some(e),
            SchedError::Simt(e) => Some(e),
            SchedError::Tls(e) => Some(e),
            SchedError::Device { fault, .. } => Some(fault),
            SchedError::Internal(_) => None,
        }
    }
}

impl From<ExecError> for SchedError {
    fn from(e: ExecError) -> SchedError {
        SchedError::Exec(e)
    }
}

impl From<SimtError> for SchedError {
    fn from(e: SimtError) -> SchedError {
        match e {
            SimtError::Fault(f) => f.into(),
            SimtError::Mem(e) => SchedError::Exec(e),
            other => SchedError::Simt(other),
        }
    }
}

impl From<TlsError> for SchedError {
    fn from(e: TlsError) -> SchedError {
        match e {
            TlsError::Fault(f) => f.into(),
            other => SchedError::Tls(other),
        }
    }
}

impl From<DeviceFault> for SchedError {
    fn from(fault: DeviceFault) -> SchedError {
        SchedError::Device {
            fault,
            stats: FaultStats::default(),
        }
    }
}

impl SchedError {
    /// The resilience counters a failed run accumulated before giving up,
    /// when the failure was a device fault.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        match self {
            SchedError::Device { stats, .. } => Some(*stats),
            _ => None,
        }
    }
}

/// Execution record of one scheduled loop.
#[derive(Debug, Clone)]
pub struct LoopExecReport {
    /// The loop.
    pub loop_id: LoopId,
    /// The execution mode selected by the Fig. 2(b) workflow.
    pub mode: ExecutionMode,
    /// The scheduling scheme in effect.
    pub scheme: Scheme,
    /// Total iterations executed.
    pub iterations: u64,
    /// Iterations that ran on the GPU / CPU side.
    pub gpu_iters: u64,
    pub cpu_iters: u64,
    /// Simulated busy time per side (excluding transfers).
    pub gpu_busy_s: f64,
    pub cpu_busy_s: f64,
    /// Host↔device traffic.
    pub bytes_in: usize,
    pub bytes_out: usize,
    /// Simulated transfer seconds on the critical path (after overlap).
    pub transfer_s: f64,
    /// TLS engine report when mode B/D ran.
    pub tls: Option<TlsReport>,
    /// Injected-fault bookkeeping: retries, fallbacks, degradation ladder.
    pub faults: FaultStats,
    /// Wall-clock of the loop (max over the concurrent device timelines).
    pub wall_s: f64,
}

impl LoopExecReport {
    /// An empty report skeleton.
    pub fn new(loop_id: LoopId, mode: ExecutionMode, scheme: Scheme) -> LoopExecReport {
        LoopExecReport {
            loop_id,
            mode,
            scheme,
            iterations: 0,
            gpu_iters: 0,
            cpu_iters: 0,
            gpu_busy_s: 0.0,
            cpu_busy_s: 0.0,
            bytes_in: 0,
            bytes_out: 0,
            transfer_s: 0.0,
            tls: None,
            faults: FaultStats::default(),
            wall_s: 0.0,
        }
    }

    /// Fraction of iterations the GPU executed.
    pub fn gpu_share(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.gpu_iters as f64 / self.iterations as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_share_computation() {
        let mut r = LoopExecReport::new(LoopId(0), ExecutionMode::A, Scheme::Sharing);
        r.iterations = 100;
        r.gpu_iters = 75;
        assert!((r.gpu_share() - 0.75).abs() < 1e-12);
        let empty = LoopExecReport::new(LoopId(1), ExecutionMode::C, Scheme::Sharing);
        assert_eq!(empty.gpu_share(), 0.0);
    }

    #[test]
    fn error_conversions() {
        let e: SchedError = ExecError::DivisionByZero.into();
        assert!(e.to_string().contains("division"));
        let e: SchedError = SimtError::Unsupported("x".into()).into();
        assert!(e.to_string().contains("unsupported"));
    }
}

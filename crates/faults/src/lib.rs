//! Deterministic device-fault injection for the Japonica runtime.
//!
//! Real heterogeneous Java runtimes treat device failure as routine:
//! TornadoVM-style systems fall back to the interpreter when GPU execution
//! fails, and task-based runtimes degrade to sequential execution per task.
//! This crate supplies the substrate for reproducing that behavior inside
//! the simulator: a seedable, reproducible [`FaultPlan`] that the execution
//! layers consult at well-defined points (kernel launch, per-warp issue,
//! H2D/D2H transfer, CPU worker chunk), plus the shared [`DeviceFault`]
//! error payload, the [`DegradationLevel`] ladder, and the [`FaultStats`]
//! counters the scheduler reports.
//!
//! Injection is *pull-based*: the hot paths carry an `Option<&FaultPlan>`
//! and only touch the plan when one is installed, so the happy path is
//! unchanged — no plan, no branches taken, identical timing.

use std::fmt;
use std::sync::Mutex;

use japonica_ir::LoopId;

/// Where in the execution a fault fired. Every field is optional because the
/// layers know different amounts of context; whatever is known travels with
/// the fault instead of being stringified away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultOrigin {
    /// The loop being executed.
    pub loop_id: Option<LoopId>,
    /// First iteration of the sub-loop / kernel launch.
    pub subloop: Option<u64>,
    /// The warp that faulted (SIMT faults only).
    pub warp: Option<u64>,
    /// The scheduler chunk or CPU worker chunk index.
    pub chunk: Option<u64>,
}

impl FaultOrigin {
    pub fn for_loop(loop_id: LoopId) -> FaultOrigin {
        FaultOrigin {
            loop_id: Some(loop_id),
            ..FaultOrigin::default()
        }
    }

    pub fn with_subloop(mut self, start: u64) -> FaultOrigin {
        self.subloop = Some(start);
        self
    }

    pub fn with_warp(mut self, warp: u64) -> FaultOrigin {
        self.warp = Some(warp);
        self
    }

    pub fn with_chunk(mut self, chunk: u64) -> FaultOrigin {
        self.chunk = Some(chunk);
        self
    }
}

impl fmt::Display for FaultOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        if let Some(l) = self.loop_id {
            write!(f, "loop {}", l.0)?;
            wrote = true;
        }
        if let Some(s) = self.subloop {
            write!(f, "{}sub-loop @{s}", if wrote { ", " } else { "" })?;
            wrote = true;
        }
        if let Some(w) = self.warp {
            write!(f, "{}warp {w}", if wrote { ", " } else { "" })?;
            wrote = true;
        }
        if let Some(c) = self.chunk {
            write!(f, "{}chunk {c}", if wrote { ", " } else { "" })?;
            wrote = true;
        }
        if !wrote {
            f.write_str("unknown site")?;
        }
        Ok(())
    }
}

/// The injectable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The kernel never started (driver-level launch failure).
    KernelLaunch,
    /// A transient SIMT fault in one warp mid-kernel.
    Simt,
    /// Host-to-device transfer failed.
    TransferH2D,
    /// Device-to-host transfer failed.
    TransferD2H,
    /// The kernel ran past its watchdog deadline.
    DeadlineOverrun,
    /// A CPU worker chunk failed.
    CpuChunk,
}

impl FaultKind {
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::KernelLaunch => "kernel-launch failure",
            FaultKind::Simt => "SIMT fault",
            FaultKind::TransferH2D => "H2D transfer failure",
            FaultKind::TransferD2H => "D2H transfer failure",
            FaultKind::DeadlineOverrun => "kernel deadline overrun",
            FaultKind::CpuChunk => "CPU worker-chunk failure",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A device fault surfaced to the recovery machinery. This is the shared
/// error payload carried (not stringified) through `SimtError`, `TlsError`,
/// and `SchedError`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceFault {
    pub kind: FaultKind,
    pub origin: FaultOrigin,
    /// Transient faults are worth retrying; persistent ones are not.
    pub transient: bool,
}

impl fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}) at {}",
            self.kind,
            if self.transient {
                "transient"
            } else {
                "persistent"
            },
            self.origin
        )
    }
}

impl std::error::Error for DeviceFault {}

/// One trigger rule of a [`FaultPlan`]. Each injection point of a matching
/// kind counts as one *occurrence*; the rule fires on occurrences inside
/// `[after, after + count)`, optionally thinned by `probability` and (for
/// SIMT faults) gated on a specific warp.
#[derive(Debug, Clone)]
pub struct FaultRule {
    pub kind: FaultKind,
    /// Skip this many matching occurrences before arming.
    pub after: u64,
    /// Fire on at most this many occurrences once armed. A *finite* count
    /// models a transient fault (a retry advances the occurrence counter
    /// past the window); `u64::MAX` models a hard, persistent fault.
    pub count: u64,
    /// Probability in `[0, 1]` that an armed occurrence actually fires,
    /// drawn from the plan's seeded RNG. `1.0` = always.
    pub probability: f64,
    /// For [`FaultKind::Simt`]: only fire on this warp.
    pub warp: Option<u64>,
    /// For [`FaultKind::DeadlineOverrun`]: extra simulated cycles the stuck
    /// kernel would burn. The watchdog compares against its deadline.
    pub stall_cycles: f64,
}

impl FaultRule {
    /// A rule that fires on every matching occurrence — a hard fault.
    pub fn persistent(kind: FaultKind) -> FaultRule {
        FaultRule {
            kind,
            after: 0,
            count: u64::MAX,
            probability: 1.0,
            warp: None,
            stall_cycles: 0.0,
        }
    }

    /// A rule that fires `count` times then goes quiet — a transient fault
    /// that a bounded retry can ride out.
    pub fn transient(kind: FaultKind, count: u64) -> FaultRule {
        FaultRule {
            count,
            ..FaultRule::persistent(kind)
        }
    }

    pub fn after(mut self, n: u64) -> FaultRule {
        self.after = n;
        self
    }

    pub fn with_probability(mut self, p: f64) -> FaultRule {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    pub fn on_warp(mut self, warp: u64) -> FaultRule {
        self.warp = Some(warp);
        self
    }

    pub fn stalling(mut self, cycles: f64) -> FaultRule {
        self.stall_cycles = cycles;
        self
    }

    fn is_transient(&self) -> bool {
        self.count != u64::MAX
    }
}

#[derive(Debug, Default)]
struct PlanState {
    /// RNG state (splitmix64), advanced once per probability draw.
    rng: u64,
    /// Per-rule occurrence counters, indexed like `FaultPlan::rules`.
    seen: Vec<u64>,
    /// Total faults this plan has injected.
    injected: u64,
}

/// A seedable, reproducible fault-injection plan.
///
/// The plan is immutable once built except for interior occurrence counters
/// and the RNG, which sit behind a mutex so the plan can be consulted from
/// the scheduler's single-threaded control loops without plumbing `&mut`
/// through every layer. Two runs with the same plan (same seed, same rules)
/// inject exactly the same faults at the same points.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    state: Mutex<PlanState>,
}

impl Clone for FaultPlan {
    /// Cloning resets the injection state: the clone behaves like a fresh
    /// plan with the same seed and rules.
    fn clone(&self) -> FaultPlan {
        FaultPlan::new(self.seed, self.rules.clone())
    }
}

impl FaultPlan {
    pub fn new(seed: u64, rules: Vec<FaultRule>) -> FaultPlan {
        let n = rules.len();
        FaultPlan {
            seed,
            rules,
            state: Mutex::new(PlanState {
                rng: seed ^ 0x6A09_E667_F3BC_C909,
                seen: vec![0; n],
                injected: 0,
            }),
        }
    }

    /// A plan with no rules: never fires, useful as a base for builders.
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan::new(seed, Vec::new())
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state
            .lock()
            .expect("fault-plan state poisoned")
            .injected
    }

    /// A fresh plan with the same rules but the seed mixed with `salt`
    /// (splitmix-style finalizer so nearby salts decorrelate). Serving
    /// layers use this to derive per-attempt plans from a device template:
    /// the derived plan depends only on `(template seed, salt)`, never on
    /// which physical device the attempt lands on, which is what keeps
    /// fault draws placement-independent across the fleet.
    pub fn reseeded(&self, salt: u64) -> FaultPlan {
        let mut z = self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        FaultPlan::new(z, self.rules.clone())
    }

    /// Reset occurrence counters and RNG to the initial state.
    pub fn reset(&self) {
        let mut st = self.state.lock().expect("fault-plan state poisoned");
        st.rng = self.seed ^ 0x6A09_E667_F3BC_C909;
        st.seen = vec![0; self.rules.len()];
        st.injected = 0;
    }

    fn next_unit(rng: &mut u64) -> f64 {
        *rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Record one occurrence at an injection point of the given kind and
    /// decide whether a fault fires there. At most one rule fires per
    /// occurrence (the first match wins).
    fn check(&self, kind: FaultKind, origin: FaultOrigin) -> Option<DeviceFault> {
        if self.rules.is_empty() {
            return None;
        }
        let mut st = self.state.lock().expect("fault-plan state poisoned");
        let mut fired: Option<DeviceFault> = None;
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.kind != kind {
                continue;
            }
            if let (Some(want), FaultKind::Simt) = (rule.warp, kind) {
                if origin.warp != Some(want) {
                    continue;
                }
            }
            let occ = st.seen[i];
            st.seen[i] += 1;
            if fired.is_some() {
                continue; // still count the occurrence for later rules
            }
            let armed = occ >= rule.after && occ - rule.after < rule.count;
            if !armed {
                continue;
            }
            if rule.probability < 1.0 && Self::next_unit(&mut st.rng) >= rule.probability {
                continue;
            }
            st.injected += 1;
            fired = Some(DeviceFault {
                kind,
                origin,
                transient: rule.is_transient(),
            });
        }
        fired
    }

    /// Hook: a kernel launch is about to happen.
    pub fn on_kernel_launch(&self, origin: FaultOrigin) -> Option<DeviceFault> {
        self.check(FaultKind::KernelLaunch, origin)
    }

    /// Hook: a warp is about to issue.
    pub fn on_warp(&self, origin: FaultOrigin) -> Option<DeviceFault> {
        self.check(FaultKind::Simt, origin)
    }

    /// Hook: a transfer is about to run (`to_device` selects H2D vs D2H).
    pub fn on_transfer(&self, to_device: bool, origin: FaultOrigin) -> Option<DeviceFault> {
        let kind = if to_device {
            FaultKind::TransferH2D
        } else {
            FaultKind::TransferD2H
        };
        self.check(kind, origin)
    }

    /// Hook: a CPU worker batch is about to run.
    pub fn on_cpu_chunk(&self, origin: FaultOrigin) -> Option<DeviceFault> {
        self.check(FaultKind::CpuChunk, origin)
    }

    /// Hook: a kernel finished its simulated execution. Returns extra stall
    /// cycles a stuck device would have burned plus the fault to raise if
    /// the watchdog's deadline is exceeded.
    pub fn stall_cycles(&self, origin: FaultOrigin) -> Option<(f64, DeviceFault)> {
        self.check(FaultKind::DeadlineOverrun, origin).map(|f| {
            let stall = self
                .rules
                .iter()
                .find(|r| r.kind == FaultKind::DeadlineOverrun)
                .map(|r| r.stall_cycles)
                .unwrap_or(0.0);
            (stall, f)
        })
    }
}

/// The per-run degradation ladder (§ "graceful degradation"): each rung
/// gives up more parallel hardware in exchange for guaranteed progress.
/// `Ord` follows rung order so `max` picks the worst level reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum DegradationLevel {
    /// GPU + multithreaded CPU, the normal heterogeneous schedule.
    #[default]
    Full,
    /// The GPU was retired after repeated device faults; the multithreaded
    /// CPU carries the remaining work.
    GpuDegraded,
    /// The CPU worker pool was also degraded; remaining chunks run
    /// sequentially, still chunk-at-a-time through the scheduler.
    CpuOnly,
    /// Whole-loop sequential fallback — the last rung, always correct.
    Sequential,
}

impl DegradationLevel {
    pub fn label(self) -> &'static str {
        match self {
            DegradationLevel::Full => "full",
            DegradationLevel::GpuDegraded => "gpu-degraded",
            DegradationLevel::CpuOnly => "cpu-only",
            DegradationLevel::Sequential => "sequential",
        }
    }
}

impl fmt::Display for DegradationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Observable resilience counters, carried per loop and merged into the run
/// report: every retry, fallback, and ladder transition is visible.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultStats {
    /// Transient-fault retries that were attempted.
    pub retries: u32,
    /// Chunks/tasks resubmitted to the other device (or sequentially).
    pub fallbacks: u32,
    /// Ladder escalations.
    pub degradations: u32,
    /// GPU-side faults observed (launch, SIMT, deadline).
    pub gpu_faults: u32,
    /// CPU-side faults observed.
    pub cpu_faults: u32,
    /// Transfer faults observed (either direction).
    pub transfer_faults: u32,
    /// Watchdog deadline overruns observed.
    pub deadline_overruns: u32,
    /// Injected-latency backoff charged to the time model, in seconds.
    pub backoff_s: f64,
    /// Worst ladder rung reached during the run.
    pub level: DegradationLevel,
}

impl FaultStats {
    /// Record a fault observation under the right counter.
    pub fn observe(&mut self, fault: &DeviceFault) {
        match fault.kind {
            FaultKind::KernelLaunch | FaultKind::Simt => self.gpu_faults += 1,
            FaultKind::DeadlineOverrun => {
                self.gpu_faults += 1;
                self.deadline_overruns += 1;
            }
            FaultKind::TransferH2D | FaultKind::TransferD2H => self.transfer_faults += 1,
            FaultKind::CpuChunk => self.cpu_faults += 1,
        }
    }

    /// Escalate the ladder to at least `level`, counting the transition.
    pub fn escalate(&mut self, level: DegradationLevel) {
        if level > self.level {
            self.level = level;
            self.degradations += 1;
        }
    }

    /// Fold another loop's stats into this run-level accumulator: counters
    /// add, the ladder keeps the worst rung.
    pub fn merge(&mut self, other: &FaultStats) {
        self.retries += other.retries;
        self.fallbacks += other.fallbacks;
        self.degradations += other.degradations;
        self.gpu_faults += other.gpu_faults;
        self.cpu_faults += other.cpu_faults;
        self.transfer_faults += other.transfer_faults;
        self.deadline_overruns += other.deadline_overruns;
        self.backoff_s += other.backoff_s;
        self.level = self.level.max(other.level);
    }

    /// Did any recovery machinery engage?
    pub fn any(&self) -> bool {
        self.retries > 0
            || self.fallbacks > 0
            || self.degradations > 0
            || self.gpu_faults > 0
            || self.cpu_faults > 0
            || self.transfer_faults > 0
    }
}

/// Retry/fallback policy knobs, carried in `SchedulerConfig`.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Bounded retries for a transient device fault before it is treated as
    /// persistent.
    pub max_retries: u32,
    /// Backoff charged to the time model per retry, in microseconds,
    /// multiplied by the attempt number (linear backoff).
    pub retry_backoff_us: f64,
    /// Persistent faults tolerated on one device before it is retired for
    /// the rest of the loop (ladder escalation).
    pub device_fault_tolerance: u32,
    /// Kernel watchdog slack: a launch whose simulated cycles exceed the
    /// cost-model estimate × this factor is killed as a deadline overrun.
    /// Values ≤ 1 disable the watchdog.
    pub watchdog_slack: f64,
    /// When set, the in-run recovery ladder is disabled past retries: the
    /// first fault that would have triggered a cross-device fallback or a
    /// degradation rung is returned as an error instead of being absorbed.
    /// A serving layer that owns its own retry/failover ladder sets this so
    /// faults escape to it with the run's accumulated `FaultStats` attached.
    pub fail_fast: bool,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            max_retries: 2,
            retry_backoff_us: 50.0,
            device_fault_tolerance: 3,
            watchdog_slack: 4.0,
            fail_fast: false,
        }
    }
}

impl ResilienceConfig {
    /// The watchdog slack as an option, `None` when disabled.
    pub fn watchdog(&self) -> Option<f64> {
        (self.watchdog_slack > 1.0).then_some(self.watchdog_slack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin() -> FaultOrigin {
        FaultOrigin::for_loop(LoopId(3))
            .with_subloop(128)
            .with_warp(2)
    }

    #[test]
    fn quiet_plan_never_fires() {
        let p = FaultPlan::quiet(9);
        for _ in 0..100 {
            assert!(p.on_kernel_launch(origin()).is_none());
            assert!(p.on_warp(origin()).is_none());
            assert!(p.on_transfer(true, origin()).is_none());
            assert!(p.on_cpu_chunk(origin()).is_none());
        }
        assert_eq!(p.injected(), 0);
    }

    #[test]
    fn occurrence_window_matches() {
        // Fire on the 3rd and 4th kernel launches only.
        let p = FaultPlan::new(
            1,
            vec![FaultRule::transient(FaultKind::KernelLaunch, 2).after(2)],
        );
        let fired: Vec<bool> = (0..6)
            .map(|_| p.on_kernel_launch(origin()).is_some())
            .collect();
        assert_eq!(fired, vec![false, false, true, true, false, false]);
        assert_eq!(p.injected(), 2);
    }

    #[test]
    fn persistent_rule_fires_forever() {
        let p = FaultPlan::new(1, vec![FaultRule::persistent(FaultKind::TransferH2D)]);
        for _ in 0..50 {
            let f = p.on_transfer(true, origin()).expect("must fire");
            assert!(!f.transient);
            assert_eq!(f.kind, FaultKind::TransferH2D);
        }
        // The other direction is a different kind.
        assert!(p.on_transfer(false, origin()).is_none());
    }

    #[test]
    fn warp_gate_restricts_simt_faults() {
        let p = FaultPlan::new(1, vec![FaultRule::persistent(FaultKind::Simt).on_warp(5)]);
        assert!(p.on_warp(origin().with_warp(4)).is_none());
        let f = p.on_warp(origin().with_warp(5)).expect("warp 5 faults");
        assert_eq!(f.origin.warp, Some(5));
    }

    #[test]
    fn probability_is_deterministic_by_seed() {
        let mk = |seed| {
            let p = FaultPlan::new(
                seed,
                vec![FaultRule::persistent(FaultKind::CpuChunk).with_probability(0.5)],
            );
            (0..64)
                .map(|_| p.on_cpu_chunk(origin()).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
        let hits = mk(7).iter().filter(|b| **b).count();
        assert!(hits > 10 && hits < 54, "p=0.5 fired {hits}/64");
    }

    #[test]
    fn clone_resets_state() {
        let p = FaultPlan::new(1, vec![FaultRule::transient(FaultKind::KernelLaunch, 1)]);
        assert!(p.on_kernel_launch(origin()).is_some());
        assert!(p.on_kernel_launch(origin()).is_none());
        let q = p.clone();
        assert!(q.on_kernel_launch(origin()).is_some());
    }

    #[test]
    fn reseeded_is_deterministic_and_salt_sensitive() {
        let tmpl = FaultPlan::new(
            42,
            vec![FaultRule::persistent(FaultKind::KernelLaunch).with_probability(0.5)],
        );
        let draws = |p: &FaultPlan| {
            (0..64)
                .map(|_| p.on_kernel_launch(origin()).is_some())
                .collect::<Vec<_>>()
        };
        // Same (template, salt) → identical derived behavior.
        assert_eq!(draws(&tmpl.reseeded(3)), draws(&tmpl.reseeded(3)));
        // Different salts decorrelate; rules are preserved.
        assert_ne!(draws(&tmpl.reseeded(3)), draws(&tmpl.reseeded(4)));
        assert_eq!(tmpl.reseeded(3).rules().len(), 1);
        // Deriving never consumes template state.
        assert_eq!(tmpl.injected(), 0);
    }

    #[test]
    fn stall_reports_cycles() {
        let p = FaultPlan::new(
            1,
            vec![FaultRule::persistent(FaultKind::DeadlineOverrun).stalling(1e6)],
        );
        let (stall, f) = p.stall_cycles(origin()).expect("must fire");
        assert!((stall - 1e6).abs() < 1e-9);
        assert_eq!(f.kind, FaultKind::DeadlineOverrun);
    }

    #[test]
    fn ladder_orders_and_escalates() {
        use DegradationLevel::*;
        assert!(Full < GpuDegraded && GpuDegraded < CpuOnly && CpuOnly < Sequential);
        let mut s = FaultStats::default();
        s.escalate(GpuDegraded);
        assert_eq!(s.level, GpuDegraded);
        assert_eq!(s.degradations, 1);
        // De-escalation never happens.
        s.escalate(Full);
        assert_eq!(s.level, GpuDegraded);
        assert_eq!(s.degradations, 1);
        s.escalate(Sequential);
        assert_eq!(s.level, Sequential);
        assert_eq!(s.degradations, 2);
    }

    #[test]
    fn stats_merge_adds_counters_and_keeps_worst_level() {
        let a = FaultStats {
            retries: 2,
            fallbacks: 1,
            gpu_faults: 3,
            backoff_s: 0.5,
            level: DegradationLevel::GpuDegraded,
            ..FaultStats::default()
        };
        let b = FaultStats {
            retries: 1,
            cpu_faults: 4,
            backoff_s: 0.25,
            level: DegradationLevel::Full,
            ..FaultStats::default()
        };
        let mut m = FaultStats::default();
        m.merge(&a);
        m.merge(&b);
        assert_eq!(m.retries, 3);
        assert_eq!(m.fallbacks, 1);
        assert_eq!(m.gpu_faults, 3);
        assert_eq!(m.cpu_faults, 4);
        assert!((m.backoff_s - 0.75).abs() < 1e-12);
        assert_eq!(m.level, DegradationLevel::GpuDegraded);
        assert!(m.any());
        assert!(!FaultStats::default().any());
    }

    #[test]
    fn origin_display_is_informative() {
        let s = format!(
            "{}",
            DeviceFault {
                kind: FaultKind::Simt,
                origin: origin().with_chunk(7),
                transient: true,
            }
        );
        assert!(s.contains("SIMT"));
        assert!(s.contains("loop 3"));
        assert!(s.contains("warp 2"));
        assert!(s.contains("chunk 7"));
    }

    #[test]
    fn watchdog_config_gates() {
        let mut r = ResilienceConfig::default();
        assert!(r.watchdog().is_some());
        r.watchdog_slack = 0.0;
        assert!(r.watchdog().is_none());
    }
}

//! The lock-step SIMT warp interpreter.
//!
//! A warp executes one loop iteration per lane. All lanes walk the same IR
//! tree together under an *active mask*; control flow manipulates the mask
//! rather than the instruction stream, exactly like real SIMT hardware:
//!
//! * `if` evaluates the condition in every active lane and runs both
//!   branches with complementary masks (a *divergent branch* when both are
//!   non-empty);
//! * inner loops keep issuing rounds until every lane's trip count is
//!   exhausted — lanes that finish early idle, which is how load imbalance
//!   inside a warp wastes lanes;
//! * each warp-level instruction is charged once regardless of how many
//!   lanes are active (SIMD issue), and each warp-level memory access is
//!   charged by the number of distinct segments the lanes touch.
//!
//! Kernel bodies may call other MiniJava functions (they are inlined
//! SIMT-style with per-lane frames and return masks), but `break`,
//! `continue`, `return` at kernel top level and device-side allocation are
//! rejected — the translator never produces them for annotated loops.

use crate::config::DeviceConfig;
use crate::memory::{AccessCtx, LaneMemory};
use crate::stats::WarpStats;
use japonica_ir::cost::{binop_class, intrinsic_class, unop_class};
use japonica_ir::{
    ops, ArrayId, Env, ExecError, Expr, ForLoop, LoopBounds, OpClass, Program, Stmt, Value,
};

/// An error raised during SIMT execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SimtError {
    /// A lane hit a runtime error; `iter` is the loop iteration it executed.
    Lane { iter: u64, error: ExecError },
    /// The kernel used a construct the SIMT engine does not support.
    Unsupported(String),
    /// An injected (or watchdog-raised) device fault, carried with its
    /// origin so the recovery machinery knows where execution stopped.
    Fault(japonica_faults::DeviceFault),
    /// A device memory operation (allocation/transfer bookkeeping) failed.
    Mem(ExecError),
}

impl std::fmt::Display for SimtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimtError::Lane { iter, error } => write!(f, "lane at iteration {iter}: {error}"),
            SimtError::Unsupported(w) => write!(f, "unsupported in GPU kernel: {w}"),
            SimtError::Fault(d) => write!(f, "device fault: {d}"),
            SimtError::Mem(e) => write!(f, "device memory: {e}"),
        }
    }
}

impl std::error::Error for SimtError {}

impl From<japonica_faults::DeviceFault> for SimtError {
    fn from(f: japonica_faults::DeviceFault) -> SimtError {
        SimtError::Fault(f)
    }
}

/// Per-lane values produced by a vector expression evaluation. `None` for
/// inactive lanes.
type Vals = Vec<Option<Value>>;

type Mask = Vec<bool>;

fn any(mask: &Mask) -> bool {
    mask.iter().any(|&b| b)
}

fn count(mask: &Mask) -> usize {
    mask.iter().filter(|&&b| b).count()
}

/// A call frame during SIMT function inlining.
struct Frame {
    returned: Mask,
    ret_vals: Vals,
    /// `false` at kernel top level, where `return` is illegal.
    allow_return: bool,
}

impl Frame {
    fn kernel(lanes: usize) -> Frame {
        Frame {
            returned: vec![false; lanes],
            ret_vals: vec![None; lanes],
            allow_return: false,
        }
    }
    fn call(lanes: usize) -> Frame {
        Frame {
            returned: vec![false; lanes],
            ret_vals: vec![None; lanes],
            allow_return: true,
        }
    }
    /// Lanes of `mask` that have not returned.
    fn live(&self, mask: &Mask) -> Mask {
        mask.iter()
            .zip(&self.returned)
            .map(|(&m, &r)| m && !r)
            .collect()
    }
}

/// Execution context threaded through the tree walk.
struct Ctx<'a, M: LaneMemory> {
    mem: &'a mut M,
    stats: &'a mut WarpStats,
    cfg: &'a DeviceConfig,
    iters: &'a [u64],
    warp_id: u32,
    depth: usize,
    /// Reusable distinct-segment scratch for `charge_coalesced` (avoids a
    /// `BTreeSet` allocation per warp memory access).
    seg_scratch: Vec<u64>,
}

impl<M: LaneMemory> Ctx<'_, M> {
    fn access_ctx(&self, lane: usize) -> AccessCtx {
        AccessCtx {
            lane: lane as u32,
            warp: self.warp_id,
            iter: self.iters[lane],
        }
    }

    fn lane_err(&self, lane: usize, error: ExecError) -> SimtError {
        SimtError::Lane {
            iter: self.iters[lane],
            error,
        }
    }

    /// Charge one coalesced warp memory access over the given per-lane
    /// (array, index) pairs.
    fn charge_coalesced(&mut self, touched: &[(usize, ArrayId, i64)]) {
        self.seg_scratch.clear();
        let mut uncoalesced = 0u64;
        for &(_, arr, idx) in touched {
            match self.mem.address_of(arr, idx) {
                Some(addr) => {
                    self.seg_scratch
                        .push(addr / self.cfg.mem_segment_bytes as u64);
                }
                None => uncoalesced += 1,
            }
        }
        // sort+dedup yields the same distinct-segment count the old
        // `BTreeSet` produced, without the per-access allocation.
        self.seg_scratch.sort_unstable();
        self.seg_scratch.dedup();
        let segs = self.seg_scratch.len() as u64 + uncoalesced;
        if segs > 0 {
            self.stats.charge_mem(segs, self.cfg.mem_tx_cycles);
        }
        let oh = self.mem.overhead_cycles();
        if oh > 0.0 {
            self.stats.charge_extra(oh);
        }
    }
}

/// The SIMT executor for one program on one device configuration.
pub struct SimtExec<'p> {
    program: &'p Program,
    cfg: &'p DeviceConfig,
    max_depth: usize,
}

#[allow(clippy::needless_range_loop)] // lane indexing reads clearer than zipped iterators
#[allow(clippy::match_like_matches_macro)] // the (op, value) table reads clearer as a match
impl<'p> SimtExec<'p> {
    /// Create an executor.
    pub fn new(program: &'p Program, cfg: &'p DeviceConfig) -> SimtExec<'p> {
        SimtExec {
            program,
            cfg,
            max_depth: 16,
        }
    }

    /// Execute one warp: lane `l` runs loop iteration `warp_iters[l]` of
    /// `loop_` (0-based iteration index into `bounds`). Every lane starts
    /// from a copy of `base_env`.
    pub fn run_warp<M: LaneMemory>(
        &self,
        loop_: &ForLoop,
        bounds: &LoopBounds,
        warp_iters: &[u64],
        base_env: &Env,
        warp_id: u32,
        mem: &mut M,
    ) -> Result<WarpStats, SimtError> {
        assert!(
            warp_iters.len() <= self.cfg.warp_size as usize,
            "warp overfull"
        );
        let lanes = warp_iters.len();
        let mut envs: Vec<Env> = vec![base_env.clone(); lanes];
        for (l, &k) in warp_iters.iter().enumerate() {
            envs[l].set(loop_.var, Value::Int(bounds.value_of(k) as i32));
        }
        let mut stats = WarpStats::new();
        let mut ctx = Ctx {
            mem,
            stats: &mut stats,
            cfg: self.cfg,
            iters: warp_iters,
            warp_id,
            depth: 0,
            seg_scratch: Vec::new(),
        };
        let mask = vec![true; lanes];
        let mut frame = Frame::kernel(lanes);
        self.exec_block(&loop_.body, &mut envs, &mask, &mut frame, &mut ctx)?;
        Ok(stats)
    }

    fn exec_block<M: LaneMemory>(
        &self,
        stmts: &[Stmt],
        envs: &mut [Env],
        mask: &Mask,
        frame: &mut Frame,
        ctx: &mut Ctx<'_, M>,
    ) -> Result<(), SimtError> {
        for s in stmts {
            let live = frame.live(mask);
            if !any(&live) {
                break;
            }
            self.exec_stmt(s, envs, &live, frame, ctx)?;
        }
        Ok(())
    }

    fn exec_stmt<M: LaneMemory>(
        &self,
        stmt: &Stmt,
        envs: &mut [Env],
        mask: &Mask,
        frame: &mut Frame,
        ctx: &mut Ctx<'_, M>,
    ) -> Result<(), SimtError> {
        match stmt {
            Stmt::DeclVar { var, ty, init } => {
                let vals = match init {
                    Some(e) => self.eval(e, envs, mask, ctx)?,
                    None => mask
                        .iter()
                        .map(|&m| if m { Some(ty.zero()) } else { None })
                        .collect(),
                };
                ctx.stats.charge(OpClass::Move, &ctx.cfg.cost);
                for (l, v) in vals.into_iter().enumerate() {
                    if let Some(v) = v {
                        let cast = v.cast(*ty).ok_or_else(|| {
                            ctx.lane_err(
                                l,
                                ExecError::TypeMismatch {
                                    expected: ty.to_string(),
                                    found: format!("{v}"),
                                },
                            )
                        })?;
                        envs[l].set(*var, cast);
                    }
                }
                Ok(())
            }
            Stmt::NewArray { .. } => Err(SimtError::Unsupported(
                "device-side array allocation".into(),
            )),
            Stmt::Assign { var, value } => {
                let vals = self.eval(value, envs, mask, ctx)?;
                ctx.stats.charge(OpClass::Move, &ctx.cfg.cost);
                for (l, v) in vals.into_iter().enumerate() {
                    if let Some(mut v) = v {
                        if let Ok(old) = envs[l].get(*var) {
                            if let Some(ty) = old.ty() {
                                v = v.cast(ty).ok_or_else(|| {
                                    ctx.lane_err(
                                        l,
                                        ExecError::TypeMismatch {
                                            expected: ty.to_string(),
                                            found: format!("{v}"),
                                        },
                                    )
                                })?;
                            }
                        }
                        envs[l].set(*var, v);
                    }
                }
                Ok(())
            }
            Stmt::Store {
                array,
                index,
                value,
                ..
            } => {
                let idxs = self.eval(index, envs, mask, ctx)?;
                let vals = self.eval(value, envs, mask, ctx)?;
                ctx.stats.charge(OpClass::Store, &ctx.cfg.cost);
                let mut touched = Vec::new();
                for l in 0..envs.len() {
                    if !mask[l] {
                        continue;
                    }
                    let arr = envs[l]
                        .get(*array)
                        .map_err(|e| ctx.lane_err(l, e))?
                        .as_array()
                        .ok_or_else(|| {
                            ctx.lane_err(
                                l,
                                ExecError::TypeMismatch {
                                    expected: "array".into(),
                                    found: format!("{}", *array),
                                },
                            )
                        })?;
                    let idx = idxs[l].and_then(|v| v.as_i64()).ok_or_else(|| {
                        ctx.lane_err(
                            l,
                            ExecError::TypeMismatch {
                                expected: "int index".into(),
                                found: "non-integer".into(),
                            },
                        )
                    })?;
                    touched.push((l, arr, idx));
                }
                ctx.charge_coalesced(&touched);
                for &(l, arr, idx) in &touched {
                    let v = vals[l].expect("value evaluated for active lane");
                    let actx = ctx.access_ctx(l);
                    ctx.mem
                        .store(actx, arr, idx, v)
                        .map_err(|e| ctx.lane_err(l, e))?;
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.eval_bool(cond, envs, mask, ctx)?;
                ctx.stats.charge(OpClass::Branch, &ctx.cfg.cost);
                ctx.stats.branches += 1;
                let then_mask: Mask = mask
                    .iter()
                    .zip(&c)
                    .map(|(&m, &cv)| m && cv == Some(true))
                    .collect();
                let else_mask: Mask = mask
                    .iter()
                    .zip(&c)
                    .map(|(&m, &cv)| m && cv == Some(false))
                    .collect();
                if any(&then_mask) && any(&else_mask) {
                    ctx.stats.divergent_branches += 1;
                }
                if any(&then_mask) {
                    self.exec_block(then_branch, envs, &then_mask, frame, ctx)?;
                }
                if any(&else_mask) {
                    self.exec_block(else_branch, envs, &else_mask, frame, ctx)?;
                }
                Ok(())
            }
            Stmt::For(inner) => self.exec_inner_for(inner, envs, mask, frame, ctx),
            Stmt::While { cond, body } => {
                let mut live = mask.clone();
                let entered = count(&live);
                loop {
                    let live_now = frame.live(&live);
                    if !any(&live_now) {
                        break;
                    }
                    let c = self.eval_bool(cond, envs, &live_now, ctx)?;
                    ctx.stats.charge(OpClass::Branch, &ctx.cfg.cost);
                    ctx.stats.branches += 1;
                    live = live_now
                        .iter()
                        .zip(&c)
                        .map(|(&m, &cv)| m && cv == Some(true))
                        .collect();
                    if !any(&live) {
                        break;
                    }
                    if count(&live) < entered {
                        ctx.stats.divergent_branches += 1;
                    }
                    self.exec_block(body, envs, &live, frame, ctx)?;
                }
                Ok(())
            }
            Stmt::Return(e) => {
                if !frame.allow_return {
                    return Err(SimtError::Unsupported("return in kernel body".into()));
                }
                let vals = match e {
                    Some(e) => self.eval(e, envs, mask, ctx)?,
                    None => vec![None; envs.len()],
                };
                for l in 0..envs.len() {
                    if mask[l] {
                        frame.returned[l] = true;
                        frame.ret_vals[l] = vals[l];
                    }
                }
                Ok(())
            }
            Stmt::Break => Err(SimtError::Unsupported("break in kernel body".into())),
            Stmt::Continue => Err(SimtError::Unsupported("continue in kernel body".into())),
            Stmt::ExprStmt(e) => {
                self.eval(e, envs, mask, ctx)?;
                Ok(())
            }
        }
    }

    /// Inner (sequential) counted loop under SIMT: rounds continue while any
    /// lane still has iterations left.
    fn exec_inner_for<M: LaneMemory>(
        &self,
        l: &ForLoop,
        envs: &mut [Env],
        mask: &Mask,
        frame: &mut Frame,
        ctx: &mut Ctx<'_, M>,
    ) -> Result<(), SimtError> {
        let starts = self.eval_i64(&l.start, envs, mask, ctx)?;
        let ends = self.eval_i64(&l.end, envs, mask, ctx)?;
        let steps = self.eval_i64(&l.step, envs, mask, ctx)?;
        let lanes = envs.len();
        let mut trips = vec![0u64; lanes];
        for i in 0..lanes {
            if mask[i] {
                let (Some(s), Some(e), Some(st)) = (starts[i], ends[i], steps[i]) else {
                    return Err(SimtError::Unsupported(
                        "active lane has no evaluated inner-loop bound".into(),
                    ));
                };
                if st <= 0 {
                    return Err(ctx.lane_err(i, ExecError::NonPositiveStep(st)));
                }
                trips[i] = if e <= s {
                    0
                } else {
                    ((e - s) + st - 1) as u64 / st as u64
                };
            }
        }
        let entered = count(mask);
        let max_trip = trips.iter().copied().max().unwrap_or(0);
        for k in 0..max_trip {
            let round: Mask = (0..lanes)
                .map(|i| mask[i] && k < trips[i] && !frame.returned[i])
                .collect();
            if !any(&round) {
                break;
            }
            ctx.stats.charge(OpClass::IntAlu, &ctx.cfg.cost);
            ctx.stats.charge(OpClass::Branch, &ctx.cfg.cost);
            ctx.stats.branches += 1;
            if count(&round) < entered {
                ctx.stats.divergent_branches += 1;
            }
            for i in 0..lanes {
                if round[i] {
                    // `round[i]` implies a nonzero trip count, which implies
                    // the bounds evaluated to Some above.
                    let (Some(s), Some(st)) = (starts[i], steps[i]) else {
                        return Err(SimtError::Unsupported(
                            "active lane lost its inner-loop bounds".into(),
                        ));
                    };
                    envs[i].set(l.var, Value::Int((s + k as i64 * st) as i32));
                }
            }
            self.exec_block(&l.body, envs, &round, frame, ctx)?;
        }
        Ok(())
    }

    fn eval_bool<M: LaneMemory>(
        &self,
        e: &Expr,
        envs: &mut [Env],
        mask: &Mask,
        ctx: &mut Ctx<'_, M>,
    ) -> Result<Vec<Option<bool>>, SimtError> {
        let vals = self.eval(e, envs, mask, ctx)?;
        vals.into_iter()
            .enumerate()
            .map(|(l, v)| match v {
                None => Ok(None),
                Some(Value::Bool(b)) => Ok(Some(b)),
                Some(other) => Err(ctx.lane_err(
                    l,
                    ExecError::TypeMismatch {
                        expected: "boolean".into(),
                        found: format!("{other}"),
                    },
                )),
            })
            .collect()
    }

    fn eval_i64<M: LaneMemory>(
        &self,
        e: &Expr,
        envs: &mut [Env],
        mask: &Mask,
        ctx: &mut Ctx<'_, M>,
    ) -> Result<Vec<Option<i64>>, SimtError> {
        let vals = self.eval(e, envs, mask, ctx)?;
        vals.into_iter()
            .enumerate()
            .map(|(l, v)| match v {
                None => Ok(None),
                Some(v) => v.as_i64().map(Some).ok_or_else(|| {
                    ctx.lane_err(
                        l,
                        ExecError::TypeMismatch {
                            expected: "int".into(),
                            found: format!("{v}"),
                        },
                    )
                }),
            })
            .collect()
    }

    fn eval<M: LaneMemory>(
        &self,
        e: &Expr,
        envs: &mut [Env],
        mask: &Mask,
        ctx: &mut Ctx<'_, M>,
    ) -> Result<Vals, SimtError> {
        let lanes = envs.len();
        match e {
            Expr::Const(v) => {
                ctx.stats.charge(OpClass::Move, &ctx.cfg.cost);
                Ok(mask.iter().map(|&m| m.then_some(*v)).collect())
            }
            Expr::Var(var) => {
                ctx.stats.charge(OpClass::Move, &ctx.cfg.cost);
                (0..lanes)
                    .map(|l| {
                        if !mask[l] {
                            return Ok(None);
                        }
                        envs[l]
                            .get(*var)
                            .map(Some)
                            .map_err(|er| ctx.lane_err(l, er))
                    })
                    .collect()
            }
            Expr::Unary(op, a) => {
                let va = self.eval(a, envs, mask, ctx)?;
                let float = first_active(&va).map(is_float).unwrap_or(false);
                ctx.stats.charge(unop_class(*op, float), &ctx.cfg.cost);
                va.into_iter()
                    .enumerate()
                    .map(|(l, v)| match v {
                        None => Ok(None),
                        Some(v) => ops::unary(*op, v)
                            .map(Some)
                            .map_err(|er| ctx.lane_err(l, er)),
                    })
                    .collect()
            }
            Expr::Binary(op, a, b) if op.is_short_circuit() => {
                let va = self.eval_bool(a, envs, mask, ctx)?;
                ctx.stats.charge(OpClass::Branch, &ctx.cfg.cost);
                ctx.stats.branches += 1;
                // Lanes that still need the RHS:
                let need_rhs: Mask = (0..lanes)
                    .map(|l| {
                        mask[l]
                            && match (*op, va[l]) {
                                (japonica_ir::BinOp::LAnd, Some(true)) => true,
                                (japonica_ir::BinOp::LOr, Some(false)) => true,
                                _ => false,
                            }
                    })
                    .collect();
                let short: Mask = (0..lanes).map(|l| mask[l] && !need_rhs[l]).collect();
                if any(&need_rhs) && any(&short) {
                    ctx.stats.divergent_branches += 1;
                }
                let vb = if any(&need_rhs) {
                    self.eval_bool(b, envs, &need_rhs, ctx)?
                } else {
                    vec![None; lanes]
                };
                Ok((0..lanes)
                    .map(|l| {
                        if !mask[l] {
                            None
                        } else if need_rhs[l] {
                            vb[l].map(Value::Bool)
                        } else {
                            va[l].map(Value::Bool)
                        }
                    })
                    .collect())
            }
            Expr::Binary(op, a, b) => {
                let va = self.eval(a, envs, mask, ctx)?;
                let vb = self.eval(b, envs, mask, ctx)?;
                let float = first_active(&va).map(is_float).unwrap_or(false)
                    || first_active(&vb).map(is_float).unwrap_or(false);
                ctx.stats.charge(binop_class(*op, float), &ctx.cfg.cost);
                (0..lanes)
                    .map(|l| match (va[l], vb[l]) {
                        (Some(x), Some(y)) => ops::binary(*op, x, y)
                            .map(Some)
                            .map_err(|er| ctx.lane_err(l, er)),
                        _ => Ok(None),
                    })
                    .collect()
            }
            Expr::Cast(ty, a) => {
                let va = self.eval(a, envs, mask, ctx)?;
                ctx.stats.charge(OpClass::Cast, &ctx.cfg.cost);
                va.into_iter()
                    .enumerate()
                    .map(|(l, v)| match v {
                        None => Ok(None),
                        Some(v) => v.cast(*ty).map(Some).ok_or_else(|| {
                            ctx.lane_err(
                                l,
                                ExecError::InvalidCast {
                                    from: format!("{v}"),
                                    to: *ty,
                                },
                            )
                        }),
                    })
                    .collect()
            }
            Expr::Index { array, index } => {
                let idxs = self.eval(index, envs, mask, ctx)?;
                ctx.stats.charge(OpClass::Load, &ctx.cfg.cost);
                let mut touched = Vec::new();
                for l in 0..lanes {
                    if !mask[l] {
                        continue;
                    }
                    let arr = envs[l]
                        .get(*array)
                        .map_err(|er| ctx.lane_err(l, er))?
                        .as_array()
                        .ok_or_else(|| {
                            ctx.lane_err(
                                l,
                                ExecError::TypeMismatch {
                                    expected: "array".into(),
                                    found: format!("{}", *array),
                                },
                            )
                        })?;
                    let idx = idxs[l].and_then(|v| v.as_i64()).ok_or_else(|| {
                        ctx.lane_err(
                            l,
                            ExecError::TypeMismatch {
                                expected: "int index".into(),
                                found: "non-integer".into(),
                            },
                        )
                    })?;
                    touched.push((l, arr, idx));
                }
                ctx.charge_coalesced(&touched);
                let mut out: Vals = vec![None; lanes];
                for &(l, arr, idx) in &touched {
                    let actx = ctx.access_ctx(l);
                    out[l] = Some(
                        ctx.mem
                            .load(actx, arr, idx)
                            .map_err(|er| ctx.lane_err(l, er))?,
                    );
                }
                Ok(out)
            }
            Expr::Len(var) => {
                ctx.stats.charge(OpClass::Move, &ctx.cfg.cost);
                (0..lanes)
                    .map(|l| {
                        if !mask[l] {
                            return Ok(None);
                        }
                        let arr = envs[l]
                            .get(*var)
                            .map_err(|er| ctx.lane_err(l, er))?
                            .as_array()
                            .ok_or_else(|| {
                                ctx.lane_err(
                                    l,
                                    ExecError::TypeMismatch {
                                        expected: "array".into(),
                                        found: format!("{}", *var),
                                    },
                                )
                            })?;
                        let len = ctx.mem.array_len(arr).map_err(|er| ctx.lane_err(l, er))?;
                        Ok(Some(Value::Int(len as i32)))
                    })
                    .collect()
            }
            Expr::Intrinsic(f, args) => {
                let mut arg_vals: Vec<Vals> = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.eval(a, envs, mask, ctx)?);
                }
                ctx.stats.charge(intrinsic_class(*f), &ctx.cfg.cost);
                (0..lanes)
                    .map(|l| {
                        if !mask[l] {
                            return Ok(None);
                        }
                        let lane_args: Vec<Value> = arg_vals
                            .iter()
                            .map(|v| v[l].expect("active lane"))
                            .collect();
                        ops::intrinsic(*f, &lane_args)
                            .map(Some)
                            .map_err(|er| ctx.lane_err(l, er))
                    })
                    .collect()
            }
            Expr::Call(fid, args) => {
                if ctx.depth >= self.max_depth {
                    return Err(SimtError::Unsupported(
                        "call depth limit exceeded in kernel".into(),
                    ));
                }
                let mut arg_vals: Vec<Vals> = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.eval(a, envs, mask, ctx)?);
                }
                ctx.stats.charge(OpClass::Call, &ctx.cfg.cost);
                let f = self.program.function(*fid).ok_or_else(|| {
                    SimtError::Unsupported(format!("unknown function {fid} in kernel"))
                })?;
                if f.params.len() != args.len() {
                    return Err(SimtError::Unsupported(format!(
                        "arity mismatch calling `{}`",
                        f.name
                    )));
                }
                let mut callee_envs: Vec<Env> = vec![Env::with_slots(f.num_vars); lanes];
                for l in 0..lanes {
                    if !mask[l] {
                        continue;
                    }
                    for (p, av) in f.params.iter().zip(&arg_vals) {
                        let raw = av[l].expect("active lane arg");
                        let bound = match p.ty {
                            japonica_ir::ParamTy::Scalar(t) => raw.cast(t).ok_or_else(|| {
                                ctx.lane_err(
                                    l,
                                    ExecError::TypeMismatch {
                                        expected: t.to_string(),
                                        found: format!("{raw}"),
                                    },
                                )
                            })?,
                            japonica_ir::ParamTy::Array(_) => raw,
                        };
                        callee_envs[l].set(p.var, bound);
                    }
                }
                let mut frame = Frame::call(lanes);
                ctx.depth += 1;
                self.exec_block(&f.body, &mut callee_envs, mask, &mut frame, ctx)?;
                ctx.depth -= 1;
                if f.ret.is_some() {
                    for l in 0..lanes {
                        if mask[l] && !frame.returned[l] {
                            return Err(SimtError::Unsupported(format!(
                                "`{}` completed without returning on some lane",
                                f.name
                            )));
                        }
                    }
                }
                Ok(frame.ret_vals)
            }
            Expr::Ternary(c, t, f) => {
                let cv = self.eval_bool(c, envs, mask, ctx)?;
                ctx.stats.charge(OpClass::Branch, &ctx.cfg.cost);
                ctx.stats.branches += 1;
                let t_mask: Mask = (0..lanes).map(|l| mask[l] && cv[l] == Some(true)).collect();
                let f_mask: Mask = (0..lanes)
                    .map(|l| mask[l] && cv[l] == Some(false))
                    .collect();
                if any(&t_mask) && any(&f_mask) {
                    ctx.stats.divergent_branches += 1;
                }
                let tv = if any(&t_mask) {
                    self.eval(t, envs, &t_mask, ctx)?
                } else {
                    vec![None; lanes]
                };
                let fv = if any(&f_mask) {
                    self.eval(f, envs, &f_mask, ctx)?
                } else {
                    vec![None; lanes]
                };
                Ok((0..lanes)
                    .map(|l| if t_mask[l] { tv[l] } else { fv[l] })
                    .collect())
            }
        }
    }
}

fn first_active(vals: &Vals) -> Option<Value> {
    vals.iter().copied().flatten().next()
}

fn is_float(v: Value) -> bool {
    matches!(v, Value::Float(_) | Value::Double(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DeviceMemory;
    use japonica_frontend::compile_source;
    use japonica_ir::Heap;

    #[test]
    fn warp_executes_vector_add() {
        let src = "static void add(double[] a, double[] b, double[] c, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) { c[i] = a[i] + b[i]; }
        }";
        let p = compile_source(src).unwrap();
        let (_, f) = p.function_by_name("add").unwrap();
        let l = f.all_loops()[0].clone();
        let mut heap = Heap::new();
        let a = heap.alloc_doubles(&[1.0; 32]);
        let b = heap.alloc_doubles(&[2.0; 32]);
        let c = heap.alloc_doubles(&[0.0; 32]);
        let cfg = DeviceConfig::default();
        let mut dev = DeviceMemory::new();
        dev.copy_in(&heap, a, 0, 32, &cfg).unwrap();
        dev.copy_in(&heap, b, 0, 32, &cfg).unwrap();
        dev.copy_in(&heap, c, 0, 32, &cfg).unwrap();
        let mut env = Env::with_slots(f.num_vars);
        env.set(f.params[0].var, Value::Array(a));
        env.set(f.params[1].var, Value::Array(b));
        env.set(f.params[2].var, Value::Array(c));
        env.set(f.params[3].var, Value::Int(32));
        let bounds = LoopBounds {
            start: 0,
            end: 32,
            step: 1,
        };
        let iters: Vec<u64> = (0..32).collect();
        let ex = SimtExec::new(&p, &cfg);
        let stats = ex.run_warp(&l, &bounds, &iters, &env, 0, &mut dev).unwrap();
        // results on device
        for i in 0..32 {
            assert_eq!(
                dev.array(c).unwrap().get(i),
                Value::Double(3.0),
                "element {i}"
            );
        }
        // unit-stride doubles over 32 lanes = 256 bytes = 2 segments per access
        assert!(stats.mem_segments >= 6, "{}", stats.mem_segments);
        assert_eq!(stats.divergent_branches, 0);
    }

    #[test]
    fn divergent_branch_counted_once() {
        let src = "static void f(int[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) { a[i] = 1; } else { a[i] = 2; }
            }
        }";
        let p = compile_source(src).unwrap();
        let (_, f) = p.function_by_name("f").unwrap();
        let l = f.all_loops()[0].clone();
        let mut heap = Heap::new();
        let a = heap.alloc_ints(&[0; 32]);
        let cfg = DeviceConfig::default();
        let mut dev = DeviceMemory::new();
        dev.copy_in(&heap, a, 0, 32, &cfg).unwrap();
        let mut env = Env::with_slots(f.num_vars);
        env.set(f.params[0].var, Value::Array(a));
        env.set(f.params[1].var, Value::Int(32));
        let bounds = LoopBounds {
            start: 0,
            end: 32,
            step: 1,
        };
        let iters: Vec<u64> = (0..32).collect();
        let stats = SimtExec::new(&p, &cfg)
            .run_warp(&l, &bounds, &iters, &env, 0, &mut dev)
            .unwrap();
        assert_eq!(stats.divergent_branches, 1);
        for i in 0..32 {
            let expect = if i % 2 == 0 { 1 } else { 2 };
            assert_eq!(dev.array(a).unwrap().get(i), Value::Int(expect));
        }
    }

    #[test]
    fn uniform_branch_does_not_diverge() {
        let src = "static void f(int[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) {
                if (n > 0) { a[i] = 1; }
            }
        }";
        let p = compile_source(src).unwrap();
        let (_, f) = p.function_by_name("f").unwrap();
        let l = f.all_loops()[0].clone();
        let mut heap = Heap::new();
        let a = heap.alloc_ints(&[0; 8]);
        let cfg = DeviceConfig::default();
        let mut dev = DeviceMemory::new();
        dev.copy_in(&heap, a, 0, 8, &cfg).unwrap();
        let mut env = Env::with_slots(f.num_vars);
        env.set(f.params[0].var, Value::Array(a));
        env.set(f.params[1].var, Value::Int(8));
        let bounds = LoopBounds {
            start: 0,
            end: 8,
            step: 1,
        };
        let iters: Vec<u64> = (0..8).collect();
        let stats = SimtExec::new(&p, &cfg)
            .run_warp(&l, &bounds, &iters, &env, 0, &mut dev)
            .unwrap();
        assert_eq!(stats.divergent_branches, 0);
        assert_eq!(stats.branches, 1);
    }

    #[test]
    fn inner_loop_with_unbalanced_trips_diverges() {
        // lane i runs i inner iterations: triangular work
        let src = "static void f(int[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) {
                int s = 0;
                for (int j = 0; j < i; j++) { s += j; }
                a[i] = s;
            }
        }";
        let p = compile_source(src).unwrap();
        let (_, f) = p.function_by_name("f").unwrap();
        let l = f
            .all_loops()
            .into_iter()
            .find(|l| l.is_annotated())
            .unwrap()
            .clone();
        let mut heap = Heap::new();
        let a = heap.alloc_ints(&[0; 8]);
        let cfg = DeviceConfig::default();
        let mut dev = DeviceMemory::new();
        dev.copy_in(&heap, a, 0, 8, &cfg).unwrap();
        let mut env = Env::with_slots(f.num_vars);
        env.set(f.params[0].var, Value::Array(a));
        env.set(f.params[1].var, Value::Int(8));
        let bounds = LoopBounds {
            start: 0,
            end: 8,
            step: 1,
        };
        let iters: Vec<u64> = (0..8).collect();
        let stats = SimtExec::new(&p, &cfg)
            .run_warp(&l, &bounds, &iters, &env, 0, &mut dev)
            .unwrap();
        assert!(stats.divergent_branches > 0);
        // a[i] = sum(0..i)
        assert_eq!(dev.array(a).unwrap().get(7), Value::Int(21));
        assert_eq!(dev.array(a).unwrap().get(0), Value::Int(0));
    }

    #[test]
    fn function_calls_inline_simt_style() {
        let src = "
            static int dbl(int x) { if (x > 2) { return x * 2; } return x; }
            static void f(int[] a, int n) {
                /* acc parallel */
                for (int i = 0; i < n; i++) { a[i] = dbl(i); }
            }";
        let p = compile_source(src).unwrap();
        let (_, f) = p.function_by_name("f").unwrap();
        let l = f.all_loops()[0].clone();
        let mut heap = Heap::new();
        let a = heap.alloc_ints(&[0; 8]);
        let cfg = DeviceConfig::default();
        let mut dev = DeviceMemory::new();
        dev.copy_in(&heap, a, 0, 8, &cfg).unwrap();
        let mut env = Env::with_slots(f.num_vars);
        env.set(f.params[0].var, Value::Array(a));
        env.set(f.params[1].var, Value::Int(8));
        let bounds = LoopBounds {
            start: 0,
            end: 8,
            step: 1,
        };
        let iters: Vec<u64> = (0..8).collect();
        SimtExec::new(&p, &cfg)
            .run_warp(&l, &bounds, &iters, &env, 0, &mut dev)
            .unwrap();
        let vals: Vec<i64> = (0..8)
            .map(|i| dev.array(a).unwrap().get(i).as_i64().unwrap())
            .collect();
        assert_eq!(vals, vec![0, 1, 2, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn out_of_bounds_reports_iteration() {
        let src = "static void f(int[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) { a[i + 100] = 1; }
        }";
        let p = compile_source(src).unwrap();
        let (_, f) = p.function_by_name("f").unwrap();
        let l = f.all_loops()[0].clone();
        let mut heap = Heap::new();
        let a = heap.alloc_ints(&[0; 8]);
        let cfg = DeviceConfig::default();
        let mut dev = DeviceMemory::new();
        dev.copy_in(&heap, a, 0, 8, &cfg).unwrap();
        let mut env = Env::with_slots(f.num_vars);
        env.set(f.params[0].var, Value::Array(a));
        env.set(f.params[1].var, Value::Int(8));
        let bounds = LoopBounds {
            start: 0,
            end: 8,
            step: 1,
        };
        let iters: Vec<u64> = (0..8).collect();
        let err = SimtExec::new(&p, &cfg)
            .run_warp(&l, &bounds, &iters, &env, 0, &mut dev)
            .unwrap_err();
        assert!(matches!(err, SimtError::Lane { iter: 0, .. }));
    }

    #[test]
    fn strided_access_touches_more_segments_than_unit_stride() {
        let mk = |stride: i32| {
            let src = format!(
                "static void f(double[] a, int n) {{
                    /* acc parallel */
                    for (int i = 0; i < n; i++) {{ a[i * {stride}] = 1.0; }}
                }}"
            );
            let p = compile_source(&src).unwrap();
            let (_, f) = p.function_by_name("f").unwrap();
            let l = f.all_loops()[0].clone();
            let mut heap = Heap::new();
            let a = heap.alloc_doubles(&[0.0; 2048]);
            let cfg = DeviceConfig::default();
            let mut dev = DeviceMemory::new();
            dev.copy_in(&heap, a, 0, 2048, &cfg).unwrap();
            let mut env = Env::with_slots(f.num_vars);
            env.set(f.params[0].var, Value::Array(a));
            env.set(f.params[1].var, Value::Int(32));
            let bounds = LoopBounds {
                start: 0,
                end: 32,
                step: 1,
            };
            let iters: Vec<u64> = (0..32).collect();
            SimtExec::new(&p, &cfg)
                .run_warp(&l, &bounds, &iters, &env, 0, &mut dev)
                .unwrap()
                .mem_segments
        };
        let unit = mk(1);
        let strided = mk(32);
        assert!(strided > 4 * unit, "unit={unit} strided={strided}");
    }
}

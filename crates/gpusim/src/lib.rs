//! # japonica-gpusim
//!
//! A behavioural SIMT GPU simulator standing in for the paper's Nvidia
//! Fermi M2050 + CUDA 3.2 stack. It executes Japonica kernel IR with the
//! properties the paper's results hinge on:
//!
//! * **massive parallelism** — a grid of threads, one loop iteration per
//!   thread, grouped into 32-lane warps scheduled over 14 SMs;
//! * **lock-step SIMD execution** — all active lanes of a warp issue the
//!   same instruction together; divergent branches serialize both paths
//!   with complementary active masks (and are counted, because divergence
//!   is why BFS-like irregular kernels underperform);
//! * **memory coalescing** — each warp-level load/store is charged by the
//!   number of distinct memory segments the active lanes touch, so
//!   strided/irregular access patterns cost more than unit-stride ones;
//! * **explicit host↔device transfers** — a PCIe model with latency and
//!   bandwidth, plus asynchronous streams for overlap (used by the task
//!   sharing scheme to hide transfer latency, paper §V-A);
//! * **pluggable lane memory** — the [`LaneMemory`] trait lets GPU-TLS
//!   buffer speculative stores and lets the profiler trace every access
//!   without touching the interpreter.

pub mod config;
pub mod kernel;
pub mod memory;
pub mod native;
pub mod simt;
pub mod stats;
pub mod vm;

pub use config::{DeviceConfig, DevicePartition, SimConfig};
pub use kernel::{
    launch_loop, launch_loop_guarded, launch_loop_guarded_with, launch_loop_par,
    launch_loop_par_with, KernelReport,
};
pub use memory::{AccessCtx, DeviceMemory, LaneMemory, ParallelLaneMemory, ShadowView, Transfer};
pub use native::{compile_native_warp, NativeSimtVm, NativeWarpKernel};
pub use simt::{SimtError, SimtExec};
pub use stats::{GpuStats, WarpStats};
pub use vm::SimtVm;

//! Kernel launch: grid formation, warp scheduling over SMs, and timing.

use crate::config::DeviceConfig;
use crate::memory::LaneMemory;
use crate::simt::{SimtError, SimtExec};
use crate::stats::WarpStats;
use japonica_faults::{FaultOrigin, FaultPlan};
use japonica_ir::{Env, ForLoop, LoopBounds, Program};
use std::ops::Range;

/// Result of one kernel launch.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Simulated seconds of device compute (including launch overhead,
    /// excluding transfers).
    pub time_s: f64,
    /// Device cycles on the critical (busiest) SM.
    pub critical_cycles: f64,
    /// Warps launched.
    pub warps: u32,
    /// Iterations executed.
    pub iterations: u64,
    /// Aggregated statistics over all warps.
    pub stats: WarpStats,
}

impl KernelReport {
    /// An empty launch (zero iterations): costs nothing, reports zeros.
    pub fn empty() -> KernelReport {
        KernelReport {
            time_s: 0.0,
            critical_cycles: 0.0,
            warps: 0,
            iterations: 0,
            stats: WarpStats::new(),
        }
    }

    /// Merge a subsequent launch's report (kernels run back-to-back).
    pub fn chain(&mut self, other: &KernelReport) {
        self.time_s += other.time_s;
        self.critical_cycles += other.critical_cycles;
        self.warps += other.warps;
        self.iterations += other.iterations;
        self.stats.merge(&other.stats);
    }
}

/// Launch the body of `loop_` over iterations `iters` (0-based indices into
/// `bounds`), one thread per iteration, against lane memory `mem`.
///
/// Warps are filled in iteration order and scheduled round-robin over the
/// SMs; each SM runs its warps back-to-back, so kernel time is the busiest
/// SM's cycle count plus the fixed launch overhead.
pub fn launch_loop<M: LaneMemory>(
    program: &Program,
    cfg: &DeviceConfig,
    loop_: &ForLoop,
    bounds: &LoopBounds,
    iters: Range<u64>,
    base_env: &Env,
    mem: &mut M,
) -> Result<KernelReport, SimtError> {
    launch_loop_guarded(
        program,
        cfg,
        loop_,
        bounds,
        iters,
        base_env,
        mem,
        None,
        None,
    )
}

/// [`launch_loop`] with an optional fault-injection plan and watchdog.
///
/// The plan is consulted at the launch point (driver-level launch failure),
/// before each warp issues (transient SIMT faults at a specific
/// (sub-loop, warp) coordinate), and after the kernel's critical cycles are
/// known (deadline overruns). The watchdog deadline is the cost model's own
/// estimate — the computed critical cycles — times `watchdog_slack`; a plan
/// that injects stall cycles past the deadline gets the launch killed as a
/// [`SimtError::Fault`]. With no plan the function is byte-for-byte
/// `launch_loop`: no stalls, identical timing.
#[allow(clippy::too_many_arguments)] // mirrors launch_loop plus the fault hooks
pub fn launch_loop_guarded<M: LaneMemory>(
    program: &Program,
    cfg: &DeviceConfig,
    loop_: &ForLoop,
    bounds: &LoopBounds,
    iters: Range<u64>,
    base_env: &Env,
    mem: &mut M,
    faults: Option<&FaultPlan>,
    watchdog_slack: Option<f64>,
) -> Result<KernelReport, SimtError> {
    if iters.is_empty() {
        return Ok(KernelReport::empty());
    }
    let origin = FaultOrigin {
        loop_id: Some(loop_.id),
        subloop: Some(iters.start),
        ..FaultOrigin::default()
    };
    if let Some(plan) = faults {
        if let Some(f) = plan.on_kernel_launch(origin) {
            return Err(SimtError::Fault(f));
        }
    }
    let exec = SimtExec::new(program, cfg);
    let mut sm_cycles = vec![0.0f64; cfg.sm_count as usize];
    let mut agg = WarpStats::new();
    let mut warp_id = 0u32;
    let total = iters.end - iters.start;
    let mut k = iters.start;
    while k < iters.end {
        let hi = (k + cfg.warp_size as u64).min(iters.end);
        if let Some(plan) = faults {
            if let Some(f) = plan.on_warp(origin.with_warp(warp_id as u64)) {
                return Err(SimtError::Fault(f));
            }
        }
        let warp_iters: Vec<u64> = (k..hi).collect();
        let stats = exec.run_warp(loop_, bounds, &warp_iters, base_env, warp_id, mem)?;
        // Resident warps overlap memory latency with compute.
        let occupied = stats.issue_cycles + stats.mem_cycles / cfg.mem_concurrency.max(1.0);
        sm_cycles[(warp_id % cfg.sm_count) as usize] += occupied;
        agg.merge(&stats);
        warp_id += 1;
        k = hi;
    }
    let mut critical = sm_cycles.iter().copied().fold(0.0, f64::max);
    if let Some(plan) = faults {
        if let Some((stall, fault)) = plan.stall_cycles(origin) {
            if let Some(slack) = watchdog_slack {
                // Deadline = the cost model's own estimate × slack.
                if critical + stall > critical * slack.max(1.0) + 1.0 {
                    return Err(SimtError::Fault(fault));
                }
            }
            // Stall below the deadline (or no watchdog): the device limps
            // through — the burned cycles show up in the timing.
            critical += stall;
        }
    }
    Ok(KernelReport {
        time_s: cfg.cycles_to_seconds(critical) + cfg.kernel_launch_us * 1e-6,
        critical_cycles: critical,
        warps: warp_id,
        iterations: total,
        stats: agg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DeviceMemory;
    use japonica_frontend::compile_source;
    use japonica_ir::{Heap, Value};

    fn run_kernel(n: i32) -> (KernelReport, DeviceMemory, japonica_ir::ArrayId, Heap) {
        let src = "static void scale(double[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0 + 1.0; }
        }";
        let p = compile_source(src).unwrap();
        let (_, f) = p.function_by_name("scale").unwrap();
        let l = f.all_loops()[0].clone();
        let mut heap = Heap::new();
        let a = heap.alloc_doubles(&vec![1.0; n as usize]);
        let cfg = DeviceConfig::default();
        let mut dev = DeviceMemory::new();
        dev.copy_in(&heap, a, 0, n as usize, &cfg).unwrap();
        let mut env = Env::with_slots(f.num_vars);
        env.set(f.params[0].var, Value::Array(a));
        env.set(f.params[1].var, Value::Int(n));
        let bounds = LoopBounds {
            start: 0,
            end: n as i64,
            step: 1,
        };
        let report =
            launch_loop(&p, &cfg, &l, &bounds, 0..n as u64, &env, &mut dev).unwrap();
        (report, dev, a, heap)
    }

    #[test]
    fn kernel_computes_correct_results() {
        let (report, dev, a, _) = run_kernel(1000);
        assert_eq!(report.iterations, 1000);
        assert_eq!(report.warps, 32); // ceil(1000/32)
        for i in 0..1000 {
            assert_eq!(dev.array(a).unwrap().get(i), Value::Double(3.0));
        }
    }

    #[test]
    fn empty_range_costs_nothing() {
        let src = "static void f(int[] a, int n) {
            /* acc parallel */ for (int i = 0; i < n; i++) { a[i] = 1; }
        }";
        let p = compile_source(src).unwrap();
        let (_, f) = p.function_by_name("f").unwrap();
        let l = f.all_loops()[0].clone();
        let cfg = DeviceConfig::default();
        let mut dev = DeviceMemory::new();
        let env = Env::with_slots(f.num_vars);
        let bounds = LoopBounds { start: 0, end: 0, step: 1 };
        let r = launch_loop(&p, &cfg, &l, &bounds, 0..0, &env, &mut dev).unwrap();
        assert_eq!(r.time_s, 0.0);
        assert_eq!(r.warps, 0);
    }

    #[test]
    fn more_iterations_take_longer() {
        let (small, _, _, _) = run_kernel(448);
        let (big, _, _, _) = run_kernel(448 * 8);
        assert!(big.time_s > small.time_s);
        // 8x work over the same SMs: roughly 8x critical cycles
        let ratio = big.critical_cycles / small.critical_cycles;
        assert!(ratio > 6.0 && ratio < 10.0, "ratio {ratio}");
    }

    #[test]
    fn parallelism_amortizes_over_sms() {
        // 14 warps (one per SM) should cost about the same critical cycles
        // as 1 warp.
        let (one, _, _, _) = run_kernel(32);
        let (fourteen, _, _, _) = run_kernel(32 * 14);
        let ratio = fourteen.critical_cycles / one.critical_cycles;
        assert!(ratio < 1.7, "ratio {ratio}");
    }

    #[test]
    fn launch_overhead_is_included() {
        let (r, _, _, _) = run_kernel(32);
        let cfg = DeviceConfig::default();
        assert!(r.time_s >= cfg.kernel_launch_us * 1e-6);
    }

    #[test]
    fn fault_injection_hits_launch_warp_and_deadline() {
        use japonica_faults::{FaultKind, FaultPlan, FaultRule};
        let src = "static void scale(double[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0 + 1.0; }
        }";
        let p = compile_source(src).unwrap();
        let (_, f) = p.function_by_name("scale").unwrap();
        let l = f.all_loops()[0].clone();
        let cfg = DeviceConfig::default();
        let n = 256usize;
        let mut heap = Heap::new();
        let a = heap.alloc_doubles(&vec![1.0; n]);
        let mut env = Env::with_slots(f.num_vars);
        env.set(f.params[0].var, Value::Array(a));
        env.set(f.params[1].var, Value::Int(n as i32));
        let bounds = LoopBounds { start: 0, end: n as i64, step: 1 };
        let fresh = |heap: &Heap| {
            let mut dev = DeviceMemory::new();
            dev.copy_in(heap, a, 0, n, &cfg).unwrap();
            dev
        };

        // No plan: guarded is identical to the plain launch.
        let plain =
            launch_loop(&p, &cfg, &l, &bounds, 0..n as u64, &env, &mut fresh(&heap)).unwrap();
        let guarded = launch_loop_guarded(
            &p, &cfg, &l, &bounds, 0..n as u64, &env, &mut fresh(&heap), None, Some(4.0),
        )
        .unwrap();
        assert_eq!(plain.time_s, guarded.time_s);
        assert_eq!(plain.critical_cycles, guarded.critical_cycles);

        // Launch failure.
        let plan = FaultPlan::new(1, vec![FaultRule::persistent(FaultKind::KernelLaunch)]);
        let err = launch_loop_guarded(
            &p, &cfg, &l, &bounds, 0..n as u64, &env, &mut fresh(&heap), Some(&plan), None,
        );
        assert!(
            matches!(err, Err(SimtError::Fault(f)) if f.kind == FaultKind::KernelLaunch),
            "{err:?}"
        );

        // SIMT fault gated on warp 3 carries its coordinates.
        let plan = FaultPlan::new(1, vec![FaultRule::persistent(FaultKind::Simt).on_warp(3)]);
        let err = launch_loop_guarded(
            &p, &cfg, &l, &bounds, 0..n as u64, &env, &mut fresh(&heap), Some(&plan), None,
        );
        match err {
            Err(SimtError::Fault(f)) => {
                assert_eq!(f.kind, FaultKind::Simt);
                assert_eq!(f.origin.warp, Some(3));
                assert_eq!(f.origin.subloop, Some(0));
                assert_eq!(f.origin.loop_id, Some(l.id));
            }
            other => panic!("expected SIMT fault, got {other:?}"),
        }

        // A stall past the watchdog deadline kills the kernel...
        let big_stall = plain.critical_cycles * 100.0 + 1e6;
        let plan = FaultPlan::new(
            1,
            vec![FaultRule::persistent(FaultKind::DeadlineOverrun).stalling(big_stall)],
        );
        let err = launch_loop_guarded(
            &p, &cfg, &l, &bounds, 0..n as u64, &env, &mut fresh(&heap), Some(&plan), Some(4.0),
        );
        assert!(
            matches!(err, Err(SimtError::Fault(f)) if f.kind == FaultKind::DeadlineOverrun),
            "{err:?}"
        );
        // ...while without a watchdog the device limps through, slower.
        let plan = FaultPlan::new(
            1,
            vec![FaultRule::persistent(FaultKind::DeadlineOverrun).stalling(big_stall)],
        );
        let slow = launch_loop_guarded(
            &p, &cfg, &l, &bounds, 0..n as u64, &env, &mut fresh(&heap), Some(&plan), None,
        )
        .unwrap();
        assert!(slow.time_s > plain.time_s);
    }

    #[test]
    fn chain_merges_reports() {
        let (mut a, _, _, _) = run_kernel(64);
        let (b, _, _, _) = run_kernel(64);
        let warps = a.warps;
        a.chain(&b);
        assert_eq!(a.warps, warps * 2);
        assert!(a.time_s > b.time_s);
    }
}

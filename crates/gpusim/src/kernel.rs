//! Kernel launch: grid formation, warp scheduling over SMs, and timing.

use crate::config::DeviceConfig;
use crate::memory::{LaneMemory, ParallelLaneMemory};
use crate::native::{compile_native_warp, NativeSimtVm, NativeWarpKernel};
use crate::simt::{SimtError, SimtExec};
use crate::stats::WarpStats;
use crate::vm::SimtVm;
use japonica_faults::{FaultOrigin, FaultPlan};
use japonica_ir::{
    compile_kernel, CompiledKernel, Env, ExecEngine, ForLoop, KernelCache, LoopBounds, Program,
};
use std::ops::Range;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// The executor a launch resolved to. The walker is used when the config
/// asks for it, when the warp width exceeds the VMs' 32-lane mask, or when
/// the loop is not bytecode-compilable; the native tier additionally
/// requires `ExecEngine::Native` plus a hot-enough cache entry (or no
/// cache at all, in which case promotion is immediate — a cacheless launch
/// has no counter to consult and the compile can't be amortized anyway).
enum Resolved {
    Walker,
    Bytecode(Arc<CompiledKernel>),
    Native(Arc<NativeWarpKernel>),
}

fn resolve_kernel(
    program: &Program,
    cfg: &DeviceConfig,
    loop_: &ForLoop,
    kernels: Option<&KernelCache>,
) -> Resolved {
    if cfg.sim.engine == ExecEngine::TreeWalker || cfg.warp_size > 32 {
        return Resolved::Walker;
    }
    let native = cfg.sim.engine == ExecEngine::Native;
    let compiled = match kernels {
        Some(cache) => {
            let k = cache.get_or_compile(program, loop_);
            if native {
                if let Some(nk) =
                    cache.native_tier::<NativeWarpKernel, _>(loop_.id.0, compile_native_warp)
                {
                    return Resolved::Native(nk);
                }
            }
            k
        }
        None => {
            let k = compile_kernel(program, loop_).ok().map(Arc::new);
            if native {
                if let Some(k) = &k {
                    return Resolved::Native(Arc::new(compile_native_warp(k)));
                }
            }
            k
        }
    };
    match compiled {
        Some(k) => Resolved::Bytecode(k),
        None => Resolved::Walker,
    }
}

/// Result of one kernel launch.
///
/// `PartialEq` is bitwise on the f64 fields, for the determinism tests.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Simulated seconds of device compute (including launch overhead,
    /// excluding transfers).
    pub time_s: f64,
    /// Device cycles on the critical (busiest) SM.
    pub critical_cycles: f64,
    /// Warps launched.
    pub warps: u32,
    /// Iterations executed.
    pub iterations: u64,
    /// Aggregated statistics over all warps.
    pub stats: WarpStats,
}

impl KernelReport {
    /// An empty launch (zero iterations): costs nothing, reports zeros.
    pub fn empty() -> KernelReport {
        KernelReport {
            time_s: 0.0,
            critical_cycles: 0.0,
            warps: 0,
            iterations: 0,
            stats: WarpStats::new(),
        }
    }

    /// Merge a subsequent launch's report (kernels run back-to-back).
    pub fn chain(&mut self, other: &KernelReport) {
        self.time_s += other.time_s;
        self.critical_cycles += other.critical_cycles;
        self.warps += other.warps;
        self.iterations += other.iterations;
        self.stats.merge(&other.stats);
    }
}

/// Launch the body of `loop_` over iterations `iters` (0-based indices into
/// `bounds`), one thread per iteration, against lane memory `mem`.
///
/// Warps are filled in iteration order and scheduled round-robin over the
/// SMs; each SM runs its warps back-to-back, so kernel time is the busiest
/// SM's cycle count plus the fixed launch overhead.
pub fn launch_loop<M: LaneMemory>(
    program: &Program,
    cfg: &DeviceConfig,
    loop_: &ForLoop,
    bounds: &LoopBounds,
    iters: Range<u64>,
    base_env: &Env,
    mem: &mut M,
) -> Result<KernelReport, SimtError> {
    launch_loop_guarded(
        program, cfg, loop_, bounds, iters, base_env, mem, None, None,
    )
}

/// [`launch_loop`] with an optional fault-injection plan and watchdog.
///
/// The plan is consulted at the launch point (driver-level launch failure),
/// before each warp issues (transient SIMT faults at a specific
/// (sub-loop, warp) coordinate), and after the kernel's critical cycles are
/// known (deadline overruns). The watchdog deadline is the cost model's own
/// estimate — the computed critical cycles — times `watchdog_slack`; a plan
/// that injects stall cycles past the deadline gets the launch killed as a
/// [`SimtError::Fault`]. With no plan the function is byte-for-byte
/// `launch_loop`: no stalls, identical timing.
#[allow(clippy::too_many_arguments)] // mirrors launch_loop plus the fault hooks
pub fn launch_loop_guarded<M: LaneMemory>(
    program: &Program,
    cfg: &DeviceConfig,
    loop_: &ForLoop,
    bounds: &LoopBounds,
    iters: Range<u64>,
    base_env: &Env,
    mem: &mut M,
    faults: Option<&FaultPlan>,
    watchdog_slack: Option<f64>,
) -> Result<KernelReport, SimtError> {
    launch_loop_guarded_with(
        program,
        cfg,
        loop_,
        bounds,
        iters,
        base_env,
        mem,
        faults,
        watchdog_slack,
        None,
    )
}

/// [`launch_loop_guarded`] with an optional shared [`KernelCache`]: the
/// scheduler compiles each loop to bytecode once and reuses it across
/// sub-loop launches, TLS re-executions and fault-ladder retries. Without
/// a cache the loop is compiled per launch (still bytecode, just not
/// amortized).
#[allow(clippy::too_many_arguments)] // mirrors launch_loop_guarded plus the cache
pub fn launch_loop_guarded_with<M: LaneMemory>(
    program: &Program,
    cfg: &DeviceConfig,
    loop_: &ForLoop,
    bounds: &LoopBounds,
    iters: Range<u64>,
    base_env: &Env,
    mem: &mut M,
    faults: Option<&FaultPlan>,
    watchdog_slack: Option<f64>,
    kernels: Option<&KernelCache>,
) -> Result<KernelReport, SimtError> {
    if iters.is_empty() {
        return Ok(KernelReport::empty());
    }
    let compiled = resolve_kernel(program, cfg, loop_, kernels);
    let mut vm = SimtVm::new();
    let mut nvm = NativeSimtVm::new();
    let origin = FaultOrigin {
        loop_id: Some(loop_.id),
        subloop: Some(iters.start),
        ..FaultOrigin::default()
    };
    if let Some(plan) = faults {
        if let Some(f) = plan.on_kernel_launch(origin) {
            return Err(SimtError::Fault(f));
        }
    }
    let exec = SimtExec::new(program, cfg);
    let mut sm_cycles = vec![0.0f64; cfg.effective_sms() as usize];
    let mut agg = WarpStats::new();
    let mut warp_id = 0u32;
    let total = iters.end - iters.start;
    let mut k = iters.start;
    while k < iters.end {
        let hi = (k + cfg.warp_size as u64).min(iters.end);
        if let Some(plan) = faults {
            if let Some(f) = plan.on_warp(origin.with_warp(warp_id as u64)) {
                return Err(SimtError::Fault(f));
            }
        }
        let warp_iters: Vec<u64> = (k..hi).collect();
        let stats = match &compiled {
            Resolved::Bytecode(kc) => vm.run_warp(
                kc,
                loop_.var,
                bounds,
                &warp_iters,
                base_env,
                warp_id,
                mem,
                cfg,
            )?,
            Resolved::Native(nk) => nvm.run_warp(
                nk,
                loop_.var,
                bounds,
                &warp_iters,
                base_env,
                warp_id,
                mem,
                cfg,
            )?,
            Resolved::Walker => {
                exec.run_warp(loop_, bounds, &warp_iters, base_env, warp_id, mem)?
            }
        };
        // Resident warps overlap memory latency with compute.
        let occupied = stats.issue_cycles + stats.mem_cycles / cfg.mem_concurrency.max(1.0);
        sm_cycles[(warp_id % cfg.effective_sms()) as usize] += occupied;
        agg.merge(&stats);
        warp_id += 1;
        k = hi;
    }
    let mut critical = sm_cycles.iter().copied().fold(0.0, f64::max);
    if let Some(plan) = faults {
        if let Some((stall, fault)) = plan.stall_cycles(origin) {
            if let Some(slack) = watchdog_slack {
                // Deadline = the cost model's own estimate × slack.
                if critical + stall > critical * slack.max(1.0) + 1.0 {
                    return Err(SimtError::Fault(fault));
                }
            }
            // Stall below the deadline (or no watchdog): the device limps
            // through — the burned cycles show up in the timing.
            critical += stall;
        }
    }
    Ok(KernelReport {
        time_s: cfg.cycles_to_seconds(critical) + cfg.kernel_launch_us * 1e-6,
        critical_cycles: critical,
        warps: warp_id,
        iterations: total,
        stats: agg,
    })
}

/// Per-warp worker output: warp id plus either the warp's stats and
/// harvested memory delta, or the error that stopped it.
type WarpOutcome<M> = Vec<(
    u32,
    Result<(WarpStats, <M as ParallelLaneMemory>::Delta), SimtError>,
)>;

/// [`launch_loop_guarded`] with host-side parallelism: warps are executed
/// by up to `cfg.sim.host_threads` scoped worker threads, each against its
/// own forked [`ParallelLaneMemory`] view, and the per-warp results are
/// merged by the coordinator in **global warp order** — the same order the
/// sequential loop uses — so cycle counts (f64 accumulation order
/// included), aggregated stats, TLS metadata, and write-after-write
/// resolution are bit-identical to [`launch_loop_guarded`].
///
/// Fault determinism: the plan's per-warp hooks are pre-scanned on the
/// calling thread in warp order *before* any worker starts, because plan
/// state advances with each consultation. On a fault at warp `w`, exactly
/// the warps before `w` execute and commit — the state the sequential path
/// leaves behind.
///
/// With `host_threads <= 1` (the default) this delegates verbatim to the
/// sequential path. Semantics caveat, parallel mode only: a warp cannot
/// observe another warp's stores from the *same* launch (views read the
/// pre-launch state). Every launch the runtime issues is either a proven
/// DOALL loop or wrapped in speculative buffering — both already have that
/// property — so the difference is observable only when a loop violates its
/// `parallel` annotation on a plain device-memory launch.
#[allow(clippy::too_many_arguments)] // mirrors launch_loop_guarded
pub fn launch_loop_par<M: ParallelLaneMemory + Sync>(
    program: &Program,
    cfg: &DeviceConfig,
    loop_: &ForLoop,
    bounds: &LoopBounds,
    iters: Range<u64>,
    base_env: &Env,
    mem: &mut M,
    faults: Option<&FaultPlan>,
    watchdog_slack: Option<f64>,
) -> Result<KernelReport, SimtError> {
    launch_loop_par_with(
        program,
        cfg,
        loop_,
        bounds,
        iters,
        base_env,
        mem,
        faults,
        watchdog_slack,
        None,
    )
}

/// [`launch_loop_par`] with an optional shared [`KernelCache`]; see
/// [`launch_loop_guarded_with`]. Each worker thread runs its own
/// [`SimtVm`] over the shared compiled kernel.
#[allow(clippy::too_many_arguments)] // mirrors launch_loop_par plus the cache
pub fn launch_loop_par_with<M: ParallelLaneMemory + Sync>(
    program: &Program,
    cfg: &DeviceConfig,
    loop_: &ForLoop,
    bounds: &LoopBounds,
    iters: Range<u64>,
    base_env: &Env,
    mem: &mut M,
    faults: Option<&FaultPlan>,
    watchdog_slack: Option<f64>,
    kernels: Option<&KernelCache>,
) -> Result<KernelReport, SimtError> {
    if iters.is_empty() {
        return Ok(KernelReport::empty());
    }
    let total = iters.end - iters.start;
    let n_warps = total.div_ceil(cfg.warp_size as u64) as u32;
    if cfg.sim.host_threads <= 1 || n_warps <= 1 {
        return launch_loop_guarded_with(
            program,
            cfg,
            loop_,
            bounds,
            iters,
            base_env,
            mem,
            faults,
            watchdog_slack,
            kernels,
        );
    }
    let compiled = resolve_kernel(program, cfg, loop_, kernels);
    let origin = FaultOrigin {
        loop_id: Some(loop_.id),
        subloop: Some(iters.start),
        ..FaultOrigin::default()
    };
    if let Some(plan) = faults {
        if let Some(f) = plan.on_kernel_launch(origin) {
            return Err(SimtError::Fault(f));
        }
    }
    // Pre-scan the per-warp fault hooks in warp order on this thread: the
    // plan is deterministic purely by consultation order, so this replays
    // the sequential call sequence exactly (stopping at the first hit, as
    // the sequential loop does).
    let mut pending_fault = None;
    let mut run_warps = n_warps;
    if let Some(plan) = faults {
        for w in 0..n_warps {
            if let Some(f) = plan.on_warp(origin.with_warp(w as u64)) {
                pending_fault = Some(f);
                run_warps = w;
                break;
            }
        }
    }
    let exec = SimtExec::new(program, cfg);
    let next = AtomicU32::new(0);
    let mem_ref: &M = &*mem;
    let workers = cfg.sim.host_threads.min(run_warps.max(1) as usize);
    let mut results: WarpOutcome<M> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out: WarpOutcome<M> = Vec::new();
                    let mut vm = SimtVm::new();
                    let mut nvm = NativeSimtVm::new();
                    loop {
                        let w = next.fetch_add(1, Ordering::Relaxed);
                        if w >= run_warps {
                            break;
                        }
                        let lo = iters.start + w as u64 * cfg.warp_size as u64;
                        let hi = (lo + cfg.warp_size as u64).min(iters.end);
                        let warp_iters: Vec<u64> = (lo..hi).collect();
                        let mut view = mem_ref.fork();
                        let r = match &compiled {
                            Resolved::Bytecode(kc) => vm.run_warp(
                                kc,
                                loop_.var,
                                bounds,
                                &warp_iters,
                                base_env,
                                w,
                                &mut view,
                                cfg,
                            ),
                            Resolved::Native(nk) => nvm.run_warp(
                                nk,
                                loop_.var,
                                bounds,
                                &warp_iters,
                                base_env,
                                w,
                                &mut view,
                                cfg,
                            ),
                            Resolved::Walker => {
                                exec.run_warp(loop_, bounds, &warp_iters, base_env, w, &mut view)
                            }
                        }
                        .map(|stats| (stats, M::harvest(view)));
                        let failed = r.is_err();
                        out.push((w, r));
                        if failed {
                            break;
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("simulator worker thread panicked"))
            .collect()
    });
    results.sort_by_key(|(w, _)| *w);
    // The lowest erroring warp wins, as in sequential execution; warps
    // before it commit, everything at or after it is discarded.
    let commit_limit = results
        .iter()
        .find(|(_, r)| r.is_err())
        .map(|(w, _)| *w)
        .unwrap_or(run_warps);
    let mut sm_cycles = vec![0.0f64; cfg.effective_sms() as usize];
    let mut agg = WarpStats::new();
    let mut first_err = None;
    for (w, r) in results {
        match r {
            Ok((stats, delta)) => {
                if w >= commit_limit {
                    continue;
                }
                let occupied = stats.issue_cycles + stats.mem_cycles / cfg.mem_concurrency.max(1.0);
                sm_cycles[(w % cfg.effective_sms()) as usize] += occupied;
                agg.merge(&stats);
                mem.absorb(delta).map_err(SimtError::Mem)?;
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    if let Some(f) = pending_fault {
        return Err(SimtError::Fault(f));
    }
    let mut critical = sm_cycles.iter().copied().fold(0.0, f64::max);
    if let Some(plan) = faults {
        if let Some((stall, fault)) = plan.stall_cycles(origin) {
            if let Some(slack) = watchdog_slack {
                if critical + stall > critical * slack.max(1.0) + 1.0 {
                    return Err(SimtError::Fault(fault));
                }
            }
            critical += stall;
        }
    }
    Ok(KernelReport {
        time_s: cfg.cycles_to_seconds(critical) + cfg.kernel_launch_us * 1e-6,
        critical_cycles: critical,
        warps: n_warps,
        iterations: total,
        stats: agg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DeviceMemory;
    use japonica_frontend::compile_source;
    use japonica_ir::{Heap, Value};

    fn run_kernel(n: i32) -> (KernelReport, DeviceMemory, japonica_ir::ArrayId, Heap) {
        let src = "static void scale(double[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0 + 1.0; }
        }";
        let p = compile_source(src).unwrap();
        let (_, f) = p.function_by_name("scale").unwrap();
        let l = f.all_loops()[0].clone();
        let mut heap = Heap::new();
        let a = heap.alloc_doubles(&vec![1.0; n as usize]);
        let cfg = DeviceConfig::default();
        let mut dev = DeviceMemory::new();
        dev.copy_in(&heap, a, 0, n as usize, &cfg).unwrap();
        let mut env = Env::with_slots(f.num_vars);
        env.set(f.params[0].var, Value::Array(a));
        env.set(f.params[1].var, Value::Int(n));
        let bounds = LoopBounds {
            start: 0,
            end: n as i64,
            step: 1,
        };
        let report = launch_loop(&p, &cfg, &l, &bounds, 0..n as u64, &env, &mut dev).unwrap();
        (report, dev, a, heap)
    }

    #[test]
    fn kernel_computes_correct_results() {
        let (report, dev, a, _) = run_kernel(1000);
        assert_eq!(report.iterations, 1000);
        assert_eq!(report.warps, 32); // ceil(1000/32)
        for i in 0..1000 {
            assert_eq!(dev.array(a).unwrap().get(i), Value::Double(3.0));
        }
    }

    #[test]
    fn empty_range_costs_nothing() {
        let src = "static void f(int[] a, int n) {
            /* acc parallel */ for (int i = 0; i < n; i++) { a[i] = 1; }
        }";
        let p = compile_source(src).unwrap();
        let (_, f) = p.function_by_name("f").unwrap();
        let l = f.all_loops()[0].clone();
        let cfg = DeviceConfig::default();
        let mut dev = DeviceMemory::new();
        let env = Env::with_slots(f.num_vars);
        let bounds = LoopBounds {
            start: 0,
            end: 0,
            step: 1,
        };
        let r = launch_loop(&p, &cfg, &l, &bounds, 0..0, &env, &mut dev).unwrap();
        assert_eq!(r.time_s, 0.0);
        assert_eq!(r.warps, 0);
    }

    #[test]
    fn more_iterations_take_longer() {
        let (small, _, _, _) = run_kernel(448);
        let (big, _, _, _) = run_kernel(448 * 8);
        assert!(big.time_s > small.time_s);
        // 8x work over the same SMs: roughly 8x critical cycles
        let ratio = big.critical_cycles / small.critical_cycles;
        assert!(ratio > 6.0 && ratio < 10.0, "ratio {ratio}");
    }

    #[test]
    fn parallelism_amortizes_over_sms() {
        // 14 warps (one per SM) should cost about the same critical cycles
        // as 1 warp.
        let (one, _, _, _) = run_kernel(32);
        let (fourteen, _, _, _) = run_kernel(32 * 14);
        let ratio = fourteen.critical_cycles / one.critical_cycles;
        assert!(ratio < 1.7, "ratio {ratio}");
    }

    #[test]
    fn launch_overhead_is_included() {
        let (r, _, _, _) = run_kernel(32);
        let cfg = DeviceConfig::default();
        assert!(r.time_s >= cfg.kernel_launch_us * 1e-6);
    }

    #[test]
    fn fault_injection_hits_launch_warp_and_deadline() {
        use japonica_faults::{FaultKind, FaultPlan, FaultRule};
        let src = "static void scale(double[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0 + 1.0; }
        }";
        let p = compile_source(src).unwrap();
        let (_, f) = p.function_by_name("scale").unwrap();
        let l = f.all_loops()[0].clone();
        let cfg = DeviceConfig::default();
        let n = 256usize;
        let mut heap = Heap::new();
        let a = heap.alloc_doubles(&vec![1.0; n]);
        let mut env = Env::with_slots(f.num_vars);
        env.set(f.params[0].var, Value::Array(a));
        env.set(f.params[1].var, Value::Int(n as i32));
        let bounds = LoopBounds {
            start: 0,
            end: n as i64,
            step: 1,
        };
        let fresh = |heap: &Heap| {
            let mut dev = DeviceMemory::new();
            dev.copy_in(heap, a, 0, n, &cfg).unwrap();
            dev
        };

        // No plan: guarded is identical to the plain launch.
        let plain =
            launch_loop(&p, &cfg, &l, &bounds, 0..n as u64, &env, &mut fresh(&heap)).unwrap();
        let guarded = launch_loop_guarded(
            &p,
            &cfg,
            &l,
            &bounds,
            0..n as u64,
            &env,
            &mut fresh(&heap),
            None,
            Some(4.0),
        )
        .unwrap();
        assert_eq!(plain.time_s, guarded.time_s);
        assert_eq!(plain.critical_cycles, guarded.critical_cycles);

        // Launch failure.
        let plan = FaultPlan::new(1, vec![FaultRule::persistent(FaultKind::KernelLaunch)]);
        let err = launch_loop_guarded(
            &p,
            &cfg,
            &l,
            &bounds,
            0..n as u64,
            &env,
            &mut fresh(&heap),
            Some(&plan),
            None,
        );
        assert!(
            matches!(err, Err(SimtError::Fault(f)) if f.kind == FaultKind::KernelLaunch),
            "{err:?}"
        );

        // SIMT fault gated on warp 3 carries its coordinates.
        let plan = FaultPlan::new(1, vec![FaultRule::persistent(FaultKind::Simt).on_warp(3)]);
        let err = launch_loop_guarded(
            &p,
            &cfg,
            &l,
            &bounds,
            0..n as u64,
            &env,
            &mut fresh(&heap),
            Some(&plan),
            None,
        );
        match err {
            Err(SimtError::Fault(f)) => {
                assert_eq!(f.kind, FaultKind::Simt);
                assert_eq!(f.origin.warp, Some(3));
                assert_eq!(f.origin.subloop, Some(0));
                assert_eq!(f.origin.loop_id, Some(l.id));
            }
            other => panic!("expected SIMT fault, got {other:?}"),
        }

        // A stall past the watchdog deadline kills the kernel...
        let big_stall = plain.critical_cycles * 100.0 + 1e6;
        let plan = FaultPlan::new(
            1,
            vec![FaultRule::persistent(FaultKind::DeadlineOverrun).stalling(big_stall)],
        );
        let err = launch_loop_guarded(
            &p,
            &cfg,
            &l,
            &bounds,
            0..n as u64,
            &env,
            &mut fresh(&heap),
            Some(&plan),
            Some(4.0),
        );
        assert!(
            matches!(err, Err(SimtError::Fault(f)) if f.kind == FaultKind::DeadlineOverrun),
            "{err:?}"
        );
        // ...while without a watchdog the device limps through, slower.
        let plan = FaultPlan::new(
            1,
            vec![FaultRule::persistent(FaultKind::DeadlineOverrun).stalling(big_stall)],
        );
        let slow = launch_loop_guarded(
            &p,
            &cfg,
            &l,
            &bounds,
            0..n as u64,
            &env,
            &mut fresh(&heap),
            Some(&plan),
            None,
        )
        .unwrap();
        assert!(slow.time_s > plain.time_s);
    }

    #[test]
    fn parallel_launch_is_bit_identical_to_sequential() {
        let src = "static void f(double[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) {
                if (i % 3 == 0) { a[i] = a[i] * 2.0 + 1.0; } else { a[i] = a[i] / 2.0; }
            }
        }";
        let p = compile_source(src).unwrap();
        let (_, f) = p.function_by_name("f").unwrap();
        let l = f.all_loops()[0].clone();
        let n = 2000usize;
        let mut heap = Heap::new();
        let a = heap.alloc_doubles(&(0..n).map(|i| i as f64).collect::<Vec<_>>());
        let mut env = Env::with_slots(f.num_vars);
        env.set(f.params[0].var, Value::Array(a));
        env.set(f.params[1].var, Value::Int(n as i32));
        let bounds = LoopBounds {
            start: 0,
            end: n as i64,
            step: 1,
        };
        let run = |threads: usize| {
            let mut cfg = DeviceConfig::default();
            cfg.sim.host_threads = threads;
            let mut dev = DeviceMemory::new();
            dev.copy_in(&heap, a, 0, n, &cfg).unwrap();
            let r = launch_loop_par(
                &p,
                &cfg,
                &l,
                &bounds,
                0..n as u64,
                &env,
                &mut dev,
                None,
                None,
            )
            .unwrap();
            let vals: Vec<Value> = (0..n).map(|i| dev.array(a).unwrap().get(i)).collect();
            (r, vals)
        };
        let (seq, seq_vals) = run(1);
        for threads in [2, 3, 8] {
            let (par, par_vals) = run(threads);
            assert_eq!(seq, par, "report diverged at {threads} threads");
            assert_eq!(seq.time_s.to_bits(), par.time_s.to_bits());
            assert_eq!(seq.critical_cycles.to_bits(), par.critical_cycles.to_bits());
            assert_eq!(seq_vals, par_vals, "memory diverged at {threads} threads");
        }
    }

    #[test]
    fn parallel_launch_replays_fault_injection_exactly() {
        use japonica_faults::{FaultKind, FaultPlan, FaultRule};
        let src = "static void scale(double[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0 + 1.0; }
        }";
        let p = compile_source(src).unwrap();
        let (_, f) = p.function_by_name("scale").unwrap();
        let l = f.all_loops()[0].clone();
        let n = 512usize;
        let mut heap = Heap::new();
        let a = heap.alloc_doubles(&vec![1.0; n]);
        let mut env = Env::with_slots(f.num_vars);
        env.set(f.params[0].var, Value::Array(a));
        env.set(f.params[1].var, Value::Int(n as i32));
        let bounds = LoopBounds {
            start: 0,
            end: n as i64,
            step: 1,
        };
        let run = |threads: usize| {
            let mut cfg = DeviceConfig::default();
            cfg.sim.host_threads = threads;
            let mut dev = DeviceMemory::new();
            dev.copy_in(&heap, a, 0, n, &cfg).unwrap();
            let plan = FaultPlan::new(1, vec![FaultRule::persistent(FaultKind::Simt).on_warp(5)]);
            let err = launch_loop_par(
                &p,
                &cfg,
                &l,
                &bounds,
                0..n as u64,
                &env,
                &mut dev,
                Some(&plan),
                None,
            );
            let vals: Vec<Value> = (0..n).map(|i| dev.array(a).unwrap().get(i)).collect();
            (format!("{err:?}"), vals)
        };
        // Fault at warp 5: warps 0..5 commit, the rest never run — and the
        // partial memory state matches the sequential path exactly.
        let (seq_err, seq_vals) = run(1);
        for threads in [2, 8] {
            let (par_err, par_vals) = run(threads);
            assert_eq!(seq_err, par_err);
            assert_eq!(seq_vals, par_vals);
        }
        assert_eq!(seq_vals[5 * 32 - 1], Value::Double(3.0));
        assert_eq!(seq_vals[5 * 32], Value::Double(1.0));
    }

    #[test]
    fn parallel_launch_empty_and_single_warp_delegate() {
        let src = "static void f(int[] a, int n) {
            /* acc parallel */ for (int i = 0; i < n; i++) { a[i] = 1; }
        }";
        let p = compile_source(src).unwrap();
        let (_, f) = p.function_by_name("f").unwrap();
        let l = f.all_loops()[0].clone();
        let mut cfg = DeviceConfig::default();
        cfg.sim.host_threads = 8;
        let mut heap = Heap::new();
        let a = heap.alloc_ints(&[0; 8]);
        let mut env = Env::with_slots(f.num_vars);
        env.set(f.params[0].var, Value::Array(a));
        env.set(f.params[1].var, Value::Int(8));
        let bounds = LoopBounds {
            start: 0,
            end: 8,
            step: 1,
        };
        let mut dev = DeviceMemory::new();
        dev.copy_in(&heap, a, 0, 8, &cfg).unwrap();
        let empty =
            launch_loop_par(&p, &cfg, &l, &bounds, 0..0, &env, &mut dev, None, None).unwrap();
        assert_eq!(empty.warps, 0);
        let one = launch_loop_par(&p, &cfg, &l, &bounds, 0..8, &env, &mut dev, None, None).unwrap();
        assert_eq!(one.warps, 1);
        assert_eq!(dev.array(a).unwrap().get(7), Value::Int(1));
    }

    #[test]
    fn chain_merges_reports() {
        let (mut a, _, _, _) = run_kernel(64);
        let (b, _, _, _) = run_kernel(64);
        let warps = a.warps;
        a.chain(&b);
        assert_eq!(a.warps, warps * 2);
        assert!(a.time_s > b.time_s);
    }
}

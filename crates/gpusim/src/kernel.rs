//! Kernel launch: grid formation, warp scheduling over SMs, and timing.

use crate::config::DeviceConfig;
use crate::memory::LaneMemory;
use crate::simt::{SimtError, SimtExec};
use crate::stats::WarpStats;
use japonica_ir::{Env, ForLoop, LoopBounds, Program};
use std::ops::Range;

/// Result of one kernel launch.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Simulated seconds of device compute (including launch overhead,
    /// excluding transfers).
    pub time_s: f64,
    /// Device cycles on the critical (busiest) SM.
    pub critical_cycles: f64,
    /// Warps launched.
    pub warps: u32,
    /// Iterations executed.
    pub iterations: u64,
    /// Aggregated statistics over all warps.
    pub stats: WarpStats,
}

impl KernelReport {
    /// An empty launch (zero iterations): costs nothing, reports zeros.
    pub fn empty() -> KernelReport {
        KernelReport {
            time_s: 0.0,
            critical_cycles: 0.0,
            warps: 0,
            iterations: 0,
            stats: WarpStats::new(),
        }
    }

    /// Merge a subsequent launch's report (kernels run back-to-back).
    pub fn chain(&mut self, other: &KernelReport) {
        self.time_s += other.time_s;
        self.critical_cycles += other.critical_cycles;
        self.warps += other.warps;
        self.iterations += other.iterations;
        self.stats.merge(&other.stats);
    }
}

/// Launch the body of `loop_` over iterations `iters` (0-based indices into
/// `bounds`), one thread per iteration, against lane memory `mem`.
///
/// Warps are filled in iteration order and scheduled round-robin over the
/// SMs; each SM runs its warps back-to-back, so kernel time is the busiest
/// SM's cycle count plus the fixed launch overhead.
pub fn launch_loop<M: LaneMemory>(
    program: &Program,
    cfg: &DeviceConfig,
    loop_: &ForLoop,
    bounds: &LoopBounds,
    iters: Range<u64>,
    base_env: &Env,
    mem: &mut M,
) -> Result<KernelReport, SimtError> {
    if iters.is_empty() {
        return Ok(KernelReport::empty());
    }
    let exec = SimtExec::new(program, cfg);
    let mut sm_cycles = vec![0.0f64; cfg.sm_count as usize];
    let mut agg = WarpStats::new();
    let mut warp_id = 0u32;
    let total = iters.end - iters.start;
    let mut k = iters.start;
    while k < iters.end {
        let hi = (k + cfg.warp_size as u64).min(iters.end);
        let warp_iters: Vec<u64> = (k..hi).collect();
        let stats = exec.run_warp(loop_, bounds, &warp_iters, base_env, warp_id, mem)?;
        // Resident warps overlap memory latency with compute.
        let occupied = stats.issue_cycles + stats.mem_cycles / cfg.mem_concurrency.max(1.0);
        sm_cycles[(warp_id % cfg.sm_count) as usize] += occupied;
        agg.merge(&stats);
        warp_id += 1;
        k = hi;
    }
    let critical = sm_cycles.iter().copied().fold(0.0, f64::max);
    Ok(KernelReport {
        time_s: cfg.cycles_to_seconds(critical) + cfg.kernel_launch_us * 1e-6,
        critical_cycles: critical,
        warps: warp_id,
        iterations: total,
        stats: agg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DeviceMemory;
    use japonica_frontend::compile_source;
    use japonica_ir::{Heap, Value};

    fn run_kernel(n: i32) -> (KernelReport, DeviceMemory, japonica_ir::ArrayId, Heap) {
        let src = "static void scale(double[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0 + 1.0; }
        }";
        let p = compile_source(src).unwrap();
        let (_, f) = p.function_by_name("scale").unwrap();
        let l = f.all_loops()[0].clone();
        let mut heap = Heap::new();
        let a = heap.alloc_doubles(&vec![1.0; n as usize]);
        let cfg = DeviceConfig::default();
        let mut dev = DeviceMemory::new();
        dev.copy_in(&heap, a, 0, n as usize, &cfg).unwrap();
        let mut env = Env::with_slots(f.num_vars);
        env.set(f.params[0].var, Value::Array(a));
        env.set(f.params[1].var, Value::Int(n));
        let bounds = LoopBounds {
            start: 0,
            end: n as i64,
            step: 1,
        };
        let report =
            launch_loop(&p, &cfg, &l, &bounds, 0..n as u64, &env, &mut dev).unwrap();
        (report, dev, a, heap)
    }

    #[test]
    fn kernel_computes_correct_results() {
        let (report, dev, a, _) = run_kernel(1000);
        assert_eq!(report.iterations, 1000);
        assert_eq!(report.warps, 32); // ceil(1000/32)
        for i in 0..1000 {
            assert_eq!(dev.array(a).unwrap().get(i), Value::Double(3.0));
        }
    }

    #[test]
    fn empty_range_costs_nothing() {
        let src = "static void f(int[] a, int n) {
            /* acc parallel */ for (int i = 0; i < n; i++) { a[i] = 1; }
        }";
        let p = compile_source(src).unwrap();
        let (_, f) = p.function_by_name("f").unwrap();
        let l = f.all_loops()[0].clone();
        let cfg = DeviceConfig::default();
        let mut dev = DeviceMemory::new();
        let env = Env::with_slots(f.num_vars);
        let bounds = LoopBounds { start: 0, end: 0, step: 1 };
        let r = launch_loop(&p, &cfg, &l, &bounds, 0..0, &env, &mut dev).unwrap();
        assert_eq!(r.time_s, 0.0);
        assert_eq!(r.warps, 0);
    }

    #[test]
    fn more_iterations_take_longer() {
        let (small, _, _, _) = run_kernel(448);
        let (big, _, _, _) = run_kernel(448 * 8);
        assert!(big.time_s > small.time_s);
        // 8x work over the same SMs: roughly 8x critical cycles
        let ratio = big.critical_cycles / small.critical_cycles;
        assert!(ratio > 6.0 && ratio < 10.0, "ratio {ratio}");
    }

    #[test]
    fn parallelism_amortizes_over_sms() {
        // 14 warps (one per SM) should cost about the same critical cycles
        // as 1 warp.
        let (one, _, _, _) = run_kernel(32);
        let (fourteen, _, _, _) = run_kernel(32 * 14);
        let ratio = fourteen.critical_cycles / one.critical_cycles;
        assert!(ratio < 1.7, "ratio {ratio}");
    }

    #[test]
    fn launch_overhead_is_included() {
        let (r, _, _, _) = run_kernel(32);
        let cfg = DeviceConfig::default();
        assert!(r.time_s >= cfg.kernel_launch_us * 1e-6);
    }

    #[test]
    fn chain_merges_reports() {
        let (mut a, _, _, _) = run_kernel(64);
        let (b, _, _, _) = run_kernel(64);
        let warps = a.warps;
        a.chain(&b);
        assert_eq!(a.warps, warps * 2);
        assert!(a.time_s > b.time_s);
    }
}

//! Device configuration and cost model.

use japonica_ir::{CostTable, ExecEngine, OpClass};

/// How the simulator itself runs on the host — as opposed to what it
/// models. Purely a wall-clock knob: every simulated quantity (cycle
/// counts, TLS conflict sets, fault decisions) is bit-identical across
/// `host_threads` values and across `engine` choices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Host worker threads the kernel launcher spreads warps over.
    /// `1` (the default) is the reference sequential interpreter; higher
    /// counts run warps on a `std::thread::scope` pool and merge per-warp
    /// results in global warp order (see `launch_loop_par`).
    pub host_threads: usize,
    /// Which warp executor runs kernel bodies: the compiled bytecode VM
    /// (default) or the reference tree walker. Both produce bit-identical
    /// memory, stats and cycle counts; kernels the bytecode compiler
    /// declines (recursion, deep static call chains) silently fall back to
    /// the walker either way.
    pub engine: ExecEngine,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            host_threads: 1,
            engine: ExecEngine::default(),
        }
    }
}

impl SimConfig {
    /// A configuration with exactly `n` host threads (clamped to ≥ 1).
    pub fn with_threads(n: usize) -> SimConfig {
        SimConfig {
            host_threads: n.max(1),
            engine: ExecEngine::default(),
        }
    }

    /// One host thread per available hardware thread.
    pub fn auto() -> SimConfig {
        SimConfig::with_threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

/// A contiguous slice of a device's streaming multiprocessors, leased to
/// one tenant of a shared device (see `japonica-serve`'s `DevicePool`).
///
/// Every simulated quantity depends only on `sm_count` — `sm_base` exists
/// purely so occupancy can be attributed to physical SMs of the shared
/// device. That is the multi-tenant determinism argument: a job running on
/// the partition `[3, 10)` is bit-identical to the same job running alone
/// on a 7-SM device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DevicePartition {
    /// First physical SM of the slice (attribution only).
    pub sm_base: u32,
    /// Number of SMs in the slice (what the simulation sees).
    pub sm_count: u32,
}

impl DevicePartition {
    /// The whole device as one partition.
    pub fn full(sm_count: u32) -> DevicePartition {
        DevicePartition {
            sm_base: 0,
            sm_count,
        }
    }

    /// Physical SM ids covered by this partition.
    pub fn sm_range(&self) -> std::ops::Range<u32> {
        self.sm_base..self.sm_base + self.sm_count
    }
}

/// Parameters of the simulated GPU. Defaults model the paper's testbed GPU,
/// an Nvidia Fermi M2050 (14 SMs × 32 CUDA cores @ 1.15 GHz, PCIe gen-2
/// host link), at the granularity the scheduler cares about.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// Lanes per warp (CUDA fixes this at 32).
    pub warp_size: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Cycles for one memory transaction (one coalesced segment).
    pub mem_tx_cycles: f64,
    /// Size of a coalescing segment in bytes (Fermi: 128-byte lines).
    pub mem_segment_bytes: usize,
    /// Fixed kernel-launch overhead in microseconds (driver + the JNI hop —
    /// the paper invokes kernels from Java through JNI). Streamed chunked
    /// launches pipeline this cost (see the sharing scheduler).
    pub kernel_launch_us: f64,
    /// Host↔device bandwidth in GB/s. Effective, not peak: the paper's
    /// stack moves Java arrays through JNI into pageable staging buffers
    /// before PCIe, roughly halving the usable rate.
    pub pcie_gb_per_s: f64,
    /// Per-transfer latency in microseconds.
    pub pcie_latency_us: f64,
    /// How many memory transactions the SM pipeline keeps in flight:
    /// resident warps hide global-memory latency behind compute, so an
    /// SM's time is `issue + mem / mem_concurrency`.
    pub mem_concurrency: f64,
    /// Per-op issue costs for the SIMT cores.
    pub cost: CostTable,
    /// Host-side execution settings of the simulator itself (thread count);
    /// does not affect any simulated quantity.
    pub sim: SimConfig,
    /// The SM slice this config may use. `None` (the default) means the
    /// whole device; a multi-tenant lease restricts the simulation to its
    /// slice (see [`DevicePartition`]).
    pub partition: Option<DevicePartition>,
}

impl DeviceConfig {
    /// SMs the simulation actually schedules warps over: the partition's
    /// size when one is set (clamped to the physical count), otherwise the
    /// whole device.
    pub fn effective_sms(&self) -> u32 {
        self.partition
            .map(|p| p.sm_count.min(self.sm_count))
            .unwrap_or(self.sm_count)
            .max(1)
    }

    /// Restrict this config to `partition`. The returned view is what a
    /// `DeviceLease` hands to a tenant's scheduler.
    pub fn partitioned(mut self, partition: DevicePartition) -> DeviceConfig {
        self.partition = Some(partition);
        self
    }

    /// Total hardware lanes (`effective_sms × warp_size` — one warp
    /// resident per SM per cycle in this model). Respects a partition, so
    /// the sharing boundary of a leased slice is computed from the slice.
    pub fn total_lanes(&self) -> u32 {
        self.effective_sms() * self.warp_size
    }

    /// Seconds for `cycles` device cycles.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9)
    }

    /// Seconds to move `bytes` across PCIe (one direction, one synchronous
    /// transfer, paying the full latency).
    pub fn transfer_seconds(&self, bytes: usize) -> f64 {
        self.pcie_latency_us * 1e-6 + bytes as f64 / (self.pcie_gb_per_s * 1e9)
    }

    /// Seconds `bytes` occupy an already-open asynchronous stream
    /// (bandwidth only; the one-time latency is charged when the stream
    /// opens).
    pub fn stream_seconds(&self, bytes: usize) -> f64 {
        bytes as f64 / (self.pcie_gb_per_s * 1e9)
    }
}

impl Default for DeviceConfig {
    fn default() -> DeviceConfig {
        DeviceConfig {
            sm_count: 14,
            warp_size: 32,
            clock_ghz: 1.15,
            mem_tx_cycles: 16.0,
            mem_segment_bytes: 128,
            kernel_launch_us: 40.0,
            pcie_gb_per_s: 1.5,
            pcie_latency_us: 30.0,
            mem_concurrency: 16.0,
            cost: gpu_cost_table(),
            sim: SimConfig::default(),
            partition: None,
        }
    }
}

/// The per-op issue cost of a Fermi-class SIMT core: fast FP32/int ALU,
/// special-function units for transcendentals, painful integer division.
pub fn gpu_cost_table() -> CostTable {
    CostTable::uniform(1.0)
        .with(OpClass::IntMul, 2.0)
        .with(OpClass::IntDiv, 40.0)
        .with(OpClass::FpAlu, 1.0)
        .with(OpClass::FpDiv, 10.0)
        .with(OpClass::Special, 4.0)
        .with(OpClass::Cast, 1.0)
        .with(OpClass::Branch, 2.0)
        .with(OpClass::Move, 0.5)
        // Load/Store issue cost; segment traffic is charged separately.
        .with(OpClass::Load, 2.0)
        .with(OpClass::Store, 2.0)
        .with(OpClass::Call, 4.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_model_m2050() {
        let c = DeviceConfig::default();
        assert_eq!(c.sm_count, 14);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.total_lanes(), 448); // the M2050's 448 CUDA cores
    }

    #[test]
    fn cycles_to_seconds() {
        let c = DeviceConfig::default();
        let s = c.cycles_to_seconds(1.15e9);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_has_latency_floor() {
        let c = DeviceConfig::default();
        let tiny = c.transfer_seconds(4);
        assert!(tiny >= c.pcie_latency_us * 1e-6);
        let big = c.transfer_seconds(400_000_000); // 400 MB
        assert!(big > 0.2); // ~0.27 s at 1.5 GB/s
    }

    #[test]
    fn sim_config_defaults_sequential() {
        assert_eq!(SimConfig::default().host_threads, 1);
        assert_eq!(DeviceConfig::default().sim.host_threads, 1);
        assert_eq!(SimConfig::with_threads(0).host_threads, 1);
        assert!(SimConfig::auto().host_threads >= 1);
    }

    #[test]
    fn partition_restricts_effective_sms_but_not_base() {
        let c = DeviceConfig::default();
        assert_eq!(c.effective_sms(), 14);
        let p = c.clone().partitioned(DevicePartition {
            sm_base: 3,
            sm_count: 7,
        });
        assert_eq!(p.effective_sms(), 7);
        assert_eq!(p.total_lanes(), 7 * 32);
        // sm_base is attribution-only: two partitions of equal size are
        // indistinguishable to the simulation.
        let q = c.clone().partitioned(DevicePartition {
            sm_base: 0,
            sm_count: 7,
        });
        assert_eq!(p.effective_sms(), q.effective_sms());
        assert_eq!(p.partition.expect("partitioned").sm_range(), 3..10);
        // Oversized partitions clamp to the physical device.
        let big = c.partitioned(DevicePartition {
            sm_base: 0,
            sm_count: 99,
        });
        assert_eq!(big.effective_sms(), 14);
    }

    #[test]
    fn gpu_cost_table_shape() {
        let t = gpu_cost_table();
        assert!(t.cost(OpClass::Special) < t.cost(OpClass::IntDiv));
        assert!(t.cost(OpClass::FpAlu) <= t.cost(OpClass::FpDiv));
    }
}

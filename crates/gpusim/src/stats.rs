//! Execution statistics gathered per warp and aggregated per kernel.

use japonica_ir::{CostTable, OpClass, OpCounts};

/// Per-kernel aggregate of [`WarpStats`] — what the parallel simulator's
/// determinism contract is stated over: identical `GpuStats` (and cycle
/// counts) for every `host_threads` value.
pub type GpuStats = WarpStats;

/// Cycle and event accounting for one warp's execution.
///
/// `PartialEq` is bitwise on the f64 fields — exactly what the
/// cross-thread-count determinism tests want to assert.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarpStats {
    /// Instructions issued, by class (one issue per warp-level op).
    pub counts: OpCounts,
    /// Issue cycles charged against the cost table.
    pub issue_cycles: f64,
    /// Memory segments touched by coalesced warp accesses.
    pub mem_segments: u64,
    /// Cycles spent on memory traffic.
    pub mem_cycles: f64,
    /// Branches where the warp diverged (both paths taken).
    pub divergent_branches: u64,
    /// Total branch decisions executed.
    pub branches: u64,
}

impl WarpStats {
    /// New, zeroed stats.
    pub fn new() -> WarpStats {
        WarpStats::default()
    }

    /// Charge one warp-level instruction of class `cls`.
    #[inline]
    pub fn charge(&mut self, cls: OpClass, cost: &CostTable) {
        self.counts.record(cls);
        self.issue_cycles += cost.cost(cls);
    }

    /// Charge `segments` memory transactions of `tx_cycles` each.
    #[inline]
    pub fn charge_mem(&mut self, segments: u64, tx_cycles: f64) {
        self.mem_segments += segments;
        self.mem_cycles += segments as f64 * tx_cycles;
    }

    /// Charge wrapper overhead cycles (TLS metadata etc.).
    #[inline]
    pub fn charge_extra(&mut self, cycles: f64) {
        self.issue_cycles += cycles;
    }

    /// Total cycles this warp occupies its SM.
    pub fn total_cycles(&self) -> f64 {
        self.issue_cycles + self.mem_cycles
    }

    /// Fraction of branches that diverged.
    pub fn divergence_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.divergent_branches as f64 / self.branches as f64
        }
    }

    /// Merge another warp's stats (for kernel-level aggregation).
    pub fn merge(&mut self, other: &WarpStats) {
        self.counts.merge(&other.counts);
        self.issue_cycles += other.issue_cycles;
        self.mem_segments += other.mem_segments;
        self.mem_cycles += other.mem_cycles;
        self.divergent_branches += other.divergent_branches;
        self.branches += other.branches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let t = CostTable::uniform(2.0);
        let mut s = WarpStats::new();
        s.charge(OpClass::FpAlu, &t);
        s.charge(OpClass::FpAlu, &t);
        s.charge_mem(3, 16.0);
        assert_eq!(s.counts.count(OpClass::FpAlu), 2);
        assert_eq!(s.issue_cycles, 4.0);
        assert_eq!(s.mem_cycles, 48.0);
        assert_eq!(s.total_cycles(), 52.0);
    }

    #[test]
    fn divergence_rate() {
        let mut s = WarpStats::new();
        s.branches = 10;
        s.divergent_branches = 4;
        assert!((s.divergence_rate() - 0.4).abs() < 1e-12);
        assert_eq!(WarpStats::new().divergence_rate(), 0.0);
    }

    #[test]
    fn merge_sums_everything() {
        let t = CostTable::uniform(1.0);
        let mut a = WarpStats::new();
        a.charge(OpClass::Load, &t);
        let mut b = WarpStats::new();
        b.charge(OpClass::Store, &t);
        b.branches = 2;
        a.merge(&b);
        assert_eq!(a.counts.count(OpClass::Store), 1);
        assert_eq!(a.branches, 2);
        assert_eq!(a.issue_cycles, 2.0);
    }
}

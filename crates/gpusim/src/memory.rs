//! Device global memory, host↔device transfers, and the [`LaneMemory`]
//! abstraction the SIMT interpreter executes against.

use crate::config::DeviceConfig;
use crate::simt::SimtError;
use japonica_faults::{FaultOrigin, FaultPlan};
use japonica_ir::{ArrayData, ArrayId, ExecError, Heap, Ty, Value};
use std::collections::BTreeMap;

/// Execution context of a single lane access, given to [`LaneMemory`]
/// implementations so wrappers (TLS buffers, profiler traces) know *which
/// iteration* performed the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessCtx {
    /// Lane index within the warp.
    pub lane: u32,
    /// Global warp index within the kernel.
    pub warp: u32,
    /// The 0-based loop iteration this thread executes.
    pub iter: u64,
}

/// Per-lane memory interface of the SIMT interpreter.
///
/// `DeviceMemory` implements it directly; the GPU-TLS engine and the
/// dependency profiler wrap it.
pub trait LaneMemory {
    /// Load one element.
    fn load(&mut self, ctx: AccessCtx, arr: ArrayId, idx: i64) -> Result<Value, ExecError>;
    /// Store one element.
    fn store(&mut self, ctx: AccessCtx, arr: ArrayId, idx: i64, v: Value) -> Result<(), ExecError>;
    /// Array length.
    fn array_len(&self, arr: ArrayId) -> Result<usize, ExecError>;
    /// Flat device byte address of an element, for the coalescing model.
    /// `None` disables coalescing accounting for that access.
    fn address_of(&self, arr: ArrayId, idx: i64) -> Option<u64>;
    /// Extra issue cycles a wrapper charges per memory access (the TLS
    /// engine uses this to model its metadata bookkeeping).
    fn overhead_cycles(&self) -> f64 {
        0.0
    }
}

/// Lane memory that can hand each warp an independent, sendable view for
/// host-parallel simulation.
///
/// The contract that keeps the parallel launch path bit-identical to the
/// sequential one: a view created by [`fork`](ParallelLaneMemory::fork)
/// reads the pre-launch state and buffers its own stores; the coordinator
/// [`absorb`](ParallelLaneMemory::absorb)s the harvested deltas in global
/// warp order, so write-after-write resolution and every order-sensitive
/// merge (f64 sums, metadata lists) replay the sequential schedule exactly.
pub trait ParallelLaneMemory: LaneMemory {
    /// The per-warp view warps execute against on worker threads.
    type View<'v>: LaneMemory + Send
    where
        Self: 'v;
    /// The owned result of one warp's execution, sent back to the
    /// coordinator.
    type Delta: Send;

    /// A fresh view over the pre-launch state.
    fn fork(&self) -> Self::View<'_>;
    /// Extract a finished view's buffered effects.
    fn harvest(view: Self::View<'_>) -> Self::Delta;
    /// Apply one warp's effects; called in ascending warp order.
    fn absorb(&mut self, delta: Self::Delta) -> Result<(), ExecError>;
}

/// A recorded host↔device transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct Transfer {
    /// The array moved.
    pub array: ArrayId,
    /// Bytes moved.
    pub bytes: usize,
    /// Host-to-device (`true`) or device-to-host.
    pub to_device: bool,
    /// Simulated seconds the transfer occupies on the PCIe link.
    pub seconds: f64,
}

/// The simulated device global memory: a mirror of selected host arrays
/// plus a flat address map for coalescing analysis.
#[derive(Debug, Clone, Default)]
pub struct DeviceMemory {
    arrays: BTreeMap<ArrayId, ArrayData>,
    bases: BTreeMap<ArrayId, u64>,
    next_base: u64,
    /// Log of all transfers performed (in order).
    pub transfers: Vec<Transfer>,
}

impl DeviceMemory {
    /// Empty device memory.
    pub fn new() -> DeviceMemory {
        DeviceMemory::default()
    }

    /// Is the array resident on the device?
    pub fn is_resident(&self, arr: ArrayId) -> bool {
        self.arrays.contains_key(&arr)
    }

    fn assign_base(&mut self, arr: ArrayId, bytes: usize) {
        if let std::collections::btree_map::Entry::Vacant(e) = self.bases.entry(arr) {
            // Segment-align every allocation.
            let aligned = (bytes + 255) & !255;
            e.insert(self.next_base);
            self.next_base += aligned as u64 + 256;
        }
    }

    /// `create` clause: allocate a device-only zeroed mirror.
    pub fn alloc(&mut self, arr: ArrayId, ty: Ty, len: usize) {
        let data = ArrayData::zeroed(ty, len);
        self.assign_base(arr, data.size_bytes());
        self.arrays.insert(arr, data);
    }

    /// `copyin`: allocate (if needed) and copy `host[lo..hi]` to the device,
    /// recording the simulated transfer. Returns the transfer time.
    pub fn copy_in(
        &mut self,
        host: &Heap,
        arr: ArrayId,
        lo: usize,
        hi: usize,
        cfg: &DeviceConfig,
    ) -> Result<f64, ExecError> {
        let src = host.array(arr)?;
        let hi = hi.min(src.len());
        if !self.arrays.contains_key(&arr) {
            self.alloc(arr, src.ty(), src.len());
        }
        let dst = self
            .arrays
            .get_mut(&arr)
            .ok_or(ExecError::UnknownArray(arr))?;
        for i in lo..hi {
            dst.set(i, src.get(i))?;
        }
        let bytes = (hi.saturating_sub(lo)) * src.ty().size_bytes();
        let seconds = cfg.transfer_seconds(bytes);
        self.transfers.push(Transfer {
            array: arr,
            bytes,
            to_device: true,
            seconds,
        });
        Ok(seconds)
    }

    /// `copyout`: copy `device[lo..hi]` back to the host heap.
    pub fn copy_out(
        &mut self,
        host: &mut Heap,
        arr: ArrayId,
        lo: usize,
        hi: usize,
        cfg: &DeviceConfig,
    ) -> Result<f64, ExecError> {
        let src = self.arrays.get(&arr).ok_or(ExecError::UnknownArray(arr))?;
        let hi = hi.min(src.len());
        for i in lo..hi {
            let v = src.get(i);
            host.store(arr, i as i64, v)?;
        }
        let bytes = (hi.saturating_sub(lo)) * src.ty().size_bytes();
        let seconds = cfg.transfer_seconds(bytes);
        self.transfers.push(Transfer {
            array: arr,
            bytes,
            to_device: false,
            seconds,
        });
        Ok(seconds)
    }

    /// [`DeviceMemory::copy_in`] with an optional fault-injection plan. The
    /// plan is consulted *before* any element moves, so a fired fault leaves
    /// both heaps untouched and the transfer can be retried or rerouted.
    #[allow(clippy::too_many_arguments)] // copy_in plus the fault hooks
    pub fn copy_in_guarded(
        &mut self,
        host: &Heap,
        arr: ArrayId,
        lo: usize,
        hi: usize,
        cfg: &DeviceConfig,
        faults: Option<&FaultPlan>,
        origin: FaultOrigin,
    ) -> Result<f64, SimtError> {
        if let Some(plan) = faults {
            if let Some(f) = plan.on_transfer(true, origin) {
                return Err(SimtError::Fault(f));
            }
        }
        self.copy_in(host, arr, lo, hi, cfg).map_err(SimtError::Mem)
    }

    /// [`DeviceMemory::copy_out`] with an optional fault-injection plan,
    /// checked before any element moves (same atomicity as `copy_in_guarded`).
    #[allow(clippy::too_many_arguments)] // copy_out plus the fault hooks
    pub fn copy_out_guarded(
        &mut self,
        host: &mut Heap,
        arr: ArrayId,
        lo: usize,
        hi: usize,
        cfg: &DeviceConfig,
        faults: Option<&FaultPlan>,
        origin: FaultOrigin,
    ) -> Result<f64, SimtError> {
        if let Some(plan) = faults {
            if let Some(f) = plan.on_transfer(false, origin) {
                return Err(SimtError::Fault(f));
            }
        }
        self.copy_out(host, arr, lo, hi, cfg)
            .map_err(SimtError::Mem)
    }

    /// Direct read of a device array (for tests and the TLS commit phase).
    pub fn array(&self, arr: ArrayId) -> Result<&ArrayData, ExecError> {
        self.arrays.get(&arr).ok_or(ExecError::UnknownArray(arr))
    }

    /// Direct mutable access (TLS commit).
    pub fn array_mut(&mut self, arr: ArrayId) -> Result<&mut ArrayData, ExecError> {
        self.arrays
            .get_mut(&arr)
            .ok_or(ExecError::UnknownArray(arr))
    }

    /// Bounds-checked element read through a shared reference — the
    /// read path of [`LaneMemory::load`], usable from per-warp views that
    /// only hold `&DeviceMemory`.
    pub fn peek(&self, arr: ArrayId, idx: i64) -> Result<Value, ExecError> {
        let a = self.arrays.get(&arr).ok_or(ExecError::UnknownArray(arr))?;
        if idx < 0 || idx as usize >= a.len() {
            return Err(ExecError::IndexOutOfBounds {
                array: arr,
                index: idx,
                len: a.len(),
            });
        }
        Ok(a.get(idx as usize))
    }

    /// Total bytes the transfer log moved in the given direction.
    pub fn bytes_transferred(&self, to_device: bool) -> usize {
        self.transfers
            .iter()
            .filter(|t| t.to_device == to_device)
            .map(|t| t.bytes)
            .sum()
    }
}

impl LaneMemory for DeviceMemory {
    fn load(&mut self, _ctx: AccessCtx, arr: ArrayId, idx: i64) -> Result<Value, ExecError> {
        self.peek(arr, idx)
    }

    fn store(
        &mut self,
        _ctx: AccessCtx,
        arr: ArrayId,
        idx: i64,
        v: Value,
    ) -> Result<(), ExecError> {
        let a = self
            .arrays
            .get_mut(&arr)
            .ok_or(ExecError::UnknownArray(arr))?;
        if idx < 0 || idx as usize >= a.len() {
            return Err(ExecError::IndexOutOfBounds {
                array: arr,
                index: idx,
                len: a.len(),
            });
        }
        a.set(idx as usize, v)
    }

    fn array_len(&self, arr: ArrayId) -> Result<usize, ExecError> {
        Ok(self
            .arrays
            .get(&arr)
            .ok_or(ExecError::UnknownArray(arr))?
            .len())
    }

    fn address_of(&self, arr: ArrayId, idx: i64) -> Option<u64> {
        let base = *self.bases.get(&arr)?;
        let elem = self.arrays.get(&arr)?.ty().size_bytes() as u64;
        if idx < 0 {
            return None;
        }
        Some(base + idx as u64 * elem)
    }
}

/// One warp's private window onto [`DeviceMemory`] during a host-parallel
/// launch: reads see the pre-launch state (or the warp's own buffered
/// stores), stores land in an overlay the coordinator later applies in warp
/// order.
pub struct ShadowView<'v> {
    base: &'v DeviceMemory,
    overlay: BTreeMap<(ArrayId, i64), Value>,
}

impl LaneMemory for ShadowView<'_> {
    fn load(&mut self, _ctx: AccessCtx, arr: ArrayId, idx: i64) -> Result<Value, ExecError> {
        if let Some(v) = self.overlay.get(&(arr, idx)) {
            return Ok(*v);
        }
        self.base.peek(arr, idx)
    }

    fn store(
        &mut self,
        _ctx: AccessCtx,
        arr: ArrayId,
        idx: i64,
        v: Value,
    ) -> Result<(), ExecError> {
        // Validate against the real array so OOB faults surface exactly as
        // they would on the sequential path.
        let len = self.base.array_len(arr)?;
        if idx < 0 || idx as usize >= len {
            return Err(ExecError::IndexOutOfBounds {
                array: arr,
                index: idx,
                len,
            });
        }
        self.overlay.insert((arr, idx), v);
        Ok(())
    }

    fn array_len(&self, arr: ArrayId) -> Result<usize, ExecError> {
        self.base.array_len(arr)
    }

    fn address_of(&self, arr: ArrayId, idx: i64) -> Option<u64> {
        self.base.address_of(arr, idx)
    }
}

impl ParallelLaneMemory for DeviceMemory {
    type View<'v> = ShadowView<'v>;
    type Delta = BTreeMap<(ArrayId, i64), Value>;

    fn fork(&self) -> ShadowView<'_> {
        ShadowView {
            base: self,
            overlay: BTreeMap::new(),
        }
    }

    fn harvest(view: ShadowView<'_>) -> Self::Delta {
        view.overlay
    }

    fn absorb(&mut self, delta: Self::Delta) -> Result<(), ExecError> {
        let ctx = AccessCtx {
            lane: 0,
            warp: 0,
            iter: 0,
        };
        for ((arr, idx), v) in delta {
            self.store(ctx, arr, idx, v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> AccessCtx {
        AccessCtx {
            lane: 0,
            warp: 0,
            iter: 0,
        }
    }

    #[test]
    fn copy_in_mirrors_host_data() {
        let mut host = Heap::new();
        let a = host.alloc_doubles(&[1.0, 2.0, 3.0]);
        let mut dev = DeviceMemory::new();
        let cfg = DeviceConfig::default();
        let t = dev.copy_in(&host, a, 0, 3, &cfg).unwrap();
        assert!(t > 0.0);
        assert_eq!(dev.load(ctx(), a, 1).unwrap(), Value::Double(2.0));
        assert!(dev.is_resident(a));
    }

    #[test]
    fn copy_out_writes_back() {
        let mut host = Heap::new();
        let a = host.alloc_ints(&[0, 0]);
        let mut dev = DeviceMemory::new();
        let cfg = DeviceConfig::default();
        dev.copy_in(&host, a, 0, 2, &cfg).unwrap();
        dev.store(ctx(), a, 0, Value::Int(42)).unwrap();
        dev.copy_out(&mut host, a, 0, 2, &cfg).unwrap();
        assert_eq!(host.read_ints(a).unwrap(), vec![42, 0]);
    }

    #[test]
    fn partial_range_copy() {
        let mut host = Heap::new();
        let a = host.alloc_ints(&[1, 2, 3, 4]);
        let mut dev = DeviceMemory::new();
        let cfg = DeviceConfig::default();
        dev.copy_in(&host, a, 1, 3, &cfg).unwrap();
        // untouched region is zero on device
        assert_eq!(dev.load(ctx(), a, 0).unwrap(), Value::Int(0));
        assert_eq!(dev.load(ctx(), a, 2).unwrap(), Value::Int(3));
        assert_eq!(dev.transfers[0].bytes, 8);
    }

    #[test]
    fn oob_detected_on_device() {
        let mut host = Heap::new();
        let a = host.alloc_ints(&[1]);
        let mut dev = DeviceMemory::new();
        dev.copy_in(&host, a, 0, 1, &DeviceConfig::default())
            .unwrap();
        assert!(matches!(
            dev.load(ctx(), a, 5),
            Err(ExecError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn addresses_are_disjoint_across_arrays() {
        let mut host = Heap::new();
        let a = host.alloc_doubles(&[0.0; 64]);
        let b = host.alloc_doubles(&[0.0; 64]);
        let mut dev = DeviceMemory::new();
        let cfg = DeviceConfig::default();
        dev.copy_in(&host, a, 0, 64, &cfg).unwrap();
        dev.copy_in(&host, b, 0, 64, &cfg).unwrap();
        let a_end = dev.address_of(a, 63).unwrap() + 8;
        let b_start = dev.address_of(b, 0).unwrap();
        assert!(b_start >= a_end);
        // unit stride: consecutive addresses
        assert_eq!(
            dev.address_of(a, 1).unwrap() - dev.address_of(a, 0).unwrap(),
            8
        );
    }

    #[test]
    fn shadow_view_buffers_stores_until_absorbed() {
        let mut host = Heap::new();
        let a = host.alloc_ints(&[1, 2, 3]);
        let mut dev = DeviceMemory::new();
        dev.copy_in(&host, a, 0, 3, &DeviceConfig::default())
            .unwrap();
        let mut view = dev.fork();
        view.store(ctx(), a, 1, Value::Int(20)).unwrap();
        // Read-own-write through the overlay; base untouched.
        assert_eq!(view.load(ctx(), a, 1).unwrap(), Value::Int(20));
        assert_eq!(view.load(ctx(), a, 0).unwrap(), Value::Int(1));
        assert!(matches!(
            view.store(ctx(), a, 9, Value::Int(0)),
            Err(ExecError::IndexOutOfBounds { .. })
        ));
        let delta = DeviceMemory::harvest(view);
        assert_eq!(dev.load(ctx(), a, 1).unwrap(), Value::Int(2));
        dev.absorb(delta).unwrap();
        assert_eq!(dev.load(ctx(), a, 1).unwrap(), Value::Int(20));
    }

    #[test]
    fn transfer_accounting() {
        let mut host = Heap::new();
        let a = host.alloc_doubles(&[0.0; 100]);
        let mut dev = DeviceMemory::new();
        let cfg = DeviceConfig::default();
        dev.copy_in(&host, a, 0, 100, &cfg).unwrap();
        dev.copy_out(&mut host, a, 0, 50, &cfg).unwrap();
        assert_eq!(dev.bytes_transferred(true), 800);
        assert_eq!(dev.bytes_transferred(false), 400);
    }
}

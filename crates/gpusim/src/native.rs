//! The SIMT **native tier**: threaded-code compilation of warp bytecode.
//!
//! [`compile_native_warp`] lowers a [`CompiledKernel`] into a flat array of
//! warp-op closures with operand registers, constant-pool values, callee
//! chunks and error payloads pre-resolved at compile time, eliminating the
//! per-instruction decode `match` of [`crate::vm::SimtVm`]. Mask handling
//! is baked into the block runner: every op receives the live mask
//! (`mask & !returned`) already recomputed, exactly as the bytecode VM
//! recomputes it per instruction.
//!
//! [`NativeSimtVm`] replays `SimtVm` (and therefore the tree walker in
//! `simt.rs`) **bit for bit**: identical charge order (so `issue_cycles`
//! f64 accumulation matches to the last bit), identical branch/divergence
//! counting, identical coalescing segment sets, identical per-lane error
//! selection. The closures run against `&mut dyn LaneMemory`, so one
//! compiled artifact (cached via
//! [`japonica_ir::KernelCache::native_tier`]) serves device memory,
//! speculative views and privatized buffers alike.

use std::sync::Arc;

use crate::config::DeviceConfig;
use crate::memory::{AccessCtx, LaneMemory};
use crate::simt::SimtError;
use crate::stats::WarpStats;
use japonica_ir::bytecode::{CompiledKernel, Instr};
use japonica_ir::{
    ops, ArrayId, BinOp, Env, ExecError, LoopBounds, OpClass, ParamTy, Value, VarId,
};

/// Call-frame metadata kept on the Rust stack (mirrors the bytecode VM's
/// frame; static call chains are bounded at compile time).
struct WFrame {
    /// Lanes that executed `return` in this frame.
    returned: u32,
    /// `false` at kernel top level, where `return` is illegal.
    allow_return: bool,
    /// Per-lane return values.
    ret: [Value; 32],
}

impl WFrame {
    fn new(allow_return: bool) -> WFrame {
        WFrame {
            returned: 0,
            allow_return,
            ret: [Value::Int(0); 32],
        }
    }
}

/// Dynamic execution context threaded through the closure sweep. The
/// memory is a trait object so the compiled artifact is backend-agnostic.
struct DynCtx<'a> {
    mem: &'a mut dyn LaneMemory,
    stats: &'a mut WarpStats,
    cfg: &'a DeviceConfig,
    iters: &'a [u64],
    warp_id: u32,
}

impl DynCtx<'_> {
    fn access_ctx(&self, lane: usize) -> AccessCtx {
        AccessCtx {
            lane: lane as u32,
            warp: self.warp_id,
            iter: self.iters[lane],
        }
    }

    fn lane_err(&self, lane: usize, error: ExecError) -> SimtError {
        SimtError::Lane {
            iter: self.iters[lane],
            error,
        }
    }
}

/// Per-block execution geometry handed to every op: lane count, the live
/// mask (already `mask & !returned`), and the register/boundness frame
/// bases of the executing chunk.
#[derive(Clone, Copy)]
struct LaneCtx {
    lanes: usize,
    live: u32,
    base: usize,
    bbase: usize,
}

/// One pre-compiled warp op.
type WOp = Box<
    dyn for<'a, 'b, 'c> Fn(
            &mut NativeSimtVm,
            LaneCtx,
            &'a mut WFrame,
            &'b mut DynCtx<'c>,
        ) -> Result<(), SimtError>
        + Send
        + Sync,
>;

/// A lowered chunk: the closure array plus the frame metadata needed to
/// push it as a call frame and raise call-related errors.
struct WChunk {
    ops: Vec<WOp>,
    num_regs: usize,
    num_vars: usize,
    params: Vec<(usize, ParamTy)>,
    fn_name: String,
    check_returned: bool,
}

/// A kernel fully lowered to SIMT threaded code. Build once via
/// [`compile_native_warp`], share via `Arc`, execute via [`NativeSimtVm`].
pub struct NativeWarpKernel {
    entry: Arc<WChunk>,
}

impl std::fmt::Debug for NativeWarpKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeWarpKernel")
            .field("entry_ops", &self.entry.ops.len())
            .field("num_regs", &self.entry.num_regs)
            .field("num_vars", &self.entry.num_vars)
            .finish()
    }
}

#[inline]
fn is_float(v: Value) -> bool {
    matches!(v, Value::Float(_) | Value::Double(_))
}

#[inline]
fn bit(l: usize) -> u32 {
    1u32 << l
}

/// Run a closure block under `mask`, recomputing liveness per op exactly
/// like the bytecode VM's `run` loop (equivalent to the walker's
/// per-statement recheck because `returned` only changes at `Return`).
#[allow(clippy::too_many_arguments)]
fn run_ops(
    vm: &mut NativeSimtVm,
    ops: &[WOp],
    lanes: usize,
    mask: u32,
    base: usize,
    bbase: usize,
    frame: &mut WFrame,
    ctx: &mut DynCtx<'_>,
) -> Result<(), SimtError> {
    for op in ops {
        let live = mask & !frame.returned;
        if live == 0 {
            break;
        }
        op(
            vm,
            LaneCtx {
                lanes,
                live,
                base,
                bbase,
            },
            frame,
            ctx,
        )?;
    }
    Ok(())
}

/// The warp-level threaded-code VM. Owns reusable arenas; create one per
/// host thread and reuse it across warps.
#[derive(Debug, Default)]
pub struct NativeSimtVm {
    /// SoA register arena: `frame_base + r * lanes + l`.
    regs: Vec<Value>,
    /// Per-frame, per-variable lane-boundness bitmasks.
    bound: Vec<u32>,
    /// Reusable distinct-segment scratch for coalescing charges.
    seg_scratch: Vec<u64>,
}

impl NativeSimtVm {
    /// A fresh VM (arenas grow on first use, then get reused).
    pub fn new() -> NativeSimtVm {
        NativeSimtVm::default()
    }

    /// Execute one warp of a lowered kernel: lane `l` runs loop iteration
    /// `warp_iters[l]`. Mirrors `SimtVm::run_warp` exactly.
    #[allow(clippy::too_many_arguments)] // mirrors the walker's launch signature
    pub fn run_warp<M: LaneMemory>(
        &mut self,
        kernel: &NativeWarpKernel,
        loop_var: VarId,
        bounds: &LoopBounds,
        warp_iters: &[u64],
        base_env: &Env,
        warp_id: u32,
        mem: &mut M,
        cfg: &DeviceConfig,
    ) -> Result<WarpStats, SimtError> {
        assert!(warp_iters.len() <= cfg.warp_size as usize, "warp overfull");
        assert!(warp_iters.len() <= 32, "native VM lanes bounded at 32");
        let lanes = warp_iters.len();
        let full: u32 = if lanes == 32 {
            u32::MAX
        } else {
            bit(lanes) - 1
        };
        let c0 = &kernel.entry;
        self.regs.clear();
        self.regs.resize(c0.num_regs * lanes, Value::Int(0));
        self.bound.clear();
        self.bound.resize(c0.num_vars, 0);
        for v in 0..c0.num_vars {
            let vid = VarId(v as u32);
            if base_env.is_set(vid) {
                if let Ok(val) = base_env.get(vid) {
                    for l in 0..lanes {
                        self.regs[v * lanes + l] = val;
                    }
                    self.bound[v] = full;
                }
            }
        }
        let vi = loop_var.index();
        for (l, &k) in warp_iters.iter().enumerate() {
            self.regs[vi * lanes + l] = Value::Int(bounds.value_of(k) as i32);
        }
        self.bound[vi] = full;
        let mut stats = WarpStats::new();
        let mut ctx = DynCtx {
            mem,
            stats: &mut stats,
            cfg,
            iters: warp_iters,
            warp_id,
        };
        let mut frame = WFrame::new(false);
        run_ops(self, &c0.ops, lanes, full, 0, 0, &mut frame, &mut ctx)?;
        Ok(stats)
    }

    #[inline]
    fn reg(&self, base: usize, lanes: usize, r: usize, l: usize) -> Value {
        self.regs[base + r * lanes + l]
    }

    #[inline]
    fn set_reg(&mut self, base: usize, lanes: usize, r: usize, l: usize, v: Value) {
        self.regs[base + r * lanes + l] = v;
    }

    /// Convert the lanes of `sub` to a truth bitmask, raising the walker's
    /// per-lane boolean `TypeMismatch` in lane order.
    fn truth_mask(
        &self,
        base: usize,
        lanes: usize,
        r: usize,
        sub: u32,
        ctx: &DynCtx<'_>,
    ) -> Result<u32, SimtError> {
        let mut truth = 0u32;
        for l in 0..lanes {
            if sub & bit(l) == 0 {
                continue;
            }
            match self.reg(base, lanes, r, l) {
                Value::Bool(true) => truth |= bit(l),
                Value::Bool(false) => {}
                other => {
                    return Err(ctx.lane_err(
                        l,
                        ExecError::TypeMismatch {
                            expected: "boolean".into(),
                            found: format!("{other}"),
                        },
                    ))
                }
            }
        }
        Ok(truth)
    }

    /// Charge one coalesced warp memory access (same distinct-segment
    /// count the walker's `BTreeSet` produced).
    fn charge_coalesced(&mut self, touched: &[(usize, ArrayId, i64)], ctx: &mut DynCtx<'_>) {
        self.seg_scratch.clear();
        let mut uncoalesced = 0u64;
        for &(_, arr, idx) in touched {
            match ctx.mem.address_of(arr, idx) {
                Some(addr) => self
                    .seg_scratch
                    .push(addr / ctx.cfg.mem_segment_bytes as u64),
                None => uncoalesced += 1,
            }
        }
        self.seg_scratch.sort_unstable();
        self.seg_scratch.dedup();
        let segs = self.seg_scratch.len() as u64 + uncoalesced;
        if segs > 0 {
            ctx.stats.charge_mem(segs, ctx.cfg.mem_tx_cycles);
        }
        let oh = ctx.mem.overhead_cycles();
        if oh > 0.0 {
            ctx.stats.charge_extra(oh);
        }
    }

    /// Gather per-lane `(lane, array, index)` triples for a warp memory
    /// access, raising the walker's per-lane errors in lane order.
    #[allow(clippy::too_many_arguments)]
    fn gather_touched(
        &self,
        lc: LaneCtx,
        arr: usize,
        var: VarId,
        idx: usize,
        ctx: &DynCtx<'_>,
        out: &mut [(usize, ArrayId, i64); 32],
    ) -> Result<usize, SimtError> {
        let LaneCtx {
            lanes,
            live,
            base,
            bbase,
        } = lc;
        let mut n = 0usize;
        for l in 0..lanes {
            if live & bit(l) == 0 {
                continue;
            }
            if self.bound[bbase + arr] & bit(l) == 0 {
                return Err(ctx.lane_err(l, ExecError::UnboundVariable(var)));
            }
            let a = self.reg(base, lanes, arr, l).as_array().ok_or_else(|| {
                ctx.lane_err(
                    l,
                    ExecError::TypeMismatch {
                        expected: "array".into(),
                        found: format!("{var}"),
                    },
                )
            })?;
            let i = self.reg(base, lanes, idx, l).as_i64().ok_or_else(|| {
                ctx.lane_err(
                    l,
                    ExecError::TypeMismatch {
                        expected: "int index".into(),
                        found: "non-integer".into(),
                    },
                )
            })?;
            out[n] = (l, a, i);
            n += 1;
        }
        Ok(n)
    }
}

/// Lower a compiled kernel to SIMT threaded code.
///
/// Lowering is total: every bytecode instruction has a closure form.
/// Device-side limitations (`new` arrays, `break`/`continue`, top-level
/// `return`) stay *runtime* bail-outs raising the identical
/// [`SimtError::Unsupported`] the bytecode VM raises, preserving the
/// three-way error contract.
pub fn compile_native_warp(k: &CompiledKernel) -> NativeWarpKernel {
    let mut lw = Lowerer {
        k,
        done: vec![None; k.chunks.len()],
    };
    let entry = lw.chunk(0);
    NativeWarpKernel { entry }
}

/// Recursive chunk lowerer with memoization: the chunk call graph is a DAG
/// (the bytecode compiler rejects recursion), so each chunk is lowered once
/// and `Call` ops share the `Arc`.
struct Lowerer<'k> {
    k: &'k CompiledKernel,
    done: Vec<Option<Arc<WChunk>>>,
}

impl Lowerer<'_> {
    fn chunk(&mut self, ci: usize) -> Arc<WChunk> {
        if let Some(c) = &self.done[ci] {
            return Arc::clone(c);
        }
        let src = &self.k.chunks[ci];
        let ops = self.lower(ci, 0, src.code.len() as u32);
        let src = &self.k.chunks[ci];
        let c = Arc::new(WChunk {
            ops,
            num_regs: src.num_regs as usize,
            num_vars: src.num_vars as usize,
            params: src.params.iter().map(|(r, t)| (*r as usize, *t)).collect(),
            fn_name: src.fn_name.clone(),
            check_returned: src.check_returned,
        });
        self.done[ci] = Some(Arc::clone(&c));
        c
    }

    /// Lower instructions `lo..hi` of chunk `ci`, walking the same
    /// `next_pc` extents the bytecode VM walks at run time.
    fn lower(&mut self, ci: usize, lo: u32, hi: u32) -> Vec<WOp> {
        let k = self.k;
        let mut ops = Vec::new();
        let mut pc = lo;
        while pc < hi {
            let instr = &k.chunks[ci].code[pc as usize];
            let next = instr.next_pc(pc);
            ops.push(self.lower_instr(ci, instr));
            pc = next;
        }
        ops
    }

    /// One instruction → one warp-op closure. Each arm resolves its
    /// operands now and mirrors the corresponding `SimtVm::run` arm
    /// exactly: same charge order, same per-lane error order, same
    /// branch/divergence accounting.
    fn lower_instr(&mut self, ci: usize, instr: &Instr) -> WOp {
        match instr {
            Instr::Const { dst, pool } => {
                let dst = *dst as usize;
                let v = self.k.pool[*pool as usize];
                Box::new(move |vm, lc, _f, ctx| {
                    ctx.stats.charge(OpClass::Move, &ctx.cfg.cost);
                    for l in 0..lc.lanes {
                        if lc.live & bit(l) != 0 {
                            vm.set_reg(lc.base, lc.lanes, dst, l, v);
                        }
                    }
                    Ok(())
                })
            }
            Instr::Copy { dst, src } => {
                let (dst, src) = (*dst as usize, *src as usize);
                let vid = VarId(src as u32);
                Box::new(move |vm, lc, _f, ctx| {
                    ctx.stats.charge(OpClass::Move, &ctx.cfg.cost);
                    for l in 0..lc.lanes {
                        if lc.live & bit(l) == 0 {
                            continue;
                        }
                        if vm.bound[lc.bbase + src] & bit(l) == 0 {
                            return Err(ctx.lane_err(l, ExecError::UnboundVariable(vid)));
                        }
                        let v = vm.reg(lc.base, lc.lanes, src, l);
                        vm.set_reg(lc.base, lc.lanes, dst, l, v);
                    }
                    Ok(())
                })
            }
            Instr::Unary {
                op,
                dst,
                src,
                cls_i,
                cls_f,
            } => {
                let (op, dst, src) = (*op, *dst as usize, *src as usize);
                let (cls_i, cls_f) = (*cls_i, *cls_f);
                Box::new(move |vm, lc, _f, ctx| {
                    let fl = lc.live.trailing_zeros() as usize;
                    let float = is_float(vm.reg(lc.base, lc.lanes, src, fl));
                    ctx.stats
                        .charge(if float { cls_f } else { cls_i }, &ctx.cfg.cost);
                    for l in 0..lc.lanes {
                        if lc.live & bit(l) == 0 {
                            continue;
                        }
                        let v = vm.reg(lc.base, lc.lanes, src, l);
                        let r = ops::unary(op, v).map_err(|er| ctx.lane_err(l, er))?;
                        vm.set_reg(lc.base, lc.lanes, dst, l, r);
                    }
                    Ok(())
                })
            }
            Instr::Binary {
                op,
                dst,
                a,
                b,
                cls_i,
                cls_f,
            } => {
                let (op, dst, a, b) = (*op, *dst as usize, *a as usize, *b as usize);
                let (cls_i, cls_f) = (*cls_i, *cls_f);
                Box::new(move |vm, lc, _f, ctx| {
                    let fl = lc.live.trailing_zeros() as usize;
                    let float = is_float(vm.reg(lc.base, lc.lanes, a, fl))
                        || is_float(vm.reg(lc.base, lc.lanes, b, fl));
                    ctx.stats
                        .charge(if float { cls_f } else { cls_i }, &ctx.cfg.cost);
                    for l in 0..lc.lanes {
                        if lc.live & bit(l) == 0 {
                            continue;
                        }
                        let va = vm.reg(lc.base, lc.lanes, a, l);
                        let vb = vm.reg(lc.base, lc.lanes, b, l);
                        let r = ops::binary(op, va, vb).map_err(|er| ctx.lane_err(l, er))?;
                        vm.set_reg(lc.base, lc.lanes, dst, l, r);
                    }
                    Ok(())
                })
            }
            Instr::Cast { ty, dst, src } => {
                let (ty, dst, src) = (*ty, *dst as usize, *src as usize);
                Box::new(move |vm, lc, _f, ctx| {
                    ctx.stats.charge(OpClass::Cast, &ctx.cfg.cost);
                    for l in 0..lc.lanes {
                        if lc.live & bit(l) == 0 {
                            continue;
                        }
                        let v = vm.reg(lc.base, lc.lanes, src, l);
                        let r = v.cast(ty).ok_or_else(|| {
                            ctx.lane_err(
                                l,
                                ExecError::InvalidCast {
                                    from: format!("{v}"),
                                    to: ty,
                                },
                            )
                        })?;
                        vm.set_reg(lc.base, lc.lanes, dst, l, r);
                    }
                    Ok(())
                })
            }
            // Scalar-walker-only pre-checks: the SIMT engines validate
            // arrays and indices per lane at the access itself.
            Instr::GuardArray { .. } | Instr::CheckIdx { .. } => Box::new(|_, _, _, _| Ok(())),
            Instr::Load { dst, arr, var, idx } => {
                let (dst, arr, var, idx) = (*dst as usize, *arr as usize, *var, *idx as usize);
                Box::new(move |vm, lc, _f, ctx| {
                    ctx.stats.charge(OpClass::Load, &ctx.cfg.cost);
                    let mut touched = [(0usize, ArrayId(0), 0i64); 32];
                    let n = vm.gather_touched(lc, arr, var, idx, ctx, &mut touched)?;
                    vm.charge_coalesced(&touched[..n], ctx);
                    for &(l, a, i) in &touched[..n] {
                        let actx = ctx.access_ctx(l);
                        let v = ctx.mem.load(actx, a, i).map_err(|er| ctx.lane_err(l, er))?;
                        vm.set_reg(lc.base, lc.lanes, dst, l, v);
                    }
                    Ok(())
                })
            }
            Instr::Len { dst, arr, var } => {
                let (dst, arr, var) = (*dst as usize, *arr as usize, *var);
                Box::new(move |vm, lc, _f, ctx| {
                    ctx.stats.charge(OpClass::Move, &ctx.cfg.cost);
                    for l in 0..lc.lanes {
                        if lc.live & bit(l) == 0 {
                            continue;
                        }
                        if vm.bound[lc.bbase + arr] & bit(l) == 0 {
                            return Err(ctx.lane_err(l, ExecError::UnboundVariable(var)));
                        }
                        let a = vm
                            .reg(lc.base, lc.lanes, arr, l)
                            .as_array()
                            .ok_or_else(|| {
                                ctx.lane_err(
                                    l,
                                    ExecError::TypeMismatch {
                                        expected: "array".into(),
                                        found: format!("{var}"),
                                    },
                                )
                            })?;
                        let len = ctx.mem.array_len(a).map_err(|er| ctx.lane_err(l, er))?;
                        vm.set_reg(lc.base, lc.lanes, dst, l, Value::Int(len as i32));
                    }
                    Ok(())
                })
            }
            Instr::Intrinsic { f, cls, dst, args } => {
                let (f, cls, dst) = (*f, *cls, *dst as usize);
                let args: Vec<usize> = args.iter().map(|r| *r as usize).collect();
                Box::new(move |vm, lc, _fr, ctx| {
                    ctx.stats.charge(cls, &ctx.cfg.cost);
                    for l in 0..lc.lanes {
                        if lc.live & bit(l) == 0 {
                            continue;
                        }
                        let mut buf = [Value::Int(0); 4];
                        for (i, r) in args.iter().enumerate() {
                            buf[i] = vm.reg(lc.base, lc.lanes, *r, l);
                        }
                        let v = ops::intrinsic(f, &buf[..args.len()])
                            .map_err(|er| ctx.lane_err(l, er))?;
                        vm.set_reg(lc.base, lc.lanes, dst, l, v);
                    }
                    Ok(())
                })
            }
            Instr::Call { chunk, dst, args } => {
                let callee = self.chunk(*chunk as usize);
                let dst = dst.map(|d| d as usize);
                let args: Vec<usize> = args.iter().map(|r| *r as usize).collect();
                Box::new(move |vm, lc, _f, ctx| {
                    ctx.stats.charge(OpClass::Call, &ctx.cfg.cost);
                    let c = &callee;
                    let nbase = vm.regs.len();
                    let nbbase = vm.bound.len();
                    vm.regs.resize(nbase + c.num_regs * lc.lanes, Value::Int(0));
                    vm.bound.resize(nbbase + c.num_vars, 0);
                    // Lane-major binding, like the walker's per-lane envs.
                    let mut bind_err = None;
                    'bind: for l in 0..lc.lanes {
                        if lc.live & bit(l) == 0 {
                            continue;
                        }
                        for (i, (preg, pty)) in c.params.iter().enumerate() {
                            let raw = vm.reg(lc.base, lc.lanes, args[i], l);
                            let v = match pty {
                                ParamTy::Scalar(t) => match raw.cast(*t) {
                                    Some(v) => v,
                                    None => {
                                        bind_err = Some(ctx.lane_err(
                                            l,
                                            ExecError::TypeMismatch {
                                                expected: t.to_string(),
                                                found: format!("{raw}"),
                                            },
                                        ));
                                        break 'bind;
                                    }
                                },
                                ParamTy::Array(_) => raw,
                            };
                            vm.set_reg(nbase, lc.lanes, *preg, l, v);
                        }
                    }
                    let res = match bind_err {
                        Some(e) => Err(e),
                        None => {
                            for (preg, _) in &c.params {
                                vm.bound[nbbase + *preg] = lc.live;
                            }
                            let mut callee_frame = WFrame::new(true);
                            run_ops(
                                vm,
                                &c.ops,
                                lc.lanes,
                                lc.live,
                                nbase,
                                nbbase,
                                &mut callee_frame,
                                ctx,
                            )
                            .map(|()| callee_frame)
                        }
                    };
                    vm.regs.truncate(nbase);
                    vm.bound.truncate(nbbase);
                    let callee_frame = res?;
                    if c.check_returned {
                        for l in 0..lc.lanes {
                            if lc.live & bit(l) != 0 && callee_frame.returned & bit(l) == 0 {
                                return Err(SimtError::Unsupported(format!(
                                    "`{}` completed without returning on some lane",
                                    c.fn_name
                                )));
                            }
                        }
                    }
                    if let Some(dst) = dst {
                        for l in 0..lc.lanes {
                            if lc.live & bit(l) != 0 {
                                vm.set_reg(lc.base, lc.lanes, dst, l, callee_frame.ret[l]);
                            }
                        }
                    }
                    Ok(())
                })
            }
            Instr::Sc {
                op,
                dst,
                lhs,
                rhs_range,
                rhs,
            } => {
                let (op, dst, lhs, rhs) = (*op, *dst as usize, *lhs as usize, *rhs as usize);
                let rhs_ops = self.lower(ci, rhs_range.0, rhs_range.1);
                Box::new(move |vm, lc, frame, ctx| {
                    let truth = vm.truth_mask(lc.base, lc.lanes, lhs, lc.live, ctx)?;
                    ctx.stats.charge(OpClass::Branch, &ctx.cfg.cost);
                    ctx.stats.branches += 1;
                    let need_rhs = match op {
                        BinOp::LAnd => lc.live & truth,
                        _ => lc.live & !truth,
                    };
                    let short = lc.live & !need_rhs;
                    if need_rhs != 0 && short != 0 {
                        ctx.stats.divergent_branches += 1;
                    }
                    let mut rtruth = 0u32;
                    if need_rhs != 0 {
                        run_ops(
                            vm, &rhs_ops, lc.lanes, need_rhs, lc.base, lc.bbase, frame, ctx,
                        )?;
                        rtruth = vm.truth_mask(lc.base, lc.lanes, rhs, need_rhs, ctx)?;
                    }
                    for l in 0..lc.lanes {
                        if lc.live & bit(l) == 0 {
                            continue;
                        }
                        let b = if need_rhs & bit(l) != 0 {
                            rtruth & bit(l) != 0
                        } else {
                            truth & bit(l) != 0
                        };
                        vm.set_reg(lc.base, lc.lanes, dst, l, Value::Bool(b));
                    }
                    Ok(())
                })
            }
            Instr::Ternary {
                dst,
                cond,
                t_range,
                t_dst,
                f_range,
                f_dst,
            } => {
                let (dst, cond) = (*dst as usize, *cond as usize);
                let (t_dst, f_dst) = (*t_dst as usize, *f_dst as usize);
                let t_ops = self.lower(ci, t_range.0, t_range.1);
                let f_ops = self.lower(ci, f_range.0, f_range.1);
                Box::new(move |vm, lc, frame, ctx| {
                    let truth = vm.truth_mask(lc.base, lc.lanes, cond, lc.live, ctx)?;
                    ctx.stats.charge(OpClass::Branch, &ctx.cfg.cost);
                    ctx.stats.branches += 1;
                    let t_mask = lc.live & truth;
                    let f_mask = lc.live & !truth;
                    if t_mask != 0 && f_mask != 0 {
                        ctx.stats.divergent_branches += 1;
                    }
                    if t_mask != 0 {
                        run_ops(vm, &t_ops, lc.lanes, t_mask, lc.base, lc.bbase, frame, ctx)?;
                    }
                    if f_mask != 0 {
                        run_ops(vm, &f_ops, lc.lanes, f_mask, lc.base, lc.bbase, frame, ctx)?;
                    }
                    for l in 0..lc.lanes {
                        if lc.live & bit(l) == 0 {
                            continue;
                        }
                        let src = if t_mask & bit(l) != 0 { t_dst } else { f_dst };
                        let v = vm.reg(lc.base, lc.lanes, src, l);
                        vm.set_reg(lc.base, lc.lanes, dst, l, v);
                    }
                    Ok(())
                })
            }
            Instr::Decl { var, ty, init } => {
                let (var, ty) = (*var as usize, *ty);
                let init = init.map(|r| r as usize);
                Box::new(move |vm, lc, _f, ctx| {
                    ctx.stats.charge(OpClass::Move, &ctx.cfg.cost);
                    for l in 0..lc.lanes {
                        if lc.live & bit(l) == 0 {
                            continue;
                        }
                        let v = match init {
                            Some(r) => {
                                let raw = vm.reg(lc.base, lc.lanes, r, l);
                                raw.cast(ty).ok_or_else(|| {
                                    ctx.lane_err(
                                        l,
                                        ExecError::TypeMismatch {
                                            expected: ty.to_string(),
                                            found: format!("{raw}"),
                                        },
                                    )
                                })?
                            }
                            None => ty.zero(),
                        };
                        vm.set_reg(lc.base, lc.lanes, var, l, v);
                    }
                    vm.bound[lc.bbase + var] |= lc.live;
                    Ok(())
                })
            }
            Instr::Assign { var, src } => {
                let (var, src) = (*var as usize, *src as usize);
                Box::new(move |vm, lc, _f, ctx| {
                    ctx.stats.charge(OpClass::Move, &ctx.cfg.cost);
                    for l in 0..lc.lanes {
                        if lc.live & bit(l) == 0 {
                            continue;
                        }
                        let mut v = vm.reg(lc.base, lc.lanes, src, l);
                        if vm.bound[lc.bbase + var] & bit(l) != 0 {
                            if let Some(ty) = vm.reg(lc.base, lc.lanes, var, l).ty() {
                                v = v.cast(ty).ok_or_else(|| {
                                    ctx.lane_err(
                                        l,
                                        ExecError::TypeMismatch {
                                            expected: ty.to_string(),
                                            found: format!("{v}"),
                                        },
                                    )
                                })?;
                            }
                        }
                        vm.set_reg(lc.base, lc.lanes, var, l, v);
                    }
                    vm.bound[lc.bbase + var] |= lc.live;
                    Ok(())
                })
            }
            Instr::Store { arr, var, idx, val } => {
                let (arr, var, idx, val) = (*arr as usize, *var, *idx as usize, *val as usize);
                Box::new(move |vm, lc, _f, ctx| {
                    ctx.stats.charge(OpClass::Store, &ctx.cfg.cost);
                    let mut touched = [(0usize, ArrayId(0), 0i64); 32];
                    let n = vm.gather_touched(lc, arr, var, idx, ctx, &mut touched)?;
                    vm.charge_coalesced(&touched[..n], ctx);
                    for &(l, a, i) in &touched[..n] {
                        let v = vm.reg(lc.base, lc.lanes, val, l);
                        let actx = ctx.access_ctx(l);
                        ctx.mem
                            .store(actx, a, i, v)
                            .map_err(|er| ctx.lane_err(l, er))?;
                    }
                    Ok(())
                })
            }
            Instr::NewArray { .. } => Box::new(|_, _, _, _| {
                Err(SimtError::Unsupported(
                    "device-side array allocation".into(),
                ))
            }),
            Instr::If {
                cond,
                then_range,
                else_range,
            } => {
                let cond = *cond as usize;
                let then_ops = self.lower(ci, then_range.0, then_range.1);
                let else_ops = self.lower(ci, else_range.0, else_range.1);
                Box::new(move |vm, lc, frame, ctx| {
                    let truth = vm.truth_mask(lc.base, lc.lanes, cond, lc.live, ctx)?;
                    ctx.stats.charge(OpClass::Branch, &ctx.cfg.cost);
                    ctx.stats.branches += 1;
                    let t_mask = lc.live & truth;
                    let e_mask = lc.live & !truth;
                    if t_mask != 0 && e_mask != 0 {
                        ctx.stats.divergent_branches += 1;
                    }
                    if t_mask != 0 {
                        run_ops(
                            vm, &then_ops, lc.lanes, t_mask, lc.base, lc.bbase, frame, ctx,
                        )?;
                    }
                    if e_mask != 0 {
                        run_ops(
                            vm, &else_ops, lc.lanes, e_mask, lc.base, lc.bbase, frame, ctx,
                        )?;
                    }
                    Ok(())
                })
            }
            Instr::While {
                cond_range,
                cond,
                body_range,
            } => {
                let cond = *cond as usize;
                let cond_ops = self.lower(ci, cond_range.0, cond_range.1);
                let body_ops = self.lower(ci, body_range.0, body_range.1);
                Box::new(move |vm, lc, frame, ctx| {
                    let mut live_w = lc.live;
                    let entered = live_w.count_ones();
                    loop {
                        let live_now = live_w & !frame.returned;
                        if live_now == 0 {
                            break;
                        }
                        run_ops(
                            vm, &cond_ops, lc.lanes, live_now, lc.base, lc.bbase, frame, ctx,
                        )?;
                        let truth = vm.truth_mask(lc.base, lc.lanes, cond, live_now, ctx)?;
                        ctx.stats.charge(OpClass::Branch, &ctx.cfg.cost);
                        ctx.stats.branches += 1;
                        live_w = live_now & truth;
                        if live_w == 0 {
                            break;
                        }
                        if live_w.count_ones() < entered {
                            ctx.stats.divergent_branches += 1;
                        }
                        run_ops(
                            vm, &body_ops, lc.lanes, live_w, lc.base, lc.bbase, frame, ctx,
                        )?;
                    }
                    Ok(())
                })
            }
            Instr::For {
                var,
                start_range,
                start,
                end_range,
                end,
                step_range,
                step,
                body_range,
            } => {
                let (var, start, end, step) = (
                    *var as usize,
                    *start as usize,
                    *end as usize,
                    *step as usize,
                );
                let start_ops = self.lower(ci, start_range.0, start_range.1);
                let end_ops = self.lower(ci, end_range.0, end_range.1);
                let step_ops = self.lower(ci, step_range.0, step_range.1);
                let body_ops = self.lower(ci, body_range.0, body_range.1);
                Box::new(move |vm, lc, frame, ctx| {
                    let mut starts = [0i64; 32];
                    let mut steps = [0i64; 32];
                    let mut trips = [0u64; 32];
                    // Evaluate bounds like the walker's eval_i64: full
                    // vector eval, then per-lane integrality in lane order.
                    let bound_of = |vm: &mut NativeSimtVm,
                                    ops: &[WOp],
                                    r: usize,
                                    out: &mut [i64; 32],
                                    frame: &mut WFrame,
                                    ctx: &mut DynCtx<'_>|
                     -> Result<(), SimtError> {
                        run_ops(vm, ops, lc.lanes, lc.live, lc.base, lc.bbase, frame, ctx)?;
                        #[allow(clippy::needless_range_loop)] // lane indexing reads clearer
                        for l in 0..lc.lanes {
                            if lc.live & bit(l) == 0 {
                                continue;
                            }
                            let v = vm.reg(lc.base, lc.lanes, r, l);
                            out[l] = v.as_i64().ok_or_else(|| {
                                ctx.lane_err(
                                    l,
                                    ExecError::TypeMismatch {
                                        expected: "int".into(),
                                        found: format!("{v}"),
                                    },
                                )
                            })?;
                        }
                        Ok(())
                    };
                    bound_of(vm, &start_ops, start, &mut starts, frame, ctx)?;
                    let mut ends = [0i64; 32];
                    bound_of(vm, &end_ops, end, &mut ends, frame, ctx)?;
                    bound_of(vm, &step_ops, step, &mut steps, frame, ctx)?;
                    for l in 0..lc.lanes {
                        if lc.live & bit(l) == 0 {
                            continue;
                        }
                        let (s, e, st) = (starts[l], ends[l], steps[l]);
                        if st <= 0 {
                            return Err(ctx.lane_err(l, ExecError::NonPositiveStep(st)));
                        }
                        trips[l] = if e <= s {
                            0
                        } else {
                            ((e - s) + st - 1) as u64 / st as u64
                        };
                    }
                    let entered = lc.live.count_ones();
                    let max_trip = (0..lc.lanes)
                        .filter(|&l| lc.live & bit(l) != 0)
                        .map(|l| trips[l])
                        .max()
                        .unwrap_or(0);
                    for kk in 0..max_trip {
                        let mut round = 0u32;
                        #[allow(clippy::needless_range_loop)] // lane indexing reads clearer
                        for l in 0..lc.lanes {
                            if lc.live & bit(l) != 0
                                && kk < trips[l]
                                && frame.returned & bit(l) == 0
                            {
                                round |= bit(l);
                            }
                        }
                        if round == 0 {
                            break;
                        }
                        ctx.stats.charge(OpClass::IntAlu, &ctx.cfg.cost);
                        ctx.stats.charge(OpClass::Branch, &ctx.cfg.cost);
                        ctx.stats.branches += 1;
                        if round.count_ones() < entered {
                            ctx.stats.divergent_branches += 1;
                        }
                        for l in 0..lc.lanes {
                            if round & bit(l) != 0 {
                                let v = Value::Int((starts[l] + kk as i64 * steps[l]) as i32);
                                vm.set_reg(lc.base, lc.lanes, var, l, v);
                            }
                        }
                        vm.bound[lc.bbase + var] |= round;
                        run_ops(
                            vm, &body_ops, lc.lanes, round, lc.base, lc.bbase, frame, ctx,
                        )?;
                    }
                    Ok(())
                })
            }
            Instr::Return { val_range, val } => {
                let val = val.map(|r| r as usize);
                let val_ops = self.lower(ci, val_range.0, val_range.1);
                Box::new(move |vm, lc, frame, ctx| {
                    if !frame.allow_return {
                        return Err(SimtError::Unsupported("return in kernel body".into()));
                    }
                    if let Some(r) = val {
                        run_ops(
                            vm, &val_ops, lc.lanes, lc.live, lc.base, lc.bbase, frame, ctx,
                        )?;
                        for l in 0..lc.lanes {
                            if lc.live & bit(l) != 0 {
                                frame.ret[l] = vm.reg(lc.base, lc.lanes, r, l);
                            }
                        }
                    }
                    frame.returned |= lc.live;
                    Ok(())
                })
            }
            Instr::Break => {
                Box::new(|_, _, _, _| Err(SimtError::Unsupported("break in kernel body".into())))
            }
            Instr::Continue => {
                Box::new(|_, _, _, _| Err(SimtError::Unsupported("continue in kernel body".into())))
            }
        }
    }
}

//! The SIMT bytecode VM: a warp-level executor over
//! [`japonica_ir::bytecode::CompiledKernel`] that replays the tree-walking
//! interpreter in `simt.rs` bit-for-bit — identical charge order (so
//! `issue_cycles` f64 accumulation matches to the last bit), identical
//! branch/divergence counting, identical coalescing segment sets, identical
//! per-lane error selection — while eliminating the walker's per-expression
//! `Vals` allocations and `Vec<bool>` masks.
//!
//! Representation choices:
//!
//! * **active masks are `u32` bitmasks** (warps are at most 32 lanes; the
//!   dispatch layer falls back to the walker for exotic configs);
//! * **lane register files are struct-of-arrays**: register `r` of lane
//!   `l` lives at `frame_base + r * lanes + l` in one flat arena that is
//!   reused across warps and grown only by call frames;
//! * **per-variable boundness is a lane bitmask**, replicating the
//!   walker's per-lane `Env` occupancy (reads of never-assigned variables
//!   raise `UnboundVariable` on exactly the same lane);
//! * fixed `[_; 32]` stack scratch replaces per-node heap allocation for
//!   inner-loop bounds, touched-lane sets, and return values.

use crate::config::DeviceConfig;
use crate::memory::{AccessCtx, LaneMemory};
use crate::simt::SimtError;
use crate::stats::WarpStats;
use japonica_ir::bytecode::{CompiledKernel, Instr, Reg};
use japonica_ir::{ops, ArrayId, BinOp, Env, ExecError, LoopBounds, OpClass, Value, VarId};

/// Call-frame metadata kept on the Rust stack (static call chains are
/// bounded at compile time, so recursion depth is small).
struct VmFrame {
    /// Lanes that executed `return` in this frame.
    returned: u32,
    /// `false` at kernel top level, where `return` is illegal.
    allow_return: bool,
    /// Per-lane return values (only read when the callee declares a
    /// return type, in which case every returned lane wrote one).
    ret: [Value; 32],
}

impl VmFrame {
    fn new(allow_return: bool) -> VmFrame {
        VmFrame {
            returned: 0,
            allow_return,
            ret: [Value::Int(0); 32],
        }
    }
}

/// Execution context threaded through the bytecode walk (mirrors the tree
/// walker's `Ctx`, minus the depth counter: call depth is bounded at
/// compile time).
struct VmCtx<'a, M: LaneMemory> {
    mem: &'a mut M,
    stats: &'a mut WarpStats,
    cfg: &'a DeviceConfig,
    iters: &'a [u64],
    warp_id: u32,
}

impl<M: LaneMemory> VmCtx<'_, M> {
    fn access_ctx(&self, lane: usize) -> AccessCtx {
        AccessCtx {
            lane: lane as u32,
            warp: self.warp_id,
            iter: self.iters[lane],
        }
    }

    fn lane_err(&self, lane: usize, error: ExecError) -> SimtError {
        SimtError::Lane {
            iter: self.iters[lane],
            error,
        }
    }
}

#[inline]
fn is_float(v: Value) -> bool {
    matches!(v, Value::Float(_) | Value::Double(_))
}

#[inline]
fn bit(l: usize) -> u32 {
    1u32 << l
}

/// The warp-level bytecode VM. Owns reusable arenas; create one per host
/// thread and reuse it across warps.
#[derive(Debug, Default)]
pub struct SimtVm {
    /// SoA register arena: `frame_base + r * lanes + l`.
    regs: Vec<Value>,
    /// Per-frame, per-variable lane-boundness bitmasks.
    bound: Vec<u32>,
    /// Reusable distinct-segment scratch for coalescing charges.
    seg_scratch: Vec<u64>,
}

impl SimtVm {
    /// A fresh VM (arenas grow on first use, then get reused).
    pub fn new() -> SimtVm {
        SimtVm::default()
    }

    /// Execute one warp of a compiled kernel: lane `l` runs loop iteration
    /// `warp_iters[l]`. Mirrors `SimtExec::run_warp` exactly.
    #[allow(clippy::too_many_arguments)] // mirrors the walker's launch signature
    pub fn run_warp<M: LaneMemory>(
        &mut self,
        kernel: &CompiledKernel,
        loop_var: VarId,
        bounds: &LoopBounds,
        warp_iters: &[u64],
        base_env: &Env,
        warp_id: u32,
        mem: &mut M,
        cfg: &DeviceConfig,
    ) -> Result<WarpStats, SimtError> {
        assert!(warp_iters.len() <= cfg.warp_size as usize, "warp overfull");
        assert!(warp_iters.len() <= 32, "bytecode VM lanes bounded at 32");
        let lanes = warp_iters.len();
        let full: u32 = if lanes == 32 {
            u32::MAX
        } else {
            bit(lanes) - 1
        };
        let c0 = &kernel.chunks[0];
        self.regs.clear();
        self.regs
            .resize(c0.num_regs as usize * lanes, Value::Int(0));
        self.bound.clear();
        self.bound.resize(c0.num_vars as usize, 0);
        for v in 0..c0.num_vars as usize {
            let vid = VarId(v as u32);
            if base_env.is_set(vid) {
                if let Ok(val) = base_env.get(vid) {
                    for l in 0..lanes {
                        self.regs[v * lanes + l] = val;
                    }
                    self.bound[v] = full;
                }
            }
        }
        let vi = loop_var.index();
        for (l, &k) in warp_iters.iter().enumerate() {
            self.regs[vi * lanes + l] = Value::Int(bounds.value_of(k) as i32);
        }
        self.bound[vi] = full;
        let mut stats = WarpStats::new();
        let mut ctx = VmCtx {
            mem,
            stats: &mut stats,
            cfg,
            iters: warp_iters,
            warp_id,
        };
        let mut frame = VmFrame::new(false);
        let hi = c0.code.len() as u32;
        self.run(kernel, 0, 0, hi, lanes, full, 0, 0, &mut frame, &mut ctx)?;
        Ok(stats)
    }

    #[inline]
    fn reg(&self, base: usize, lanes: usize, r: Reg, l: usize) -> Value {
        self.regs[base + r as usize * lanes + l]
    }

    #[inline]
    fn set_reg(&mut self, base: usize, lanes: usize, r: Reg, l: usize, v: Value) {
        self.regs[base + r as usize * lanes + l] = v;
    }

    /// Convert the lanes of `sub` to a truth bitmask, raising the walker's
    /// per-lane boolean `TypeMismatch` in lane order.
    fn truth_mask<M: LaneMemory>(
        &self,
        base: usize,
        lanes: usize,
        r: Reg,
        sub: u32,
        ctx: &VmCtx<'_, M>,
    ) -> Result<u32, SimtError> {
        let mut truth = 0u32;
        for l in 0..lanes {
            if sub & bit(l) == 0 {
                continue;
            }
            match self.reg(base, lanes, r, l) {
                Value::Bool(true) => truth |= bit(l),
                Value::Bool(false) => {}
                other => {
                    return Err(ctx.lane_err(
                        l,
                        ExecError::TypeMismatch {
                            expected: "boolean".into(),
                            found: format!("{other}"),
                        },
                    ))
                }
            }
        }
        Ok(truth)
    }

    /// Charge one coalesced warp memory access (same distinct-segment
    /// count the walker's `BTreeSet` produced).
    fn charge_coalesced<M: LaneMemory>(
        &mut self,
        touched: &[(usize, ArrayId, i64)],
        ctx: &mut VmCtx<'_, M>,
    ) {
        self.seg_scratch.clear();
        let mut uncoalesced = 0u64;
        for &(_, arr, idx) in touched {
            match ctx.mem.address_of(arr, idx) {
                Some(addr) => self
                    .seg_scratch
                    .push(addr / ctx.cfg.mem_segment_bytes as u64),
                None => uncoalesced += 1,
            }
        }
        self.seg_scratch.sort_unstable();
        self.seg_scratch.dedup();
        let segs = self.seg_scratch.len() as u64 + uncoalesced;
        if segs > 0 {
            ctx.stats.charge_mem(segs, ctx.cfg.mem_tx_cycles);
        }
        let oh = ctx.mem.overhead_cycles();
        if oh > 0.0 {
            ctx.stats.charge_extra(oh);
        }
    }

    /// Gather per-lane `(lane, array, index)` triples for a warp memory
    /// access, raising the walker's per-lane errors in lane order.
    #[allow(clippy::too_many_arguments)]
    fn gather_touched<M: LaneMemory>(
        &self,
        base: usize,
        bbase: usize,
        lanes: usize,
        live: u32,
        arr: Reg,
        var: VarId,
        idx: Reg,
        ctx: &VmCtx<'_, M>,
        out: &mut [(usize, ArrayId, i64); 32],
    ) -> Result<usize, SimtError> {
        let mut n = 0usize;
        for l in 0..lanes {
            if live & bit(l) == 0 {
                continue;
            }
            if self.bound[bbase + arr as usize] & bit(l) == 0 {
                return Err(ctx.lane_err(l, ExecError::UnboundVariable(var)));
            }
            let a = self.reg(base, lanes, arr, l).as_array().ok_or_else(|| {
                ctx.lane_err(
                    l,
                    ExecError::TypeMismatch {
                        expected: "array".into(),
                        found: format!("{var}"),
                    },
                )
            })?;
            let i = self.reg(base, lanes, idx, l).as_i64().ok_or_else(|| {
                ctx.lane_err(
                    l,
                    ExecError::TypeMismatch {
                        expected: "int index".into(),
                        found: "non-integer".into(),
                    },
                )
            })?;
            out[n] = (l, a, i);
            n += 1;
        }
        Ok(n)
    }

    /// Execute instructions `lo..hi` of chunk `ci` under active mask
    /// `mask`. Recomputes liveness (`mask & !returned`) per instruction,
    /// which is equivalent to the walker's per-statement recheck because
    /// `returned` only changes at `Return` instructions.
    #[allow(clippy::too_many_arguments)]
    fn run<M: LaneMemory>(
        &mut self,
        k: &CompiledKernel,
        ci: usize,
        lo: u32,
        hi: u32,
        lanes: usize,
        mask: u32,
        base: usize,
        bbase: usize,
        frame: &mut VmFrame,
        ctx: &mut VmCtx<'_, M>,
    ) -> Result<(), SimtError> {
        let mut pc = lo;
        while pc < hi {
            let live = mask & !frame.returned;
            if live == 0 {
                break;
            }
            let instr = &k.chunks[ci].code[pc as usize];
            let next = instr.next_pc(pc);
            match instr {
                Instr::Const { dst, pool } => {
                    ctx.stats.charge(OpClass::Move, &ctx.cfg.cost);
                    let v = k.pool[*pool as usize];
                    for l in 0..lanes {
                        if live & bit(l) != 0 {
                            self.set_reg(base, lanes, *dst, l, v);
                        }
                    }
                }
                Instr::Copy { dst, src } => {
                    ctx.stats.charge(OpClass::Move, &ctx.cfg.cost);
                    for l in 0..lanes {
                        if live & bit(l) == 0 {
                            continue;
                        }
                        if self.bound[bbase + *src as usize] & bit(l) == 0 {
                            return Err(
                                ctx.lane_err(l, ExecError::UnboundVariable(VarId(*src as u32)))
                            );
                        }
                        let v = self.reg(base, lanes, *src, l);
                        self.set_reg(base, lanes, *dst, l, v);
                    }
                }
                Instr::Unary {
                    op,
                    dst,
                    src,
                    cls_i,
                    cls_f,
                } => {
                    let fl = live.trailing_zeros() as usize;
                    let float = is_float(self.reg(base, lanes, *src, fl));
                    ctx.stats
                        .charge(if float { *cls_f } else { *cls_i }, &ctx.cfg.cost);
                    for l in 0..lanes {
                        if live & bit(l) == 0 {
                            continue;
                        }
                        let v = self.reg(base, lanes, *src, l);
                        let r = ops::unary(*op, v).map_err(|er| ctx.lane_err(l, er))?;
                        self.set_reg(base, lanes, *dst, l, r);
                    }
                }
                Instr::Binary {
                    op,
                    dst,
                    a,
                    b,
                    cls_i,
                    cls_f,
                } => {
                    let fl = live.trailing_zeros() as usize;
                    let float = is_float(self.reg(base, lanes, *a, fl))
                        || is_float(self.reg(base, lanes, *b, fl));
                    ctx.stats
                        .charge(if float { *cls_f } else { *cls_i }, &ctx.cfg.cost);
                    for l in 0..lanes {
                        if live & bit(l) == 0 {
                            continue;
                        }
                        let va = self.reg(base, lanes, *a, l);
                        let vb = self.reg(base, lanes, *b, l);
                        let r = ops::binary(*op, va, vb).map_err(|er| ctx.lane_err(l, er))?;
                        self.set_reg(base, lanes, *dst, l, r);
                    }
                }
                Instr::Cast { ty, dst, src } => {
                    ctx.stats.charge(OpClass::Cast, &ctx.cfg.cost);
                    for l in 0..lanes {
                        if live & bit(l) == 0 {
                            continue;
                        }
                        let v = self.reg(base, lanes, *src, l);
                        let r = v.cast(*ty).ok_or_else(|| {
                            ctx.lane_err(
                                l,
                                ExecError::InvalidCast {
                                    from: format!("{v}"),
                                    to: *ty,
                                },
                            )
                        })?;
                        self.set_reg(base, lanes, *dst, l, r);
                    }
                }
                // Scalar-walker-only pre-checks: the SIMT walker validates
                // arrays and indices per lane at the access itself.
                Instr::GuardArray { .. } | Instr::CheckIdx { .. } => {}
                Instr::Load { dst, arr, var, idx } => {
                    ctx.stats.charge(OpClass::Load, &ctx.cfg.cost);
                    let mut touched = [(0usize, ArrayId(0), 0i64); 32];
                    let n = self.gather_touched(
                        base,
                        bbase,
                        lanes,
                        live,
                        *arr,
                        *var,
                        *idx,
                        ctx,
                        &mut touched,
                    )?;
                    self.charge_coalesced(&touched[..n], ctx);
                    for &(l, a, i) in &touched[..n] {
                        let actx = ctx.access_ctx(l);
                        let v = ctx.mem.load(actx, a, i).map_err(|er| ctx.lane_err(l, er))?;
                        self.set_reg(base, lanes, *dst, l, v);
                    }
                }
                Instr::Len { dst, arr, var } => {
                    ctx.stats.charge(OpClass::Move, &ctx.cfg.cost);
                    for l in 0..lanes {
                        if live & bit(l) == 0 {
                            continue;
                        }
                        if self.bound[bbase + *arr as usize] & bit(l) == 0 {
                            return Err(ctx.lane_err(l, ExecError::UnboundVariable(*var)));
                        }
                        let a = self.reg(base, lanes, *arr, l).as_array().ok_or_else(|| {
                            ctx.lane_err(
                                l,
                                ExecError::TypeMismatch {
                                    expected: "array".into(),
                                    found: format!("{var}"),
                                },
                            )
                        })?;
                        let len = ctx.mem.array_len(a).map_err(|er| ctx.lane_err(l, er))?;
                        self.set_reg(base, lanes, *dst, l, Value::Int(len as i32));
                    }
                }
                Instr::Intrinsic { f, cls, dst, args } => {
                    ctx.stats.charge(*cls, &ctx.cfg.cost);
                    for l in 0..lanes {
                        if live & bit(l) == 0 {
                            continue;
                        }
                        let mut buf = [Value::Int(0); 4];
                        for (i, r) in args.iter().enumerate() {
                            buf[i] = self.reg(base, lanes, *r, l);
                        }
                        let v = ops::intrinsic(*f, &buf[..args.len()])
                            .map_err(|er| ctx.lane_err(l, er))?;
                        self.set_reg(base, lanes, *dst, l, v);
                    }
                }
                Instr::Call { chunk, dst, args } => {
                    ctx.stats.charge(OpClass::Call, &ctx.cfg.cost);
                    let callee = *chunk as usize;
                    let c = &k.chunks[callee];
                    let nbase = self.regs.len();
                    let nbbase = self.bound.len();
                    self.regs
                        .resize(nbase + c.num_regs as usize * lanes, Value::Int(0));
                    self.bound.resize(nbbase + c.num_vars as usize, 0);
                    // Lane-major binding, like the walker's per-lane envs.
                    let mut bind_err = None;
                    'bind: for l in 0..lanes {
                        if live & bit(l) == 0 {
                            continue;
                        }
                        for (i, (preg, pty)) in c.params.iter().enumerate() {
                            let raw = self.reg(base, lanes, args[i], l);
                            let v = match pty {
                                japonica_ir::ParamTy::Scalar(t) => match raw.cast(*t) {
                                    Some(v) => v,
                                    None => {
                                        bind_err = Some(ctx.lane_err(
                                            l,
                                            ExecError::TypeMismatch {
                                                expected: t.to_string(),
                                                found: format!("{raw}"),
                                            },
                                        ));
                                        break 'bind;
                                    }
                                },
                                japonica_ir::ParamTy::Array(_) => raw,
                            };
                            self.set_reg(nbase, lanes, *preg, l, v);
                        }
                    }
                    let res = match bind_err {
                        Some(e) => Err(e),
                        None => {
                            for (preg, _) in &c.params {
                                self.bound[nbbase + *preg as usize] = live;
                            }
                            let clen = c.code.len() as u32;
                            let mut callee_frame = VmFrame::new(true);
                            self.run(
                                k,
                                callee,
                                0,
                                clen,
                                lanes,
                                live,
                                nbase,
                                nbbase,
                                &mut callee_frame,
                                ctx,
                            )
                            .map(|()| callee_frame)
                        }
                    };
                    self.regs.truncate(nbase);
                    self.bound.truncate(nbbase);
                    let callee_frame = res?;
                    if c.check_returned {
                        for l in 0..lanes {
                            if live & bit(l) != 0 && callee_frame.returned & bit(l) == 0 {
                                return Err(SimtError::Unsupported(format!(
                                    "`{}` completed without returning on some lane",
                                    c.fn_name
                                )));
                            }
                        }
                    }
                    if let Some(dst) = dst {
                        for l in 0..lanes {
                            if live & bit(l) != 0 {
                                self.set_reg(base, lanes, *dst, l, callee_frame.ret[l]);
                            }
                        }
                    }
                }
                Instr::Sc {
                    op,
                    dst,
                    lhs,
                    rhs_range,
                    rhs,
                } => {
                    let truth = self.truth_mask(base, lanes, *lhs, live, ctx)?;
                    ctx.stats.charge(OpClass::Branch, &ctx.cfg.cost);
                    ctx.stats.branches += 1;
                    let need_rhs = match op {
                        BinOp::LAnd => live & truth,
                        _ => live & !truth,
                    };
                    let short = live & !need_rhs;
                    if need_rhs != 0 && short != 0 {
                        ctx.stats.divergent_branches += 1;
                    }
                    let mut rtruth = 0u32;
                    if need_rhs != 0 {
                        self.run(
                            k,
                            ci,
                            rhs_range.0,
                            rhs_range.1,
                            lanes,
                            need_rhs,
                            base,
                            bbase,
                            frame,
                            ctx,
                        )?;
                        rtruth = self.truth_mask(base, lanes, *rhs, need_rhs, ctx)?;
                    }
                    for l in 0..lanes {
                        if live & bit(l) == 0 {
                            continue;
                        }
                        let b = if need_rhs & bit(l) != 0 {
                            rtruth & bit(l) != 0
                        } else {
                            truth & bit(l) != 0
                        };
                        self.set_reg(base, lanes, *dst, l, Value::Bool(b));
                    }
                }
                Instr::Ternary {
                    dst,
                    cond,
                    t_range,
                    t_dst,
                    f_range,
                    f_dst,
                } => {
                    let truth = self.truth_mask(base, lanes, *cond, live, ctx)?;
                    ctx.stats.charge(OpClass::Branch, &ctx.cfg.cost);
                    ctx.stats.branches += 1;
                    let t_mask = live & truth;
                    let f_mask = live & !truth;
                    if t_mask != 0 && f_mask != 0 {
                        ctx.stats.divergent_branches += 1;
                    }
                    if t_mask != 0 {
                        self.run(
                            k, ci, t_range.0, t_range.1, lanes, t_mask, base, bbase, frame, ctx,
                        )?;
                    }
                    if f_mask != 0 {
                        self.run(
                            k, ci, f_range.0, f_range.1, lanes, f_mask, base, bbase, frame, ctx,
                        )?;
                    }
                    for l in 0..lanes {
                        if live & bit(l) == 0 {
                            continue;
                        }
                        let src = if t_mask & bit(l) != 0 { *t_dst } else { *f_dst };
                        let v = self.reg(base, lanes, src, l);
                        self.set_reg(base, lanes, *dst, l, v);
                    }
                }
                Instr::Decl { var, ty, init } => {
                    ctx.stats.charge(OpClass::Move, &ctx.cfg.cost);
                    for l in 0..lanes {
                        if live & bit(l) == 0 {
                            continue;
                        }
                        let v = match init {
                            Some(r) => {
                                let raw = self.reg(base, lanes, *r, l);
                                raw.cast(*ty).ok_or_else(|| {
                                    ctx.lane_err(
                                        l,
                                        ExecError::TypeMismatch {
                                            expected: ty.to_string(),
                                            found: format!("{raw}"),
                                        },
                                    )
                                })?
                            }
                            None => ty.zero(),
                        };
                        self.set_reg(base, lanes, *var, l, v);
                    }
                    self.bound[bbase + *var as usize] |= live;
                }
                Instr::Assign { var, src } => {
                    ctx.stats.charge(OpClass::Move, &ctx.cfg.cost);
                    for l in 0..lanes {
                        if live & bit(l) == 0 {
                            continue;
                        }
                        let mut v = self.reg(base, lanes, *src, l);
                        if self.bound[bbase + *var as usize] & bit(l) != 0 {
                            if let Some(ty) = self.reg(base, lanes, *var, l).ty() {
                                v = v.cast(ty).ok_or_else(|| {
                                    ctx.lane_err(
                                        l,
                                        ExecError::TypeMismatch {
                                            expected: ty.to_string(),
                                            found: format!("{v}"),
                                        },
                                    )
                                })?;
                            }
                        }
                        self.set_reg(base, lanes, *var, l, v);
                    }
                    self.bound[bbase + *var as usize] |= live;
                }
                Instr::Store { arr, var, idx, val } => {
                    ctx.stats.charge(OpClass::Store, &ctx.cfg.cost);
                    let mut touched = [(0usize, ArrayId(0), 0i64); 32];
                    let n = self.gather_touched(
                        base,
                        bbase,
                        lanes,
                        live,
                        *arr,
                        *var,
                        *idx,
                        ctx,
                        &mut touched,
                    )?;
                    self.charge_coalesced(&touched[..n], ctx);
                    for &(l, a, i) in &touched[..n] {
                        let v = self.reg(base, lanes, *val, l);
                        let actx = ctx.access_ctx(l);
                        ctx.mem
                            .store(actx, a, i, v)
                            .map_err(|er| ctx.lane_err(l, er))?;
                    }
                }
                Instr::NewArray { .. } => {
                    return Err(SimtError::Unsupported(
                        "device-side array allocation".into(),
                    ))
                }
                Instr::If {
                    cond,
                    then_range,
                    else_range,
                } => {
                    let truth = self.truth_mask(base, lanes, *cond, live, ctx)?;
                    ctx.stats.charge(OpClass::Branch, &ctx.cfg.cost);
                    ctx.stats.branches += 1;
                    let t_mask = live & truth;
                    let e_mask = live & !truth;
                    if t_mask != 0 && e_mask != 0 {
                        ctx.stats.divergent_branches += 1;
                    }
                    if t_mask != 0 {
                        self.run(
                            k,
                            ci,
                            then_range.0,
                            then_range.1,
                            lanes,
                            t_mask,
                            base,
                            bbase,
                            frame,
                            ctx,
                        )?;
                    }
                    if e_mask != 0 {
                        self.run(
                            k,
                            ci,
                            else_range.0,
                            else_range.1,
                            lanes,
                            e_mask,
                            base,
                            bbase,
                            frame,
                            ctx,
                        )?;
                    }
                }
                Instr::While {
                    cond_range,
                    cond,
                    body_range,
                } => {
                    let mut live_w = live;
                    let entered = live_w.count_ones();
                    loop {
                        let live_now = live_w & !frame.returned;
                        if live_now == 0 {
                            break;
                        }
                        self.run(
                            k,
                            ci,
                            cond_range.0,
                            cond_range.1,
                            lanes,
                            live_now,
                            base,
                            bbase,
                            frame,
                            ctx,
                        )?;
                        let truth = self.truth_mask(base, lanes, *cond, live_now, ctx)?;
                        ctx.stats.charge(OpClass::Branch, &ctx.cfg.cost);
                        ctx.stats.branches += 1;
                        live_w = live_now & truth;
                        if live_w == 0 {
                            break;
                        }
                        if live_w.count_ones() < entered {
                            ctx.stats.divergent_branches += 1;
                        }
                        self.run(
                            k,
                            ci,
                            body_range.0,
                            body_range.1,
                            lanes,
                            live_w,
                            base,
                            bbase,
                            frame,
                            ctx,
                        )?;
                    }
                }
                Instr::For {
                    var,
                    start_range,
                    start,
                    end_range,
                    end,
                    step_range,
                    step,
                    body_range,
                } => {
                    let mut starts = [0i64; 32];
                    let mut steps = [0i64; 32];
                    let mut trips = [0u64; 32];
                    // Evaluate bounds like the walker's eval_i64: full
                    // vector eval, then per-lane integrality in lane order.
                    let mut bound_of = |vm: &mut Self,
                                        range: &(u32, u32),
                                        r: Reg,
                                        out: &mut [i64; 32],
                                        ctx: &mut VmCtx<'_, M>|
                     -> Result<(), SimtError> {
                        vm.run(
                            k, ci, range.0, range.1, lanes, live, base, bbase, frame, ctx,
                        )?;
                        #[allow(clippy::needless_range_loop)] // lane indexing reads clearer
                        for l in 0..lanes {
                            if live & bit(l) == 0 {
                                continue;
                            }
                            let v = vm.reg(base, lanes, r, l);
                            out[l] = v.as_i64().ok_or_else(|| {
                                ctx.lane_err(
                                    l,
                                    ExecError::TypeMismatch {
                                        expected: "int".into(),
                                        found: format!("{v}"),
                                    },
                                )
                            })?;
                        }
                        Ok(())
                    };
                    bound_of(self, start_range, *start, &mut starts, ctx)?;
                    let mut ends = [0i64; 32];
                    bound_of(self, end_range, *end, &mut ends, ctx)?;
                    bound_of(self, step_range, *step, &mut steps, ctx)?;
                    for l in 0..lanes {
                        if live & bit(l) == 0 {
                            continue;
                        }
                        let (s, e, st) = (starts[l], ends[l], steps[l]);
                        if st <= 0 {
                            return Err(ctx.lane_err(l, ExecError::NonPositiveStep(st)));
                        }
                        trips[l] = if e <= s {
                            0
                        } else {
                            ((e - s) + st - 1) as u64 / st as u64
                        };
                    }
                    let entered = live.count_ones();
                    let max_trip = (0..lanes)
                        .filter(|&l| live & bit(l) != 0)
                        .map(|l| trips[l])
                        .max()
                        .unwrap_or(0);
                    for kk in 0..max_trip {
                        let mut round = 0u32;
                        #[allow(clippy::needless_range_loop)] // lane indexing reads clearer
                        for l in 0..lanes {
                            if live & bit(l) != 0 && kk < trips[l] && frame.returned & bit(l) == 0 {
                                round |= bit(l);
                            }
                        }
                        if round == 0 {
                            break;
                        }
                        ctx.stats.charge(OpClass::IntAlu, &ctx.cfg.cost);
                        ctx.stats.charge(OpClass::Branch, &ctx.cfg.cost);
                        ctx.stats.branches += 1;
                        if round.count_ones() < entered {
                            ctx.stats.divergent_branches += 1;
                        }
                        for l in 0..lanes {
                            if round & bit(l) != 0 {
                                let v = Value::Int((starts[l] + kk as i64 * steps[l]) as i32);
                                self.set_reg(base, lanes, *var, l, v);
                            }
                        }
                        self.bound[bbase + *var as usize] |= round;
                        self.run(
                            k,
                            ci,
                            body_range.0,
                            body_range.1,
                            lanes,
                            round,
                            base,
                            bbase,
                            frame,
                            ctx,
                        )?;
                    }
                }
                Instr::Return { val_range, val } => {
                    if !frame.allow_return {
                        return Err(SimtError::Unsupported("return in kernel body".into()));
                    }
                    if let Some(r) = val {
                        self.run(
                            k,
                            ci,
                            val_range.0,
                            val_range.1,
                            lanes,
                            live,
                            base,
                            bbase,
                            frame,
                            ctx,
                        )?;
                        for l in 0..lanes {
                            if live & bit(l) != 0 {
                                frame.ret[l] = self.reg(base, lanes, *r, l);
                            }
                        }
                    }
                    frame.returned |= live;
                }
                Instr::Break => return Err(SimtError::Unsupported("break in kernel body".into())),
                Instr::Continue => {
                    return Err(SimtError::Unsupported("continue in kernel body".into()))
                }
            }
            pc = next;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DeviceMemory;
    use crate::simt::SimtExec;
    use japonica_frontend::compile_source;
    use japonica_ir::{compile_kernel, ForLoop, Heap, Program};

    /// NaN-proof bit comparison key for a `Value`.
    fn bits(v: Value) -> (u8, u64) {
        match v {
            Value::Bool(b) => (0, b as u64),
            Value::Int(i) => (1, i as u32 as u64),
            Value::Long(i) => (2, i as u64),
            Value::Float(f) => (3, f.to_bits() as u64),
            Value::Double(d) => (4, d.to_bits()),
            Value::Array(a) => (5, a.0 as u64),
        }
    }

    /// Run one warp of `fname`'s first annotated loop through the tree
    /// walker, the bytecode VM, and the native tier, asserting
    /// bit-identical stats, device memory, and error text.
    fn assert_warp_identical(src: &str, fname: &str, arrays: &[&[f64]], int_arrays: &[&[i32]]) {
        let p = compile_source(src).unwrap();
        let (_, f) = p.function_by_name(fname).unwrap();
        let l = f.all_loops()[0].clone();
        let mut heap = Heap::new();
        let mut env = Env::with_slots(f.num_vars);
        let mut ids = Vec::new();
        let mut pi = 0usize;
        for a in arrays {
            let id = heap.alloc_doubles(a);
            ids.push((id, a.len()));
            env.set(f.params[pi].var, Value::Array(id));
            pi += 1;
        }
        for a in int_arrays {
            let id = heap.alloc_ints(a);
            ids.push((id, a.len()));
            env.set(f.params[pi].var, Value::Array(id));
            pi += 1;
        }
        let n = ids.first().map(|&(_, l)| l).unwrap_or(8) as i64;
        env.set(f.params[pi].var, Value::Int(n as i32));
        let bounds = LoopBounds {
            start: 0,
            end: n,
            step: 1,
        };
        run_both(&p, &l, &bounds, &heap, &ids, &env);
    }

    fn run_both(
        p: &Program,
        l: &ForLoop,
        bounds: &LoopBounds,
        heap: &Heap,
        ids: &[(ArrayId, usize)],
        env: &Env,
    ) {
        let cfg = DeviceConfig::default();
        let kernel = compile_kernel(p, l).expect("kernel should compile");
        let native = crate::native::compile_native_warp(&kernel);
        let trip = bounds.trip();
        for lanes in [1usize, 5, 32] {
            let lanes = lanes.min(trip as usize);
            if lanes == 0 {
                continue;
            }
            let mut dev_w = DeviceMemory::new();
            let mut dev_v = DeviceMemory::new();
            let mut dev_n = DeviceMemory::new();
            for &(id, len) in ids {
                dev_w.copy_in(heap, id, 0, len, &cfg).unwrap();
                dev_v.copy_in(heap, id, 0, len, &cfg).unwrap();
                dev_n.copy_in(heap, id, 0, len, &cfg).unwrap();
            }
            let iters: Vec<u64> = (0..lanes as u64).collect();
            let walker = SimtExec::new(p, &cfg).run_warp(l, bounds, &iters, env, 7, &mut dev_w);
            let vm =
                SimtVm::new().run_warp(&kernel, l.var, bounds, &iters, env, 7, &mut dev_v, &cfg);
            let nat = crate::native::NativeSimtVm::new()
                .run_warp(&native, l.var, bounds, &iters, env, 7, &mut dev_n, &cfg);
            for (name, other, dev) in [("bytecode", &vm, &dev_v), ("native", &nat, &dev_n)] {
                match (&walker, other) {
                    (Ok(sw), Ok(sv)) => {
                        assert_eq!(
                            sw.issue_cycles.to_bits(),
                            sv.issue_cycles.to_bits(),
                            "{name} issue_cycles bits differ at {lanes} lanes: {} vs {}",
                            sw.issue_cycles,
                            sv.issue_cycles
                        );
                        assert_eq!(
                            sw.mem_segments, sv.mem_segments,
                            "{name} mem_segments @{lanes}"
                        );
                        assert_eq!(sw.branches, sv.branches, "{name} branches @{lanes}");
                        assert_eq!(
                            sw.divergent_branches, sv.divergent_branches,
                            "{name} divergent_branches @{lanes}"
                        );
                    }
                    (Err(ew), Err(ev)) => {
                        assert_eq!(
                            format!("{ew:?}"),
                            format!("{ev:?}"),
                            "{name} error mismatch @{lanes}"
                        );
                    }
                    _ => panic!("{name} outcome mismatch @{lanes}: {walker:?} vs {other:?}"),
                }
                for &(id, len) in ids {
                    for i in 0..len {
                        assert_eq!(
                            bits(dev_w.array(id).unwrap().get(i)),
                            bits(dev.array(id).unwrap().get(i)),
                            "{name} array {id:?} element {i} differs @{lanes} lanes"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn vector_add_matches_walker() {
        let a: Vec<f64> = (0..32).map(|i| i as f64 * 1.5).collect();
        let b: Vec<f64> = (0..32).map(|i| 100.0 - i as f64).collect();
        let c = vec![0.0; 32];
        assert_warp_identical(
            "static void add(double[] a, double[] b, double[] c, int n) {
                /* acc parallel */
                for (int i = 0; i < n; i++) { c[i] = a[i] + b[i]; }
            }",
            "add",
            &[&a, &b, &c],
            &[],
        );
    }

    #[test]
    fn divergent_branch_matches_walker() {
        let a = vec![0i32; 32];
        assert_warp_identical(
            "static void f(int[] a, int n) {
                /* acc parallel */
                for (int i = 0; i < n; i++) {
                    if (i % 2 == 0) { a[i] = i * 3; } else { a[i] = i - 7; }
                }
            }",
            "f",
            &[],
            &[&a],
        );
    }

    #[test]
    fn unbalanced_inner_loop_matches_walker() {
        let a = vec![0i32; 32];
        assert_warp_identical(
            "static void f(int[] a, int n) {
                /* acc parallel */
                for (int i = 0; i < n; i++) {
                    int s = 0;
                    for (int j = 0; j < i; j++) { s = s + j * j; }
                    a[i] = s;
                }
            }",
            "f",
            &[],
            &[&a],
        );
    }

    #[test]
    fn while_and_short_circuit_match_walker() {
        let a = vec![0i32; 32];
        assert_warp_identical(
            "static void f(int[] a, int n) {
                /* acc parallel */
                for (int i = 0; i < n; i++) {
                    int k = i;
                    while (k > 1 && k < 40) {
                        if (k % 2 == 0) { k = k / 2; } else { k = 3 * k + 1; }
                    }
                    a[i] = k;
                }
            }",
            "f",
            &[],
            &[&a],
        );
    }

    #[test]
    fn intrinsics_and_calls_match_walker() {
        let a: Vec<f64> = (0..32).map(|i| (i as f64) * 0.37 - 3.0).collect();
        let b = vec![0.0f64; 32];
        assert_warp_identical(
            "static double shape(double x, double bias) {
                if (x < 0.0) { return Math.exp(x) + bias; }
                return Math.sqrt(x) * Math.max(x, bias);
            }
            static void f(double[] a, double[] b, int n) {
                /* acc parallel */
                for (int i = 0; i < n; i++) {
                    b[i] = shape(a[i], 0.5) > 1.0 ? shape(a[i], 0.25) : -1.0;
                }
            }",
            "f",
            &[&a, &b],
            &[],
        );
    }

    #[test]
    fn lane_error_matches_walker() {
        // Out-of-bounds store on one lane: the same lane must fault with
        // the same rendered error under both engines.
        let a = vec![0i32; 8];
        assert_warp_identical(
            "static void f(int[] a, int n) {
                /* acc parallel */
                for (int i = 0; i < n; i++) { a[i + 3] = i; }
            }",
            "f",
            &[],
            &[&a],
        );
    }

    #[test]
    fn strided_access_coalescing_matches_walker() {
        let a: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let b = vec![0.0f64; 64];
        let p = compile_source(
            "static void f(double[] a, double[] b, int n) {
                /* acc parallel */
                for (int i = 0; i < n; i++) { b[i * 2] = a[i * 2] + a[0]; }
            }",
        )
        .unwrap();
        let (_, f) = p.function_by_name("f").unwrap();
        let l = f.all_loops()[0].clone();
        let mut heap = Heap::new();
        let ia = heap.alloc_doubles(&a);
        let ib = heap.alloc_doubles(&b);
        let mut env = Env::with_slots(f.num_vars);
        env.set(f.params[0].var, Value::Array(ia));
        env.set(f.params[1].var, Value::Array(ib));
        env.set(f.params[2].var, Value::Int(32));
        let bounds = LoopBounds {
            start: 0,
            end: 32,
            step: 1,
        };
        run_both(&p, &l, &bounds, &heap, &[(ia, 64), (ib, 64)], &env);
    }
}

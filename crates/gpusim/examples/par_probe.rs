//! Micro-probe for host-parallel launch overhead: one big DOALL kernel,
//! repeated launches, wall time per thread count.
//!
//! ```sh
//! cargo run --release -p japonica-gpusim --example par_probe -- 1000000 8 1 2 8
//! ```

use japonica_frontend::compile_source;
use japonica_gpusim::{launch_loop_par, DeviceConfig, DeviceMemory};
use japonica_ir::{Env, Heap, LoopBounds, Value};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let reps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let threads: Vec<usize> = {
        let rest: Vec<usize> = args.filter_map(|a| a.parse().ok()).collect();
        if rest.is_empty() {
            vec![1, 2, 4, 8]
        } else {
            rest
        }
    };
    let src = "static void k(double[] a, int n) {
        /* acc parallel */
        for (int i = 0; i < n; i++) { a[i] = a[i] * 1.5 + 2.0; }
    }";
    let p = compile_source(src).expect("probe kernel compiles");
    let (_, f) = p.function_by_name("k").expect("function k");
    let l = f.all_loops()[0].clone();
    let mut heap = Heap::new();
    let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let a = heap.alloc_doubles(&vals);
    let bounds = LoopBounds {
        start: 0,
        end: n as i64,
        step: 1,
    };
    // Phase breakdown, single-threaded: interpret on plain memory vs on
    // forked views, and the absorb cost, to localize parallel-path overhead.
    {
        use japonica_gpusim::ParallelLaneMemory as _;
        let cfg = DeviceConfig::default();
        let mut dev = DeviceMemory::new();
        dev.copy_in(&heap, a, 0, n, &cfg).expect("copy_in");
        let mut env = Env::with_slots(f.num_vars);
        env.set(f.params[0].var, Value::Array(a));
        env.set(f.params[1].var, Value::Int(n as i32));
        let exec = japonica_gpusim::SimtExec::new(&p, &cfg);
        let ws = cfg.warp_size as u64;
        let n_warps = (n as u64).div_ceil(ws);

        let t0 = Instant::now();
        for w in 0..n_warps {
            let lo = w * ws;
            let hi = (lo + ws).min(n as u64);
            let warp_iters: Vec<u64> = (lo..hi).collect();
            exec.run_warp(&l, &bounds, &warp_iters, &env, w as u32, &mut dev)
                .expect("warp");
        }
        let seq = t0.elapsed().as_secs_f64();

        let mut deltas = Vec::with_capacity(n_warps as usize);
        let t0 = Instant::now();
        for w in 0..n_warps {
            let lo = w * ws;
            let hi = (lo + ws).min(n as u64);
            let warp_iters: Vec<u64> = (lo..hi).collect();
            let mut view = dev.fork();
            exec.run_warp(&l, &bounds, &warp_iters, &env, w as u32, &mut view)
                .expect("warp");
            deltas.push(DeviceMemory::harvest(view));
        }
        let viewed = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        for d in deltas {
            dev.absorb(d).expect("absorb");
        }
        let absorb = t0.elapsed().as_secs_f64();
        println!(
            "1-thread phases: run_warp(direct) {:.1} ms | run_warp(view) {:.1} ms | absorb {:.1} ms",
            seq * 1e3,
            viewed * 1e3,
            absorb * 1e3
        );
    }
    let mut base = None;
    for &t in &threads {
        let mut cfg = DeviceConfig::default();
        cfg.sim.host_threads = t;
        let mut dev = DeviceMemory::new();
        dev.copy_in(&heap, a, 0, n, &cfg).expect("copy_in");
        let mut env = Env::with_slots(f.num_vars);
        env.set(f.params[0].var, Value::Array(a));
        env.set(f.params[1].var, Value::Int(n as i32));
        let start = Instant::now();
        for _ in 0..reps {
            launch_loop_par(
                &p,
                &cfg,
                &l,
                &bounds,
                0..n as u64,
                &env,
                &mut dev,
                None,
                None,
            )
            .expect("launch");
        }
        let wall = start.elapsed().as_secs_f64();
        let b = *base.get_or_insert(wall);
        println!(
            "threads={t:>2}  {:>8.1} ms/launch  speedup {:.2}x",
            wall / reps as f64 * 1e3,
            b / wall
        );
    }
}

//! Micro-probe for host-parallel launch overhead: one big DOALL kernel,
//! repeated launches, wall time per thread count — plus a per-engine phase
//! breakdown (tree walker vs bytecode VM) and kernel-cache counters.
//!
//! ```sh
//! cargo run --release -p japonica-gpusim --example par_probe -- 1000000 8 1 2 8
//! ```

use japonica_frontend::compile_source;
use japonica_gpusim::{launch_loop_par_with, DeviceConfig, DeviceMemory, SimtVm};
use japonica_ir::{compile_kernel, Env, ExecEngine, Heap, KernelCache, LoopBounds, Value};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let reps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let threads: Vec<usize> = {
        let rest: Vec<usize> = args.filter_map(|a| a.parse().ok()).collect();
        if rest.is_empty() {
            vec![1, 2, 4, 8]
        } else {
            rest
        }
    };
    let src = "static void k(double[] a, int n) {
        /* acc parallel */
        for (int i = 0; i < n; i++) { a[i] = a[i] * 1.5 + 2.0; }
    }";
    let p = compile_source(src).expect("probe kernel compiles");
    let (_, f) = p.function_by_name("k").expect("function k");
    let l = f.all_loops()[0].clone();
    let mut heap = Heap::new();
    let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let a = heap.alloc_doubles(&vals);
    let bounds = LoopBounds {
        start: 0,
        end: n as i64,
        step: 1,
    };
    // Phase breakdown, single-threaded: interpret on plain memory vs on
    // forked views, and the absorb cost, to localize parallel-path overhead.
    {
        use japonica_gpusim::ParallelLaneMemory as _;
        let cfg = DeviceConfig::default();
        let mut dev = DeviceMemory::new();
        dev.copy_in(&heap, a, 0, n, &cfg).expect("copy_in");
        let mut env = Env::with_slots(f.num_vars);
        env.set(f.params[0].var, Value::Array(a));
        env.set(f.params[1].var, Value::Int(n as i32));
        let exec = japonica_gpusim::SimtExec::new(&p, &cfg);
        let ws = cfg.warp_size as u64;
        let n_warps = (n as u64).div_ceil(ws);

        let t0 = Instant::now();
        for w in 0..n_warps {
            let lo = w * ws;
            let hi = (lo + ws).min(n as u64);
            let warp_iters: Vec<u64> = (lo..hi).collect();
            exec.run_warp(&l, &bounds, &warp_iters, &env, w as u32, &mut dev)
                .expect("warp");
        }
        let seq = t0.elapsed().as_secs_f64();

        let mut deltas = Vec::with_capacity(n_warps as usize);
        let t0 = Instant::now();
        for w in 0..n_warps {
            let lo = w * ws;
            let hi = (lo + ws).min(n as u64);
            let warp_iters: Vec<u64> = (lo..hi).collect();
            let mut view = dev.fork();
            exec.run_warp(&l, &bounds, &warp_iters, &env, w as u32, &mut view)
                .expect("warp");
            deltas.push(DeviceMemory::harvest(view));
        }
        let viewed = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        for d in deltas {
            dev.absorb(d).expect("absorb");
        }
        let absorb = t0.elapsed().as_secs_f64();

        // Bytecode phases: the one-time compile, then the same warps on the
        // SIMT register VM.
        let t0 = Instant::now();
        let compiled = compile_kernel(&p, &l).expect("probe kernel lowers to bytecode");
        let compile = t0.elapsed().as_secs_f64();
        let mut vm = SimtVm::new();
        let t0 = Instant::now();
        for w in 0..n_warps {
            let lo = w * ws;
            let hi = (lo + ws).min(n as u64);
            let warp_iters: Vec<u64> = (lo..hi).collect();
            vm.run_warp(
                &compiled,
                l.var,
                &bounds,
                &warp_iters,
                &env,
                w as u32,
                &mut dev,
                &cfg,
            )
            .expect("warp");
        }
        let bc = t0.elapsed().as_secs_f64();
        println!(
            "1-thread phases: run_warp(direct) {:.1} ms | run_warp(view) {:.1} ms | absorb {:.1} ms",
            seq * 1e3,
            viewed * 1e3,
            absorb * 1e3
        );
        println!(
            "bytecode phases: compile {:.3} ms (once) | run_warp(bytecode) {:.1} ms | \
             walker/bytecode {:.2}x",
            compile * 1e3,
            bc * 1e3,
            seq / bc
        );
    }
    let mut base = None;
    for &t in &threads {
        let mut walls = [0.0f64; 2];
        let mut cache_line = String::new();
        for (ei, engine) in [ExecEngine::TreeWalker, ExecEngine::Bytecode]
            .into_iter()
            .enumerate()
        {
            let mut cfg = DeviceConfig::default();
            cfg.sim.host_threads = t;
            cfg.sim.engine = engine;
            let mut dev = DeviceMemory::new();
            dev.copy_in(&heap, a, 0, n, &cfg).expect("copy_in");
            let mut env = Env::with_slots(f.num_vars);
            env.set(f.params[0].var, Value::Array(a));
            env.set(f.params[1].var, Value::Int(n as i32));
            // One shared cache across launches: every repeat after the
            // first is a hit, as in the scheduler's chunk/sub-loop reuse.
            let kernels = KernelCache::new();
            let start = Instant::now();
            for _ in 0..reps {
                launch_loop_par_with(
                    &p,
                    &cfg,
                    &l,
                    &bounds,
                    0..n as u64,
                    &env,
                    &mut dev,
                    None,
                    None,
                    Some(&kernels),
                )
                .expect("launch");
            }
            walls[ei] = start.elapsed().as_secs_f64();
            if engine == ExecEngine::Bytecode {
                cache_line = format!(
                    "cache {} hits / {} misses",
                    kernels.hits(),
                    kernels.misses()
                );
            }
        }
        let [walker, bytecode] = walls;
        let b = *base.get_or_insert(bytecode);
        println!(
            "threads={t:>2}  walker {:>8.1} ms/launch | bytecode {:>8.1} ms/launch \
             ({:.2}x) | scaling {:.2}x | {cache_line}",
            walker / reps as f64 * 1e3,
            bytecode / reps as f64 * 1e3,
            walker / bytecode,
            b / bytecode
        );
    }
}

//! SIMT interpreter edge cases: divergence constructs, partial warps,
//! data-dependent inner trip counts, and coalescing boundaries.

use japonica_frontend::compile_source;
use japonica_gpusim::{launch_loop, DeviceConfig, DeviceMemory};
use japonica_ir::{ArrayId, Env, Heap, LoopBounds, Program, Value};

struct Rig {
    program: Program,
    loop_: japonica_ir::ForLoop,
    env: Env,
    dev: DeviceMemory,
    heap: Heap,
    arrays: Vec<ArrayId>,
    cfg: DeviceConfig,
}

/// Build a rig binding one i64 array per array param (filled by `fill`) and
/// `n` for every int param.
fn rig(src: &str, n: i64, len: usize, fill: impl Fn(usize) -> i64) -> Rig {
    let program = compile_source(src).unwrap();
    let f = &program.functions[0];
    let loop_ = f
        .all_loops()
        .into_iter()
        .find(|l| l.is_annotated())
        .unwrap()
        .clone();
    let mut heap = Heap::new();
    let cfg = DeviceConfig::default();
    let mut dev = DeviceMemory::new();
    let mut env = Env::with_slots(f.num_vars);
    let mut arrays = Vec::new();
    for p in &f.params {
        match p.ty {
            japonica_ir::ParamTy::Array(_) => {
                let vals: Vec<i64> = (0..len).map(&fill).collect();
                let a = heap.alloc_longs(&vals);
                dev.copy_in(&heap, a, 0, len, &cfg).unwrap();
                env.set(p.var, Value::Array(a));
                arrays.push(a);
            }
            japonica_ir::ParamTy::Scalar(_) => env.set(p.var, Value::Int(n as i32)),
        }
    }
    Rig {
        program: program.clone(),
        loop_,
        env,
        dev,
        heap,
        arrays,
        cfg,
    }
}

impl Rig {
    fn launch(&mut self, trip: u64) -> japonica_gpusim::KernelReport {
        let bounds = LoopBounds {
            start: 0,
            end: trip as i64,
            step: 1,
        };
        launch_loop(
            &self.program,
            &self.cfg,
            &self.loop_,
            &bounds,
            0..trip,
            &self.env,
            &mut self.dev,
        )
        .unwrap()
    }

    fn longs(&self, arr: ArrayId) -> Vec<i64> {
        let a = self.dev.array(arr).unwrap();
        (0..a.len()).map(|i| a.get(i).as_i64().unwrap()).collect()
    }

    /// Sequential reference on the host heap.
    fn reference(&self, arr: ArrayId, trip: u64) -> Vec<i64> {
        let mut heap = self.heap.clone();
        let mut env = self.env.clone();
        let bounds = LoopBounds {
            start: 0,
            end: trip as i64,
            step: 1,
        };
        let mut be = japonica_ir::HeapBackend::new(&mut heap);
        japonica_ir::Interp::new(&self.program)
            .exec_range(&self.loop_, &bounds, 0, trip, &mut env, &mut be)
            .unwrap();
        heap.read_ints(arr).unwrap()
    }
}

#[test]
fn partial_tail_warp_executes_correctly() {
    // 37 iterations: one full warp + a 5-lane tail warp.
    let mut r = rig(
        "static void f(long[] a, int n) {
            /* acc parallel */ for (int i = 0; i < n; i++) { a[i] = a[i] + i; }
        }",
        37,
        37,
        |i| 100 + i as i64,
    );
    let kr = r.launch(37);
    assert_eq!(kr.warps, 2);
    let expect = r.reference(r.arrays[0], 37);
    assert_eq!(r.longs(r.arrays[0]), expect);
}

#[test]
fn ternary_divergence_merges_per_lane_values() {
    let mut r = rig(
        "static void f(long[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) { a[i] = i % 3 == 0 ? i * 10 : i; }
        }",
        64,
        64,
        |_| 0,
    );
    let kr = r.launch(64);
    assert!(kr.stats.divergent_branches >= 2);
    let vals = r.longs(r.arrays[0]);
    for (i, &v) in vals.iter().enumerate() {
        let expect = if i % 3 == 0 { i as i64 * 10 } else { i as i64 };
        assert_eq!(v, expect, "lane {i}");
    }
}

#[test]
fn short_circuit_divergence_is_lazy_per_lane() {
    // (i > 0 && a[i - 1] > 50): lane 0 must NOT evaluate a[-1].
    let mut r = rig(
        "static void f(long[] a, long[] b, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) {
                if (i > 0 && a[i - 1] > 50) { b[i] = 1; } else { b[i] = 0; }
            }
        }",
        32,
        32,
        |i| i as i64 * 3,
    );
    r.launch(32);
    let b = r.longs(r.arrays[1]);
    assert_eq!(b[0], 0);
    // a[i-1] = 3(i-1) > 50 <=> i >= 18.667 -> i >= 18... 3*17=51>50 => i-1>=17 => i>=18
    assert_eq!(b[17], 0);
    assert_eq!(b[18], 1);
    assert_eq!(b[31], 1);
}

#[test]
fn data_dependent_inner_while_loops_diverge_but_compute_correctly() {
    // Collatz-ish step count per lane: wildly uneven while-trip counts.
    let mut r = rig(
        "static void f(long[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) {
                int x = i + 1;
                int steps = 0;
                while (x != 1) {
                    if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
                    steps = steps + 1;
                }
                a[i] = steps;
            }
        }",
        64,
        64,
        |_| 0,
    );
    let kr = r.launch(64);
    assert!(kr.stats.divergent_branches > 0);
    let expect = r.reference(r.arrays[0], 64);
    assert_eq!(r.longs(r.arrays[0]), expect);
    // spot-check a known Collatz length: 27 needs 111 steps
    assert_eq!(r.longs(r.arrays[0])[26], 111);
}

#[test]
fn array_length_expression_in_kernel() {
    let mut r = rig(
        "static void f(long[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) { a[i] = a.length; }
        }",
        16,
        40,
        |_| 0,
    );
    r.launch(16);
    assert!(r.longs(r.arrays[0])[..16].iter().all(|&v| v == 40));
}

#[test]
fn casts_and_long_arithmetic_in_kernel() {
    let mut r = rig(
        "static void f(long[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) {
                double d = i * 1.5;
                a[i] = (long) d * 1000000000L + (long) i;
            }
        }",
        32,
        32,
        |_| 0,
    );
    r.launch(32);
    let vals = r.longs(r.arrays[0]);
    assert_eq!(vals[3], 4 * 1_000_000_000 + 3); // trunc(4.5) = 4
    assert_eq!(vals[31], 46 * 1_000_000_000 + 31); // trunc(46.5)
}

#[test]
fn coalescing_counts_respect_segment_boundaries() {
    // 16 consecutive i64 = 128 bytes = exactly 1 segment per warp access
    // when aligned; a 32-lane unit-stride warp touches 2 segments.
    let mk = |stride: usize| {
        let mut r = rig(
            &format!(
                "static void f(long[] a, int n) {{
                    /* acc parallel */
                    for (int i = 0; i < n; i++) {{ a[i * {stride}] = 1; }}
                }}"
            ),
            32,
            32 * stride.max(1),
            |_| 0,
        );
        let kr = r.launch(32);
        kr.stats.mem_segments
    };
    assert_eq!(mk(1), 2); // 32 * 8B unit stride = 256B = 2 segments
    assert_eq!(mk(2), 4); // every other slot: spans 512B
    assert_eq!(mk(16), 32); // one segment per lane
}

#[test]
fn kernel_errors_surface_lane_iteration() {
    let mut r = rig(
        "static void f(long[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) { a[i] = a[i] / (i - 20); }
        }",
        32,
        32,
        |_| 100,
    );
    let bounds = LoopBounds {
        start: 0,
        end: 32,
        step: 1,
    };
    let err = launch_loop(
        &r.program,
        &r.cfg,
        &r.loop_,
        &bounds,
        0..32,
        &r.env,
        &mut r.dev,
    )
    .unwrap_err();
    match err {
        japonica_gpusim::SimtError::Lane { iter, error } => {
            assert_eq!(iter, 20);
            assert_eq!(error, japonica_ir::ExecError::DivisionByZero);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn uniform_inner_for_does_not_count_as_divergent() {
    let mut r = rig(
        "static void f(long[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) {
                long s = 0;
                for (int j = 0; j < 10; j++) { s = s + j; }
                a[i] = s;
            }
        }",
        32,
        32,
        |_| 0,
    );
    let kr = r.launch(32);
    assert_eq!(kr.stats.divergent_branches, 0);
    assert!(r.longs(r.arrays[0]).iter().all(|&v| v == 45));
}

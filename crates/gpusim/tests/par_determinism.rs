//! Property tests: the host-parallel kernel launcher produces `GpuStats`,
//! cycle counts, and device memory bit-identical to the sequential
//! interpreter for every `host_threads` value.

use japonica_frontend::compile_source;
use japonica_gpusim::{launch_loop_par, DeviceConfig, DeviceMemory, GpuStats, KernelReport};
use japonica_ir::{Env, Heap, LoopBounds, Value};
use proptest::prelude::*;

/// DOALL kernels with different stress profiles: uniform arithmetic, two
/// divergence shapes, and a heavier arithmetic chain. (Each iteration only
/// touches its own element — the contract the `/* acc parallel */`
/// annotation promises.)
const KERNELS: [&str; 4] = [
    "static void k(double[] a, int n) {
        /* acc parallel */
        for (int i = 0; i < n; i++) { a[i] = a[i] * 1.5 + 2.0; }
    }",
    "static void k(double[] a, int n) {
        /* acc parallel */
        for (int i = 0; i < n; i++) {
            if (i % 2 == 0) { a[i] = a[i] * 3.0; } else { a[i] = a[i] - 1.0; }
        }
    }",
    "static void k(double[] a, int n) {
        /* acc parallel */
        for (int i = 0; i < n; i++) {
            if (i % 3 == 0) { a[i] = a[i] * a[i] + 1.0; } else { a[i] = a[i] * 0.5 - 2.0; }
        }
    }",
    "static void k(double[] a, int n) {
        /* acc parallel */
        for (int i = 0; i < n; i++) { a[i] = a[i] / 3.0 + a[i] * a[i]; }
    }",
];

fn run(kernel: &str, n: usize, threads: usize) -> (KernelReport, GpuStats, Vec<u64>) {
    let p = compile_source(kernel).unwrap();
    let (_, f) = p.function_by_name("k").unwrap();
    let l = f.all_loops()[0].clone();
    let mut heap = Heap::new();
    let a = heap.alloc_doubles(&(0..n).map(|i| (i as f64).sin()).collect::<Vec<_>>());
    let mut cfg = DeviceConfig::default();
    cfg.sim.host_threads = threads;
    let mut dev = DeviceMemory::new();
    dev.copy_in(&heap, a, 0, n, &cfg).unwrap();
    let mut env = Env::with_slots(f.num_vars);
    env.set(f.params[0].var, Value::Array(a));
    env.set(f.params[1].var, Value::Int(n as i32));
    let bounds = LoopBounds {
        start: 0,
        end: n as i64,
        step: 1,
    };
    let r = launch_loop_par(
        &p,
        &cfg,
        &l,
        &bounds,
        0..n as u64,
        &env,
        &mut dev,
        None,
        None,
    )
    .unwrap();
    // Memory as raw f64 bits: identical must mean identical.
    let mem: Vec<u64> = {
        let arr = dev.array(a).unwrap();
        (0..arr.len())
            .map(|i| match arr.get(i) {
                Value::Double(d) => d.to_bits(),
                v => panic!("unexpected value {v:?}"),
            })
            .collect()
    };
    let stats = r.stats.clone();
    (r, stats, mem)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn gpu_stats_are_thread_count_invariant(
        kernel_idx in 0usize..KERNELS.len(),
        n in 64usize..3000,
    ) {
        let kernel = KERNELS[kernel_idx];
        let (seq_report, seq_stats, seq_mem) = run(kernel, n, 1);
        for threads in [2usize, 8] {
            let (par_report, par_stats, par_mem) = run(kernel, n, threads);
            prop_assert_eq!(&seq_stats, &par_stats, "GpuStats diverged at {} threads", threads);
            prop_assert_eq!(
                seq_report.critical_cycles.to_bits(),
                par_report.critical_cycles.to_bits(),
                "critical cycles diverged at {} threads", threads
            );
            prop_assert_eq!(
                seq_report.time_s.to_bits(),
                par_report.time_s.to_bits(),
                "kernel time diverged at {} threads", threads
            );
            prop_assert_eq!(&seq_report, &par_report);
            prop_assert_eq!(&seq_mem, &par_mem, "memory diverged at {} threads", threads);
        }
    }
}

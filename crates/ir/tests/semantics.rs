//! Property-based and edge-case tests of the IR's Java-faithful value
//! semantics and the interpreter's evaluation rules.

use japonica_ir::builder::FnBuilder;
use japonica_ir::{
    ops, BinOp, Expr, Heap, HeapBackend, Interp, Intrinsic, LoopId, Program, Stmt, Ty, UnOp, Value,
};
use proptest::prelude::*;

fn any_int() -> impl Strategy<Value = i32> {
    prop_oneof![
        any::<i32>(),
        Just(0),
        Just(1),
        Just(-1),
        Just(i32::MAX),
        Just(i32::MIN),
    ]
}

fn any_long() -> impl Strategy<Value = i64> {
    prop_oneof![any::<i64>(), Just(0i64), Just(i64::MAX), Just(i64::MIN),]
}

proptest! {
    /// Integer arithmetic wraps exactly like Java primitives.
    #[test]
    fn int_ops_wrap_like_java(a in any_int(), b in any_int()) {
        let got = ops::binary(BinOp::Add, Value::Int(a), Value::Int(b)).unwrap();
        prop_assert_eq!(got, Value::Int(a.wrapping_add(b)));
        let got = ops::binary(BinOp::Mul, Value::Int(a), Value::Int(b)).unwrap();
        prop_assert_eq!(got, Value::Int(a.wrapping_mul(b)));
        let got = ops::binary(BinOp::Sub, Value::Int(a), Value::Int(b)).unwrap();
        prop_assert_eq!(got, Value::Int(a.wrapping_sub(b)));
    }

    /// Division and remainder satisfy the Euclidean identity when defined.
    #[test]
    fn div_rem_identity(a in any_int(), b in any_int()) {
        prop_assume!(b != 0);
        prop_assume!(!(a == i32::MIN && b == -1)); // JVM wraps; identity still holds but via wrapping
        let d = ops::binary(BinOp::Div, Value::Int(a), Value::Int(b)).unwrap();
        let r = ops::binary(BinOp::Rem, Value::Int(a), Value::Int(b)).unwrap();
        if let (Value::Int(d), Value::Int(r)) = (d, r) {
            prop_assert_eq!(d.wrapping_mul(b).wrapping_add(r), a);
            // remainder takes the dividend's sign (or is zero)
            prop_assert!(r == 0 || (r < 0) == (a < 0));
        } else {
            panic!();
        }
    }

    /// Shifts mask the count to 5 bits for int, 6 bits for long.
    #[test]
    fn shift_counts_mask(a in any_int(), s in any_int()) {
        let got = ops::binary(BinOp::Shl, Value::Int(a), Value::Int(s)).unwrap();
        prop_assert_eq!(got, Value::Int(a.wrapping_shl((s & 31) as u32)));
        let got = ops::binary(BinOp::UShr, Value::Int(a), Value::Int(s)).unwrap();
        prop_assert_eq!(got, Value::Int(((a as u32) >> (s & 31)) as i32));
    }

    #[test]
    fn long_shifts_mask_to_six_bits(a in any_long(), s in any_int()) {
        let got = ops::binary(BinOp::Shl, Value::Long(a), Value::Int(s)).unwrap();
        prop_assert_eq!(got, Value::Long(a.wrapping_shl((s & 63) as u32)));
    }

    /// Casting int -> long -> int is the identity.
    #[test]
    fn int_long_roundtrip(a in any_int()) {
        let l = Value::Int(a).cast(Ty::Long).unwrap();
        prop_assert_eq!(l.cast(Ty::Int).unwrap(), Value::Int(a));
    }

    /// Numeric promotion is commutative in the resulting type.
    #[test]
    fn promotion_type_is_symmetric(a in any_int(), b in any_long()) {
        let x = ops::binary(BinOp::Add, Value::Int(a), Value::Long(b)).unwrap();
        let y = ops::binary(BinOp::Add, Value::Long(b), Value::Int(a)).unwrap();
        prop_assert_eq!(x, y);
        prop_assert_eq!(x.ty(), Some(Ty::Long));
    }

    /// Comparison operators form a coherent total preorder on non-NaN
    /// doubles.
    #[test]
    fn comparisons_coherent(a in any::<f64>(), b in any::<f64>()) {
        prop_assume!(!a.is_nan() && !b.is_nan());
        let lt = ops::binary(BinOp::Lt, Value::Double(a), Value::Double(b)).unwrap();
        let ge = ops::binary(BinOp::Ge, Value::Double(a), Value::Double(b)).unwrap();
        prop_assert_eq!(lt, Value::Bool(a < b));
        prop_assert_eq!(ge, Value::Bool(a >= b));
        if let (Value::Bool(l), Value::Bool(g)) = (lt, ge) {
            prop_assert_ne!(l, g);
        }
    }

    /// Min/max agree with comparisons.
    #[test]
    fn min_max_consistent(a in any_int(), b in any_int()) {
        let mx = ops::intrinsic(Intrinsic::Max, &[Value::Int(a), Value::Int(b)]).unwrap();
        let mn = ops::intrinsic(Intrinsic::Min, &[Value::Int(a), Value::Int(b)]).unwrap();
        prop_assert_eq!(mx, Value::Int(a.max(b)));
        prop_assert_eq!(mn, Value::Int(a.min(b)));
    }

    /// abs/neg interplay (wrapping at MIN like Java).
    #[test]
    fn abs_matches_java(a in any_int()) {
        let got = ops::intrinsic(Intrinsic::Abs, &[Value::Int(a)]).unwrap();
        prop_assert_eq!(got, Value::Int(a.wrapping_abs()));
        let neg = ops::unary(UnOp::Neg, Value::Int(a)).unwrap();
        prop_assert_eq!(neg, Value::Int(a.wrapping_neg()));
    }
}

/// A hand-built IR loop mixing every statement form, run through the
/// interpreter: documents the exact expected trace semantics.
#[test]
fn kitchen_sink_function_via_builder() {
    let mut p = Program::new();
    let mut f = FnBuilder::new("kitchen");
    let n = f.param_scalar("n", Ty::Int);
    let out = f.param_array("out", Ty::Long);
    let acc = f.decl("acc", Ty::Long, Expr::long(0));
    f.for_loop(
        "i",
        Expr::int(0),
        Expr::var(n),
        Expr::int(1),
        None,
        |fb, i| {
            let t = fb.fresh("t");
            vec![
                Stmt::DeclVar {
                    var: t,
                    ty: Ty::Long,
                    init: Some(Expr::var(i).mul(Expr::var(i))),
                },
                Stmt::If {
                    cond: Expr::var(i).rem(Expr::int(2)).eq(Expr::int(0)),
                    then_branch: vec![Stmt::Assign {
                        var: acc,
                        value: Expr::var(acc).add(Expr::var(t)),
                    }],
                    else_branch: vec![Stmt::Assign {
                        var: acc,
                        value: Expr::var(acc).sub(Expr::var(i)),
                    }],
                },
                Stmt::Store {
                    array: out,
                    index: Expr::var(i),
                    value: Expr::var(acc),
                    span: japonica_ir::Span::none(),
                },
            ]
        },
    );
    f.push(Stmt::Return(Some(Expr::var(acc))));
    p.add_function(f.finish(Some(Ty::Long)));

    let mut heap = Heap::new();
    let out_arr = heap.alloc(Ty::Long, 6);
    let mut be = HeapBackend::new(&mut heap);
    let r = Interp::new(&p)
        .call_by_name("kitchen", &[Value::Int(6), Value::Array(out_arr)], &mut be)
        .unwrap();
    // i=0:+0 ; i=1:-1 ; i=2:+4=3 ; i=3:-3=0 ; i=4:+16=16 ; i=5:-5=11
    assert_eq!(r, Some(Value::Long(11)));
    assert_eq!(heap.read_ints(out_arr).unwrap(), vec![0, -1, 3, 0, 16, 11]);
}

#[test]
fn exec_range_is_equivalent_to_chunked_union() {
    // Running [0,N) in one go equals running [0,k) then [k,N).
    let mut p = Program::new();
    let mut f = FnBuilder::new("fill");
    let a = f.param_array("a", Ty::Long);
    let n = f.param_scalar("n", Ty::Int);
    let lid = f.for_loop(
        "i",
        Expr::int(0),
        Expr::var(n),
        Expr::int(1),
        None,
        |_, i| {
            vec![Stmt::Store {
                array: a,
                index: Expr::var(i),
                value: Expr::var(i).mul(Expr::var(i)),
                span: japonica_ir::Span::none(),
            }]
        },
    );
    p.add_function(f.finish(None));
    let func = &p.functions[0];
    let l = func.find_loop(lid).unwrap();

    let run = |splits: &[u64]| -> Vec<i64> {
        let mut heap = Heap::new();
        let arr = heap.alloc(Ty::Long, 100);
        let mut env = japonica_ir::Env::with_slots(func.num_vars);
        env.set(func.params[0].var, Value::Array(arr));
        env.set(func.params[1].var, Value::Int(100));
        let bounds = japonica_ir::LoopBounds {
            start: 0,
            end: 100,
            step: 1,
        };
        let mut be = HeapBackend::new(&mut heap);
        let interp = Interp::new(&p);
        let mut lo = 0;
        for &hi in splits {
            interp
                .exec_range(l, &bounds, lo, hi, &mut env, &mut be)
                .unwrap();
            lo = hi;
        }
        interp
            .exec_range(l, &bounds, lo, 100, &mut env, &mut be)
            .unwrap();
        heap.read_ints(arr).unwrap()
    };
    assert_eq!(run(&[]), run(&[1, 7, 50, 99]));
}

#[test]
fn loop_ids_survive_find_loop_roundtrip() {
    let mut p = Program::new();
    let mut f = FnBuilder::new("g");
    let n = f.param_scalar("n", Ty::Int);
    let ids: Vec<LoopId> = (0..3)
        .map(|_| {
            f.for_loop(
                "i",
                Expr::int(0),
                Expr::var(n),
                Expr::int(1),
                None,
                |_, _| vec![],
            )
        })
        .collect();
    p.add_function(f.finish(None));
    for id in ids {
        let (_, _, l) = p.find_loop(id).unwrap();
        assert_eq!(l.id, id);
    }
}

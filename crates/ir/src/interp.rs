//! Tree-walking interpreter over the IR, generic over a [`Backend`].
//!
//! Every execution engine in Japonica is this interpreter plus a different
//! backend:
//!
//! * sequential / multi-threaded CPU execution — a plain heap backend with a
//!   CPU cost model;
//! * GPU warp lanes — the SIMT driver in `japonica-gpusim` steps lanes in
//!   lock-step, each lane being one interpreter activation over device
//!   memory;
//! * GPU-TLS speculative execution — a write-buffering backend that defers
//!   stores and records access metadata for the dependency-check phase;
//! * profiling — a tracing backend that logs `(iteration, array, index,
//!   read/write)` tuples for the dependency-density analysis.

use crate::cost::{CostTable, OpClass, OpCounts};
use crate::error::ExecError;
use crate::expr::{BinOp, Expr, Intrinsic, UnOp};
use crate::heap::{ArrayId, Heap};
use crate::ops;
use crate::program::{FnId, ParamTy, Program};
use crate::stmt::{ForLoop, Stmt};
use crate::types::{Ty, Value};
use crate::VarId;

/// Memory + accounting interface the interpreter executes against.
///
/// `op` is invoked for every dynamically executed operation *before* the
/// operation's own effect; memory methods both perform the access and give
/// the backend a chance to trace, redirect or price it.
pub trait Backend {
    /// Load one array element.
    fn load(&mut self, arr: ArrayId, idx: i64) -> Result<Value, ExecError>;
    /// Store one array element.
    fn store(&mut self, arr: ArrayId, idx: i64, v: Value) -> Result<(), ExecError>;
    /// Array length (must be stable during a loop execution).
    fn array_len(&mut self, arr: ArrayId) -> Result<usize, ExecError>;
    /// Allocate a new zeroed array.
    fn alloc(&mut self, ty: Ty, len: usize) -> Result<ArrayId, ExecError>;
    /// Account one executed operation.
    #[inline]
    fn op(&mut self, _cls: OpClass) {}
}

/// The canonical backend: direct execution against a host [`Heap`],
/// no accounting.
pub struct HeapBackend<'h> {
    /// The underlying heap.
    pub heap: &'h mut Heap,
}

impl<'h> HeapBackend<'h> {
    /// Wrap a heap.
    pub fn new(heap: &'h mut Heap) -> HeapBackend<'h> {
        HeapBackend { heap }
    }
}

impl Backend for HeapBackend<'_> {
    fn load(&mut self, arr: ArrayId, idx: i64) -> Result<Value, ExecError> {
        self.heap.load(arr, idx)
    }
    fn store(&mut self, arr: ArrayId, idx: i64, v: Value) -> Result<(), ExecError> {
        self.heap.store(arr, idx, v)
    }
    fn array_len(&mut self, arr: ArrayId) -> Result<usize, ExecError> {
        self.heap.len_of(arr)
    }
    fn alloc(&mut self, ty: Ty, len: usize) -> Result<ArrayId, ExecError> {
        Ok(self.heap.alloc(ty, len))
    }
}

/// A backend adapter that counts operations (and optionally prices them
/// against a [`CostTable`]) while delegating memory to an inner backend.
pub struct CountingBackend<B> {
    /// Inner backend that owns memory.
    pub inner: B,
    /// Accumulated op counts.
    pub counts: OpCounts,
}

impl<B: Backend> CountingBackend<B> {
    /// Wrap `inner` with fresh counts.
    pub fn new(inner: B) -> CountingBackend<B> {
        CountingBackend {
            inner,
            counts: OpCounts::new(),
        }
    }

    /// Cycles implied by the recorded counts under `table`.
    pub fn cycles(&self, table: &CostTable) -> f64 {
        table.total(&self.counts)
    }
}

impl<B: Backend> Backend for CountingBackend<B> {
    fn load(&mut self, arr: ArrayId, idx: i64) -> Result<Value, ExecError> {
        self.inner.load(arr, idx)
    }
    fn store(&mut self, arr: ArrayId, idx: i64, v: Value) -> Result<(), ExecError> {
        self.inner.store(arr, idx, v)
    }
    fn array_len(&mut self, arr: ArrayId) -> Result<usize, ExecError> {
        self.inner.array_len(arr)
    }
    fn alloc(&mut self, ty: Ty, len: usize) -> Result<ArrayId, ExecError> {
        self.inner.alloc(ty, len)
    }
    #[inline]
    fn op(&mut self, cls: OpClass) {
        self.counts.record(cls);
        self.inner.op(cls);
    }
}

/// A function-activation environment: one slot per variable.
#[derive(Debug, Clone, Default)]
pub struct Env {
    slots: Vec<Option<Value>>,
}

impl Env {
    /// Environment with `n` unassigned slots.
    pub fn with_slots(n: u32) -> Env {
        Env {
            slots: vec![None; n as usize],
        }
    }

    /// Read a slot.
    #[inline]
    pub fn get(&self, v: VarId) -> Result<Value, ExecError> {
        self.slots
            .get(v.index())
            .copied()
            .flatten()
            .ok_or(ExecError::UnboundVariable(v))
    }

    /// Write a slot (grows the environment if needed, which only hand-built
    /// IR relies on).
    #[inline]
    pub fn set(&mut self, v: VarId, val: Value) {
        if v.index() >= self.slots.len() {
            self.slots.resize(v.index() + 1, None);
        }
        self.slots[v.index()] = Some(val);
    }

    /// Is the slot assigned?
    pub fn is_set(&self, v: VarId) -> bool {
        self.slots.get(v.index()).copied().flatten().is_some()
    }
}

/// Control-flow outcome of executing a statement block.
#[derive(Debug, Clone, PartialEq)]
pub enum Flow {
    /// Fell through normally.
    Normal,
    /// `return` reached, with the returned value.
    Return(Option<Value>),
    /// `break` propagating to the innermost loop.
    Break,
    /// `continue` propagating to the innermost loop.
    Continue,
}

/// Evaluated bounds of a canonical loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopBounds {
    /// First induction value.
    pub start: i64,
    /// Exclusive bound.
    pub end: i64,
    /// Positive step.
    pub step: i64,
}

impl LoopBounds {
    /// Trip count (number of iterations).
    pub fn trip(&self) -> u64 {
        if self.end <= self.start {
            0
        } else {
            (((self.end - self.start) + self.step - 1) / self.step) as u64
        }
    }

    /// Induction value of 0-based iteration `k`.
    pub fn value_of(&self, k: u64) -> i64 {
        self.start + (k as i64) * self.step
    }
}

/// The tree-walking interpreter. Stateless apart from the program reference;
/// all mutable state lives in the [`Env`] and the [`Backend`].
pub struct Interp<'p> {
    program: &'p Program,
    max_depth: usize,
}

impl<'p> Interp<'p> {
    /// Interpreter over `program` with the default call-depth limit (64).
    pub fn new(program: &'p Program) -> Interp<'p> {
        Interp {
            program,
            max_depth: 64,
        }
    }

    /// Override the call-depth limit.
    pub fn with_max_depth(mut self, d: usize) -> Interp<'p> {
        self.max_depth = d;
        self
    }

    /// The program being interpreted.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Call function `id` with `args`, returning its result (`None` for
    /// `void`).
    pub fn call<B: Backend>(
        &self,
        id: FnId,
        args: &[Value],
        be: &mut B,
    ) -> Result<Option<Value>, ExecError> {
        self.call_at_depth(id, args, be, 0)
    }

    /// Call a function by name.
    pub fn call_by_name<B: Backend>(
        &self,
        name: &str,
        args: &[Value],
        be: &mut B,
    ) -> Result<Option<Value>, ExecError> {
        let (id, _) = self
            .program
            .function_by_name(name)
            .ok_or_else(|| ExecError::UnknownFunction(name.to_string()))?;
        self.call(id, args, be)
    }

    fn call_at_depth<B: Backend>(
        &self,
        id: FnId,
        args: &[Value],
        be: &mut B,
        depth: usize,
    ) -> Result<Option<Value>, ExecError> {
        if depth >= self.max_depth {
            return Err(ExecError::StackOverflow);
        }
        let f = self
            .program
            .function(id)
            .ok_or_else(|| ExecError::UnknownFunction(id.to_string()))?;
        if args.len() != f.params.len() {
            return Err(ExecError::ArityMismatch {
                function: f.name.clone(),
                expected: f.params.len(),
                found: args.len(),
            });
        }
        be.op(OpClass::Call);
        let mut env = Env::with_slots(f.num_vars);
        for (p, &a) in f.params.iter().zip(args) {
            // Apply the assignment conversion for scalar params.
            let bound = match p.ty {
                ParamTy::Scalar(t) => a.cast(t).ok_or_else(|| ExecError::TypeMismatch {
                    expected: t.to_string(),
                    found: format!("{a}"),
                })?,
                ParamTy::Array(_) => match a {
                    Value::Array(_) => a,
                    other => {
                        return Err(ExecError::TypeMismatch {
                            expected: format!("{}", p.ty),
                            found: format!("{other}"),
                        })
                    }
                },
            };
            env.set(p.var, bound);
        }
        match self.exec_block(&f.body, &mut env, be, depth)? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(None),
            Flow::Break | Flow::Continue => Err(ExecError::Aborted(
                "break/continue escaped function body".into(),
            )),
        }
    }

    /// Execute a statement block.
    pub fn exec_block<B: Backend>(
        &self,
        stmts: &[Stmt],
        env: &mut Env,
        be: &mut B,
        depth: usize,
    ) -> Result<Flow, ExecError> {
        for s in stmts {
            match self.exec_stmt(s, env, be, depth)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    /// Execute one statement.
    pub fn exec_stmt<B: Backend>(
        &self,
        stmt: &Stmt,
        env: &mut Env,
        be: &mut B,
        depth: usize,
    ) -> Result<Flow, ExecError> {
        match stmt {
            Stmt::DeclVar { var, ty, init } => {
                let v = match init {
                    Some(e) => {
                        let raw = self.eval(e, env, be, depth)?;
                        raw.cast(*ty).ok_or_else(|| ExecError::TypeMismatch {
                            expected: ty.to_string(),
                            found: format!("{raw}"),
                        })?
                    }
                    None => ty.zero(),
                };
                be.op(OpClass::Move);
                env.set(*var, v);
                Ok(Flow::Normal)
            }
            Stmt::NewArray { var, elem, len } => {
                let n = self.eval(len, env, be, depth)?.as_i64().ok_or_else(|| {
                    ExecError::TypeMismatch {
                        expected: "int".into(),
                        found: "non-integral length".into(),
                    }
                })?;
                if n < 0 {
                    return Err(ExecError::NegativeArraySize(n));
                }
                be.op(OpClass::Move);
                let id = be.alloc(*elem, n as usize)?;
                env.set(*var, Value::Array(id));
                Ok(Flow::Normal)
            }
            Stmt::Assign { var, value } => {
                let mut v = self.eval(value, env, be, depth)?;
                // Preserve the declared scalar type across re-assignment
                // (e.g. `double x; x = 1;` stores 1.0).
                if let Ok(old) = env.get(*var) {
                    if let Some(ty) = old.ty() {
                        v = v.cast(ty).ok_or_else(|| ExecError::TypeMismatch {
                            expected: ty.to_string(),
                            found: format!("{v}"),
                        })?;
                    }
                }
                be.op(OpClass::Move);
                env.set(*var, v);
                Ok(Flow::Normal)
            }
            Stmt::Store {
                array,
                index,
                value,
                ..
            } => {
                let arr = env
                    .get(*array)?
                    .as_array()
                    .ok_or_else(|| ExecError::TypeMismatch {
                        expected: "array".into(),
                        found: format!("{}", *array),
                    })?;
                let idx = self.eval_index(index, env, be, depth)?;
                let v = self.eval(value, env, be, depth)?;
                be.op(OpClass::Store);
                be.store(arr, idx, v)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.eval_bool(cond, env, be, depth)?;
                be.op(OpClass::Branch);
                if c {
                    self.exec_block(then_branch, env, be, depth)
                } else {
                    self.exec_block(else_branch, env, be, depth)
                }
            }
            Stmt::For(l) => self.exec_for_sequential(l, env, be, depth),
            Stmt::While { cond, body } => {
                loop {
                    let c = self.eval_bool(cond, env, be, depth)?;
                    be.op(OpClass::Branch);
                    if !c {
                        break;
                    }
                    match self.exec_block(body, env, be, depth)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.eval(e, env, be, depth)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::ExprStmt(e) => {
                // A call in statement position may be void; evaluate it
                // without demanding a value.
                if let Expr::Call(fid, args) = e {
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(self.eval(a, env, be, depth)?);
                    }
                    self.call_at_depth(*fid, &vals, be, depth + 1)?;
                } else {
                    self.eval(e, env, be, depth)?;
                }
                Ok(Flow::Normal)
            }
        }
    }

    /// Evaluate a canonical loop's bounds in the current environment.
    pub fn loop_bounds<B: Backend>(
        &self,
        l: &ForLoop,
        env: &mut Env,
        be: &mut B,
    ) -> Result<LoopBounds, ExecError> {
        let as_int = |v: Value| {
            v.as_i64().ok_or_else(|| ExecError::TypeMismatch {
                expected: "int".into(),
                found: format!("{v}"),
            })
        };
        let start = as_int(self.eval(&l.start, env, be, 0)?)?;
        let end = as_int(self.eval(&l.end, env, be, 0)?)?;
        let step = as_int(self.eval(&l.step, env, be, 0)?)?;
        if step <= 0 {
            return Err(ExecError::NonPositiveStep(step));
        }
        Ok(LoopBounds { start, end, step })
    }

    /// Execute a canonical loop sequentially (used for un-annotated loops
    /// and for the paper's mode C sequential dispatch).
    pub fn exec_for_sequential<B: Backend>(
        &self,
        l: &ForLoop,
        env: &mut Env,
        be: &mut B,
        depth: usize,
    ) -> Result<Flow, ExecError> {
        let bounds = self.loop_bounds(l, env, be)?;
        for k in 0..bounds.trip() {
            match self.exec_iteration(l, &bounds, k, env, be, depth)? {
                Flow::Normal | Flow::Continue => {}
                Flow::Break => break,
                ret @ Flow::Return(_) => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    /// Execute 0-based iteration `k` of a canonical loop: binds the
    /// induction variable and runs the body once. This is the primitive
    /// every parallel executor builds chunks from.
    pub fn exec_iteration<B: Backend>(
        &self,
        l: &ForLoop,
        bounds: &LoopBounds,
        k: u64,
        env: &mut Env,
        be: &mut B,
        depth: usize,
    ) -> Result<Flow, ExecError> {
        // Loop bookkeeping: induction update + bound test + back edge.
        be.op(OpClass::IntAlu);
        be.op(OpClass::Branch);
        env.set(l.var, Value::Int(bounds.value_of(k) as i32));
        self.exec_block(&l.body, env, be, depth)
    }

    /// Execute iterations `k_lo..k_hi` of a canonical loop against `env`.
    /// `break` terminates the range early (reported via the returned flow).
    pub fn exec_range<B: Backend>(
        &self,
        l: &ForLoop,
        bounds: &LoopBounds,
        k_lo: u64,
        k_hi: u64,
        env: &mut Env,
        be: &mut B,
    ) -> Result<Flow, ExecError> {
        for k in k_lo..k_hi {
            match self.exec_iteration(l, bounds, k, env, be, 0)? {
                Flow::Normal | Flow::Continue => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn eval_bool<B: Backend>(
        &self,
        e: &Expr,
        env: &mut Env,
        be: &mut B,
        depth: usize,
    ) -> Result<bool, ExecError> {
        let v = self.eval(e, env, be, depth)?;
        v.as_bool().ok_or_else(|| ExecError::TypeMismatch {
            expected: "boolean".into(),
            found: format!("{v}"),
        })
    }

    fn eval_index<B: Backend>(
        &self,
        e: &Expr,
        env: &mut Env,
        be: &mut B,
        depth: usize,
    ) -> Result<i64, ExecError> {
        let v = self.eval(e, env, be, depth)?;
        v.as_i64().ok_or_else(|| ExecError::TypeMismatch {
            expected: "int index".into(),
            found: format!("{v}"),
        })
    }

    /// Evaluate an expression.
    pub fn eval<B: Backend>(
        &self,
        e: &Expr,
        env: &mut Env,
        be: &mut B,
        depth: usize,
    ) -> Result<Value, ExecError> {
        match e {
            Expr::Const(v) => {
                be.op(OpClass::Move);
                Ok(*v)
            }
            Expr::Var(v) => {
                be.op(OpClass::Move);
                env.get(*v)
            }
            Expr::Unary(op, a) => {
                let va = self.eval(a, env, be, depth)?;
                be.op(unop_class(*op, va));
                ops::unary(*op, va)
            }
            Expr::Binary(op, a, b) if op.is_short_circuit() => {
                let va = self.eval_bool(a, env, be, depth)?;
                be.op(OpClass::Branch);
                match (op, va) {
                    (BinOp::LAnd, false) => Ok(Value::Bool(false)),
                    (BinOp::LOr, true) => Ok(Value::Bool(true)),
                    _ => {
                        let vb = self.eval_bool(b, env, be, depth)?;
                        Ok(Value::Bool(vb))
                    }
                }
            }
            Expr::Binary(op, a, b) => {
                let va = self.eval(a, env, be, depth)?;
                let vb = self.eval(b, env, be, depth)?;
                be.op(binop_class(*op, va, vb));
                ops::binary(*op, va, vb)
            }
            Expr::Cast(ty, a) => {
                let va = self.eval(a, env, be, depth)?;
                be.op(OpClass::Cast);
                va.cast(*ty).ok_or_else(|| ExecError::InvalidCast {
                    from: format!("{va}"),
                    to: *ty,
                })
            }
            Expr::Index { array, index } => {
                let arr = env
                    .get(*array)?
                    .as_array()
                    .ok_or_else(|| ExecError::TypeMismatch {
                        expected: "array".into(),
                        found: format!("{}", *array),
                    })?;
                let idx = self.eval_index(index, env, be, depth)?;
                be.op(OpClass::Load);
                be.load(arr, idx)
            }
            Expr::Len(v) => {
                let arr = env
                    .get(*v)?
                    .as_array()
                    .ok_or_else(|| ExecError::TypeMismatch {
                        expected: "array".into(),
                        found: format!("{}", *v),
                    })?;
                be.op(OpClass::Move);
                Ok(Value::Int(be.array_len(arr)? as i32))
            }
            Expr::Intrinsic(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env, be, depth)?);
                }
                be.op(intrinsic_class(*f));
                ops::intrinsic(*f, &vals)
            }
            Expr::Call(fid, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env, be, depth)?);
                }
                let ret = self.call_at_depth(*fid, &vals, be, depth + 1)?;
                ret.ok_or_else(|| ExecError::TypeMismatch {
                    expected: "value".into(),
                    found: "void call in expression".into(),
                })
            }
            Expr::Ternary(c, t, f) => {
                let cv = self.eval_bool(c, env, be, depth)?;
                be.op(OpClass::Branch);
                if cv {
                    self.eval(t, env, be, depth)
                } else {
                    self.eval(f, env, be, depth)
                }
            }
        }
    }
}

fn is_float(v: Value) -> bool {
    matches!(v, Value::Float(_) | Value::Double(_))
}

fn unop_class(op: UnOp, v: Value) -> OpClass {
    crate::cost::unop_class(op, is_float(v))
}

fn binop_class(op: BinOp, a: Value, b: Value) -> OpClass {
    crate::cost::binop_class(op, is_float(a) || is_float(b))
}

fn intrinsic_class(f: Intrinsic) -> OpClass {
    crate::cost::intrinsic_class(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FnBuilder;

    /// `sum(n) = 0 + 1 + ... + (n-1)` via a canonical loop.
    fn sum_program() -> Program {
        let mut p = Program::new();
        let mut f = FnBuilder::new("sum");
        let n = f.param_scalar("n", Ty::Int);
        let acc = f.fresh("acc");
        let i = f.fresh("i");
        f.push(Stmt::DeclVar {
            var: acc,
            ty: Ty::Int,
            init: Some(Expr::int(0)),
        });
        f.push(Stmt::For(ForLoop {
            id: crate::LoopId(0),
            var: i,
            start: Expr::int(0),
            end: Expr::var(n),
            step: Expr::int(1),
            body: vec![Stmt::Assign {
                var: acc,
                value: Expr::var(acc).add(Expr::var(i)),
            }],
            annot: None,
            span: crate::Span::none(),
        }));
        f.push(Stmt::Return(Some(Expr::var(acc))));
        p.add_function(f.finish(Some(Ty::Int)));
        p
    }

    #[test]
    fn loop_bounds_trip_counts() {
        let b = LoopBounds {
            start: 0,
            end: 10,
            step: 3,
        };
        assert_eq!(b.trip(), 4);
        assert_eq!(b.value_of(3), 9);
        let empty = LoopBounds {
            start: 5,
            end: 5,
            step: 1,
        };
        assert_eq!(empty.trip(), 0);
    }

    #[test]
    fn sum_loop_executes() {
        let p = sum_program();
        let mut heap = Heap::new();
        let mut be = HeapBackend::new(&mut heap);
        let interp = Interp::new(&p);
        let r = interp
            .call_by_name("sum", &[Value::Int(10)], &mut be)
            .unwrap();
        assert_eq!(r, Some(Value::Int(45)));
    }

    #[test]
    fn counting_backend_records_ops() {
        let p = sum_program();
        let mut heap = Heap::new();
        let mut be = CountingBackend::new(HeapBackend::new(&mut heap));
        let interp = Interp::new(&p);
        interp
            .call_by_name("sum", &[Value::Int(4)], &mut be)
            .unwrap();
        assert!(be.counts.count(OpClass::IntAlu) >= 4);
        assert!(be.counts.count(OpClass::Branch) >= 4);
        assert_eq!(be.counts.count(OpClass::Call), 1);
        assert!(be.cycles(&CostTable::default()) > 0.0);
    }

    #[test]
    fn exec_range_runs_partial_iterations() {
        let p = sum_program();
        let f = p.function_by_name("sum").unwrap().1;
        let l = match &f.body[1] {
            Stmt::For(l) => l,
            _ => panic!(),
        };
        let mut heap = Heap::new();
        let mut be = HeapBackend::new(&mut heap);
        let interp = Interp::new(&p);
        let mut env = Env::with_slots(f.num_vars);
        env.set(VarId(0), Value::Int(100)); // n
        env.set(l.body_target_acc(), Value::Int(0));
        let bounds = interp.loop_bounds(l, &mut env, &mut be).unwrap();
        assert_eq!(bounds.trip(), 100);
        interp
            .exec_range(l, &bounds, 10, 20, &mut env, &mut be)
            .unwrap();
        // iterations 10..20 sum to 145
        assert_eq!(env.get(l.body_target_acc()).unwrap(), Value::Int(145));
    }

    impl ForLoop {
        /// test helper: the accumulator var in `sum_program`'s loop body.
        fn body_target_acc(&self) -> VarId {
            match &self.body[0] {
                Stmt::Assign { var, .. } => *var,
                _ => panic!(),
            }
        }
    }

    #[test]
    fn short_circuit_skips_rhs() {
        // (false && (1/0 == 0)) must not raise.
        let mut p = Program::new();
        let mut f = FnBuilder::new("sc");
        f.push(Stmt::Return(Some(Expr::Binary(
            BinOp::LAnd,
            Box::new(Expr::bool(false)),
            Box::new(Expr::int(1).div(Expr::int(0)).eq(Expr::int(0))),
        ))));
        p.add_function(f.finish(Some(Ty::Bool)));
        let mut heap = Heap::new();
        let mut be = HeapBackend::new(&mut heap);
        let r = Interp::new(&p).call_by_name("sc", &[], &mut be).unwrap();
        assert_eq!(r, Some(Value::Bool(false)));
    }

    #[test]
    fn while_break_continue() {
        // count odd numbers below 10, via while + continue + break
        let mut p = Program::new();
        let mut f = FnBuilder::new("odds");
        let i = f.fresh("i");
        let c = f.fresh("c");
        f.push(Stmt::DeclVar {
            var: i,
            ty: Ty::Int,
            init: Some(Expr::int(0)),
        });
        f.push(Stmt::DeclVar {
            var: c,
            ty: Ty::Int,
            init: Some(Expr::int(0)),
        });
        f.push(Stmt::While {
            cond: Expr::bool(true),
            body: vec![
                Stmt::If {
                    cond: Expr::var(i).lt(Expr::int(10)),
                    then_branch: vec![],
                    else_branch: vec![Stmt::Break],
                },
                Stmt::Assign {
                    var: i,
                    value: Expr::var(i).add(Expr::int(1)),
                },
                Stmt::If {
                    cond: Expr::var(i).rem(Expr::int(2)).eq(Expr::int(0)),
                    then_branch: vec![Stmt::Continue],
                    else_branch: vec![],
                },
                Stmt::Assign {
                    var: c,
                    value: Expr::var(c).add(Expr::int(1)),
                },
            ],
        });
        f.push(Stmt::Return(Some(Expr::var(c))));
        p.add_function(f.finish(Some(Ty::Int)));
        let mut heap = Heap::new();
        let mut be = HeapBackend::new(&mut heap);
        let r = Interp::new(&p).call_by_name("odds", &[], &mut be).unwrap();
        assert_eq!(r, Some(Value::Int(5)));
    }

    #[test]
    fn new_array_and_store_load() {
        let mut p = Program::new();
        let mut f = FnBuilder::new("arr");
        let a = f.fresh("a");
        f.push(Stmt::NewArray {
            var: a,
            elem: Ty::Int,
            len: Expr::int(3),
        });
        f.push(Stmt::Store {
            array: a,
            index: Expr::int(1),
            value: Expr::int(7),
            span: crate::span::Span::none(),
        });
        f.push(Stmt::Return(Some(Expr::index(a, Expr::int(1)))));
        p.add_function(f.finish(Some(Ty::Int)));
        let mut heap = Heap::new();
        let mut be = HeapBackend::new(&mut heap);
        let r = Interp::new(&p).call_by_name("arr", &[], &mut be).unwrap();
        assert_eq!(r, Some(Value::Int(7)));
    }

    #[test]
    fn stack_overflow_guard() {
        // f() calls itself forever.
        let mut p = Program::new();
        let mut f = FnBuilder::new("f");
        f.push(Stmt::Return(Some(Expr::Call(FnId(0), vec![]))));
        p.add_function(f.finish(Some(Ty::Int)));
        let mut heap = Heap::new();
        let mut be = HeapBackend::new(&mut heap);
        let r = Interp::new(&p).call_by_name("f", &[], &mut be);
        assert_eq!(r, Err(ExecError::StackOverflow));
    }

    #[test]
    fn scalar_param_conversion() {
        let mut p = Program::new();
        let mut f = FnBuilder::new("id");
        let x = f.param_scalar("x", Ty::Double);
        f.push(Stmt::Return(Some(Expr::var(x))));
        p.add_function(f.finish(Some(Ty::Double)));
        let mut heap = Heap::new();
        let mut be = HeapBackend::new(&mut heap);
        let r = Interp::new(&p)
            .call_by_name("id", &[Value::Int(2)], &mut be)
            .unwrap();
        assert_eq!(r, Some(Value::Double(2.0)));
    }

    #[test]
    fn negative_array_size_raises() {
        let mut p = Program::new();
        let mut f = FnBuilder::new("neg");
        let a = f.fresh("a");
        f.push(Stmt::NewArray {
            var: a,
            elem: Ty::Int,
            len: Expr::int(-1),
        });
        p.add_function(f.finish(None));
        let mut heap = Heap::new();
        let mut be = HeapBackend::new(&mut heap);
        assert_eq!(
            Interp::new(&p).call_by_name("neg", &[], &mut be),
            Err(ExecError::NegativeArraySize(-1))
        );
    }

    #[test]
    fn assign_preserves_declared_type() {
        let mut p = Program::new();
        let mut f = FnBuilder::new("g");
        let x = f.fresh("x");
        f.push(Stmt::DeclVar {
            var: x,
            ty: Ty::Double,
            init: Some(Expr::int(0)),
        });
        f.push(Stmt::Assign {
            var: x,
            value: Expr::int(3),
        });
        f.push(Stmt::Return(Some(Expr::var(x))));
        p.add_function(f.finish(Some(Ty::Double)));
        let mut heap = Heap::new();
        let mut be = HeapBackend::new(&mut heap);
        let r = Interp::new(&p).call_by_name("g", &[], &mut be).unwrap();
        assert_eq!(r, Some(Value::Double(3.0)));
    }
}

//! Register-based kernel bytecode: a compile-once lowering of a kernel loop
//! body (plus every statically reachable callee) into flat instruction
//! streams, shared by the SIMT warp VM (`japonica-gpusim`) and the scalar
//! chunk VM ([`ScalarVm`] below).
//!
//! The design goal is *bit-identical replay* of the tree walkers
//! ([`crate::interp::Interp`] and the SIMT walker in `japonica-gpusim`):
//! every dynamically executed operation charges the same `OpClass` in the
//! same order, every runtime error carries the same payload, and every
//! memory access happens in the same sequence. To get there the bytecode is
//! *structured*: control-flow instructions carry explicit instruction-index
//! extents (`then`/`else`/`cond`/`body` ranges) and the VMs execute those
//! extents recursively, mirroring the walker's traversal instead of using
//! raw branch targets. Expressions are linearized post-order into dense
//! temporary registers, so the per-node charge points of the walkers map
//! 1:1 onto instructions.
//!
//! Variables occupy registers `0..num_vars` (slot `r` is `VarId(r)`);
//! expression temporaries live above and are re-allocated per statement.
//! Anything the lowering cannot prove it can replay exactly (recursion,
//! deep static call chains, void calls in expression position, …) is a
//! [`CompileError`]; callers fall back to the tree walker, which is the
//! reference oracle either way.

use crate::cost::{binop_class, intrinsic_class, unop_class, OpClass};
use crate::error::ExecError;
use crate::expr::{BinOp, Expr, Intrinsic, UnOp};
use crate::interp::{Backend, Env, Flow, LoopBounds};
use crate::ops;
use crate::program::{ParamTy, Program};
use crate::stmt::{ForLoop, Stmt};
use crate::types::{Ty, Value};
use crate::VarId;
use std::any::{Any, TypeId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which execution engine runs kernel bodies and CPU chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecEngine {
    /// Compile-once register bytecode (the fast path, default).
    #[default]
    Bytecode,
    /// The original tree walkers (reference oracle).
    TreeWalker,
    /// Threaded-code native tier: hot kernels are further lowered from
    /// bytecode into a flat array of pre-resolved op closures (see
    /// [`crate::native`]), with the bytecode VM executing until the
    /// [`KernelCache`] use counter promotes the loop and as the
    /// always-correct fallback for loops the bytecode compiler declines.
    Native,
}

/// A register index. Registers `0..num_vars` are variable slots,
/// higher registers are expression temporaries.
pub type Reg = u16;

/// An instruction-index extent `[start, end)` inside a chunk.
pub type Extent = (u32, u32);

/// One bytecode instruction. Structured control flow carries explicit
/// extents; the VMs execute extents recursively so charge/error/memory
/// order replays the tree walkers exactly.
#[derive(Debug, Clone)]
pub enum Instr {
    /// Load constant-pool entry `pool` into `dst` (charges `Move`).
    Const { dst: Reg, pool: u16 },
    /// Read variable slot `src` into `dst` (charges `Move`).
    Copy { dst: Reg, src: Reg },
    /// Unary op; cost class pre-tagged for int/float operands.
    Unary {
        op: UnOp,
        dst: Reg,
        src: Reg,
        cls_i: OpClass,
        cls_f: OpClass,
    },
    /// Non-short-circuit binary op; cost class pre-tagged.
    Binary {
        op: BinOp,
        dst: Reg,
        a: Reg,
        b: Reg,
        cls_i: OpClass,
        cls_f: OpClass,
    },
    /// Checked cast (charges `Cast`).
    Cast { ty: Ty, dst: Reg, src: Reg },
    /// Scalar-only pre-check that `arr` holds an array, performed *before*
    /// the index expression evaluates (the scalar walker fetches the array
    /// first). The SIMT VM treats this as a no-op: its walker checks the
    /// array per lane after index evaluation.
    GuardArray { arr: Reg, var: VarId },
    /// Scalar-only integrality check of a store index, performed *between*
    /// index and value evaluation (where `Interp::eval_index` raises). The
    /// SIMT VM treats this as a no-op: its walker checks per lane after
    /// both operands evaluate.
    CheckIdx { idx: Reg },
    /// Array element load (charges `Load` + coalescing on the SIMT side).
    Load {
        dst: Reg,
        arr: Reg,
        var: VarId,
        idx: Reg,
    },
    /// Array length (charges `Move`).
    Len { dst: Reg, arr: Reg, var: VarId },
    /// Math intrinsic; cost class pre-tagged.
    Intrinsic {
        f: Intrinsic,
        cls: OpClass,
        dst: Reg,
        args: Vec<Reg>,
    },
    /// Call into another chunk. Argument registers were filled by the
    /// preceding instructions; `dst` is `None` in statement position.
    Call {
        chunk: u16,
        dst: Option<Reg>,
        args: Vec<Reg>,
    },
    /// Short-circuit `&&`/`||`: LHS is in `lhs`; `rhs` extent only runs for
    /// lanes (or the scalar path) that need it.
    Sc {
        op: BinOp,
        dst: Reg,
        lhs: Reg,
        rhs_range: Extent,
        rhs: Reg,
    },
    /// `c ? t : f` with mask-split arm extents.
    Ternary {
        dst: Reg,
        cond: Reg,
        t_range: Extent,
        t_dst: Reg,
        f_range: Extent,
        f_dst: Reg,
    },
    /// Variable declaration (`init` register is `None` for default-init).
    Decl { var: Reg, ty: Ty, init: Option<Reg> },
    /// Assignment with the walker's preserve-declared-type cast.
    Assign { var: Reg, src: Reg },
    /// Array element store (charges `Store` + coalescing on the SIMT side).
    Store {
        arr: Reg,
        var: VarId,
        idx: Reg,
        val: Reg,
    },
    /// `new T[n]`. The SIMT VM rejects this *before* the length extent runs
    /// (its walker rejects the statement before evaluating anything).
    NewArray {
        var: Reg,
        elem: Ty,
        len_range: Extent,
        len: Reg,
    },
    /// `if` with complementary-mask branch extents.
    If {
        cond: Reg,
        then_range: Extent,
        else_range: Extent,
    },
    /// `while`: the condition extent re-executes every round.
    While {
        cond_range: Extent,
        cond: Reg,
        body_range: Extent,
    },
    /// Inner counted loop; the instruction drives bound evaluation and the
    /// per-round induction/branch charges itself so error interleaving
    /// matches the walkers.
    For {
        var: Reg,
        start_range: Extent,
        start: Reg,
        end_range: Extent,
        end: Reg,
        step_range: Extent,
        step: Reg,
        body_range: Extent,
    },
    /// `return`. The SIMT VM checks `allow_return` *before* the value
    /// extent runs, like its walker.
    Return { val_range: Extent, val: Option<Reg> },
    /// `break` (scalar flow; rejected at execution time under SIMT).
    Break,
    /// `continue` (scalar flow; rejected at execution time under SIMT).
    Continue,
}

impl Instr {
    /// Index of the next instruction after this one and its nested extents.
    #[inline]
    pub fn next_pc(&self, pc: u32) -> u32 {
        match self {
            Instr::Sc { rhs_range, .. } => rhs_range.1,
            Instr::Ternary { f_range, .. } => f_range.1,
            Instr::NewArray { len_range, .. } => len_range.1,
            Instr::If { else_range, .. } => else_range.1,
            Instr::While { body_range, .. } => body_range.1,
            Instr::For { body_range, .. } => body_range.1,
            Instr::Return { val_range, .. } => val_range.1,
            _ => pc + 1,
        }
    }
}

/// One compiled function body (chunk 0 is the kernel loop body).
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Flat instruction stream.
    pub code: Vec<Instr>,
    /// Total registers (variables + temporaries).
    pub num_regs: u16,
    /// Variable slots (registers `0..num_vars` map to `VarId`s).
    pub num_vars: u16,
    /// Parameter bindings: target register + declared parameter type.
    pub params: Vec<(Reg, ParamTy)>,
    /// Function name, for call-related error messages.
    pub fn_name: String,
    /// Does the function declare a return type? (drives the SIMT
    /// "completed without returning on some lane" check).
    pub check_returned: bool,
}

/// A fully compiled kernel: chunk 0 plus every reachable callee.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// Chunks; index 0 is the kernel loop body.
    pub chunks: Vec<Chunk>,
    /// Constant pool.
    pub pool: Vec<Value>,
}

/// Why a kernel could not be lowered to bytecode. Every variant is a
/// clean "use the tree walker instead" signal, never a hard error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Direct or mutual recursion among callees.
    Recursion,
    /// A call chain deep enough that the walkers' dynamic depth guards
    /// could fire (their check order cannot be replayed post-hoc).
    CallChainTooDeep,
    /// Call target not present in the program.
    UnknownFunction,
    /// Call-site argument count differs from the callee's parameter list.
    ArityMismatch,
    /// A `void` function used in expression position (the scalar walker
    /// raises this lazily at runtime; the SIMT walker propagates holes).
    VoidCallInExpr,
    /// A value-returning function containing a bare `return;` (the walkers
    /// propagate a per-lane hole the register file cannot represent).
    BareReturnInValueFn,
    /// Register, pool, or chunk index would overflow its encoding.
    Overflow,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let why = match self {
            CompileError::Recursion => "recursive call graph",
            CompileError::CallChainTooDeep => "static call chain too deep",
            CompileError::UnknownFunction => "unknown callee",
            CompileError::ArityMismatch => "call arity mismatch",
            CompileError::VoidCallInExpr => "void call in expression position",
            CompileError::BareReturnInValueFn => "bare return in value-returning function",
            CompileError::Overflow => "bytecode encoding overflow",
        };
        write!(f, "kernel not compilable to bytecode: {why}")
    }
}

/// Static call-chain bound under which neither walker's dynamic depth
/// guard (SIMT: 16, scalar: 64) can fire, so the VMs may omit it.
const MAX_STATIC_CHAIN: usize = 12;

struct ChunkBuilder {
    code: Vec<Instr>,
    num_vars: u32,
    next_temp: u32,
    max_reg: u32,
}

impl ChunkBuilder {
    fn new(num_vars: u32) -> ChunkBuilder {
        ChunkBuilder {
            code: Vec::new(),
            num_vars,
            next_temp: num_vars,
            max_reg: num_vars,
        }
    }

    fn temp(&mut self) -> Result<Reg, CompileError> {
        let r = self.next_temp;
        self.next_temp += 1;
        self.max_reg = self.max_reg.max(self.next_temp);
        u16::try_from(r).map_err(|_| CompileError::Overflow)
    }

    fn reset_temps(&mut self) {
        self.next_temp = self.num_vars;
    }

    fn var_reg(&self, v: VarId) -> Result<Reg, CompileError> {
        if (v.index() as u32) < self.num_vars {
            Ok(v.0 as Reg)
        } else {
            // Hand-built IR can reference slots past the declared frame
            // (Env grows on demand); the register file cannot.
            Err(CompileError::Overflow)
        }
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }
}

struct Compiler<'p> {
    program: &'p Program,
    pool: Vec<Value>,
    chunks: Vec<Option<Chunk>>,
    chunk_of_fn: BTreeMap<u32, u16>,
    in_progress: Vec<u32>,
}

impl<'p> Compiler<'p> {
    fn pool_idx(&mut self, v: Value) -> Result<u16, CompileError> {
        let i = self.pool.len();
        self.pool.push(v);
        u16::try_from(i).map_err(|_| CompileError::Overflow)
    }

    /// Compile (or fetch) the chunk for function `fid`, tracking the static
    /// call chain for recursion/depth bail-outs.
    fn ensure_chunk(&mut self, fid: crate::program::FnId) -> Result<u16, CompileError> {
        if self.in_progress.contains(&fid.0) {
            return Err(CompileError::Recursion);
        }
        if let Some(&ci) = self.chunk_of_fn.get(&fid.0) {
            return Ok(ci);
        }
        if self.in_progress.len() >= MAX_STATIC_CHAIN {
            return Err(CompileError::CallChainTooDeep);
        }
        let f = self
            .program
            .function(fid)
            .ok_or(CompileError::UnknownFunction)?;
        if f.ret.is_some() && contains_bare_return(&f.body) {
            return Err(CompileError::BareReturnInValueFn);
        }
        let ci = u16::try_from(self.chunks.len()).map_err(|_| CompileError::Overflow)?;
        self.chunks.push(None); // reserve the slot
        self.chunk_of_fn.insert(fid.0, ci);
        self.in_progress.push(fid.0);
        let mut b = ChunkBuilder::new(
            f.num_vars
                .max(max_var_in(&f.body))
                .max(f.params.len() as u32),
        );
        self.compile_block(&f.body, &mut b)?;
        self.in_progress.pop();
        let chunk = Chunk {
            code: b.code,
            num_regs: u16::try_from(b.max_reg).map_err(|_| CompileError::Overflow)?,
            num_vars: u16::try_from(b.num_vars).map_err(|_| CompileError::Overflow)?,
            params: f
                .params
                .iter()
                .map(|p| {
                    Ok((
                        u16::try_from(p.var.0).map_err(|_| CompileError::Overflow)?,
                        p.ty,
                    ))
                })
                .collect::<Result<_, CompileError>>()?,
            fn_name: f.name.clone(),
            check_returned: f.ret.is_some(),
        };
        self.chunks[ci as usize] = Some(chunk);
        Ok(ci)
    }

    fn compile_block(&mut self, stmts: &[Stmt], b: &mut ChunkBuilder) -> Result<(), CompileError> {
        for s in stmts {
            self.compile_stmt(s, b)?;
        }
        Ok(())
    }

    fn compile_stmt(&mut self, s: &Stmt, b: &mut ChunkBuilder) -> Result<(), CompileError> {
        b.reset_temps();
        match s {
            Stmt::DeclVar { var, ty, init } => {
                let init = match init {
                    Some(e) => Some(self.compile_expr(e, b)?),
                    None => None,
                };
                let var = b.var_reg(*var)?;
                b.code.push(Instr::Decl { var, ty: *ty, init });
            }
            Stmt::NewArray { var, elem, len } => {
                let var = b.var_reg(*var)?;
                let at = b.here();
                b.code.push(Instr::NewArray {
                    var,
                    elem: *elem,
                    len_range: (0, 0),
                    len: 0,
                });
                let lo = b.here();
                let len = self.compile_expr(len, b)?;
                let hi = b.here();
                if let Instr::NewArray {
                    len_range, len: lr, ..
                } = &mut b.code[at as usize]
                {
                    *len_range = (lo, hi);
                    *lr = len;
                }
            }
            Stmt::Assign { var, value } => {
                let src = self.compile_expr(value, b)?;
                let var = b.var_reg(*var)?;
                b.code.push(Instr::Assign { var, src });
            }
            Stmt::Store {
                array,
                index,
                value,
                ..
            } => {
                let arr = b.var_reg(*array)?;
                b.code.push(Instr::GuardArray { arr, var: *array });
                let idx = self.compile_expr(index, b)?;
                b.code.push(Instr::CheckIdx { idx });
                let val = self.compile_expr(value, b)?;
                b.code.push(Instr::Store {
                    arr,
                    var: *array,
                    idx,
                    val,
                });
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond = self.compile_expr(cond, b)?;
                let at = b.here();
                b.code.push(Instr::If {
                    cond,
                    then_range: (0, 0),
                    else_range: (0, 0),
                });
                let t_lo = b.here();
                self.compile_block(then_branch, b)?;
                let t_hi = b.here();
                self.compile_block(else_branch, b)?;
                let e_hi = b.here();
                if let Instr::If {
                    then_range,
                    else_range,
                    ..
                } = &mut b.code[at as usize]
                {
                    *then_range = (t_lo, t_hi);
                    *else_range = (t_hi, e_hi);
                }
            }
            Stmt::For(l) => {
                let var = b.var_reg(l.var)?;
                let at = b.here();
                b.code.push(Instr::For {
                    var,
                    start_range: (0, 0),
                    start: 0,
                    end_range: (0, 0),
                    end: 0,
                    step_range: (0, 0),
                    step: 0,
                    body_range: (0, 0),
                });
                let s_lo = b.here();
                let start = self.compile_expr(&l.start, b)?;
                let e_lo = b.here();
                let end = self.compile_expr(&l.end, b)?;
                let st_lo = b.here();
                let step = self.compile_expr(&l.step, b)?;
                let body_lo = b.here();
                self.compile_block(&l.body, b)?;
                let body_hi = b.here();
                if let Instr::For {
                    start_range,
                    start: sr,
                    end_range,
                    end: er,
                    step_range,
                    step: str_,
                    body_range,
                    ..
                } = &mut b.code[at as usize]
                {
                    *start_range = (s_lo, e_lo);
                    *sr = start;
                    *end_range = (e_lo, st_lo);
                    *er = end;
                    *step_range = (st_lo, body_lo);
                    *str_ = step;
                    *body_range = (body_lo, body_hi);
                }
            }
            Stmt::While { cond, body } => {
                let at = b.here();
                b.code.push(Instr::While {
                    cond_range: (0, 0),
                    cond: 0,
                    body_range: (0, 0),
                });
                let c_lo = b.here();
                let cond = self.compile_expr(cond, b)?;
                let c_hi = b.here();
                self.compile_block(body, b)?;
                let b_hi = b.here();
                if let Instr::While {
                    cond_range,
                    cond: cr,
                    body_range,
                } = &mut b.code[at as usize]
                {
                    *cond_range = (c_lo, c_hi);
                    *cr = cond;
                    *body_range = (c_hi, b_hi);
                }
            }
            Stmt::Return(e) => {
                let at = b.here();
                b.code.push(Instr::Return {
                    val_range: (0, 0),
                    val: None,
                });
                let lo = b.here();
                let val = match e {
                    Some(e) => Some(self.compile_expr(e, b)?),
                    None => None,
                };
                let hi = b.here();
                if let Instr::Return { val_range, val: vr } = &mut b.code[at as usize] {
                    *val_range = (lo, hi);
                    *vr = val;
                }
            }
            Stmt::Break => b.code.push(Instr::Break),
            Stmt::Continue => b.code.push(Instr::Continue),
            Stmt::ExprStmt(e) => {
                if let Expr::Call(fid, args) = e {
                    // Statement-position call: no value demanded, so a void
                    // callee is fine (the scalar walker special-cases this).
                    let mut regs = Vec::with_capacity(args.len());
                    for a in args {
                        regs.push(self.compile_expr(a, b)?);
                    }
                    let chunk = self.call_target(*fid, args.len())?;
                    b.code.push(Instr::Call {
                        chunk,
                        dst: None,
                        args: regs,
                    });
                } else {
                    self.compile_expr(e, b)?;
                }
            }
        }
        Ok(())
    }

    fn call_target(&mut self, fid: crate::program::FnId, argc: usize) -> Result<u16, CompileError> {
        let f = self
            .program
            .function(fid)
            .ok_or(CompileError::UnknownFunction)?;
        if f.params.len() != argc {
            return Err(CompileError::ArityMismatch);
        }
        self.ensure_chunk(fid)
    }

    fn compile_expr(&mut self, e: &Expr, b: &mut ChunkBuilder) -> Result<Reg, CompileError> {
        match e {
            Expr::Const(v) => {
                let pool = self.pool_idx(*v)?;
                let dst = b.temp()?;
                b.code.push(Instr::Const { dst, pool });
                Ok(dst)
            }
            Expr::Var(v) => {
                let src = b.var_reg(*v)?;
                let dst = b.temp()?;
                b.code.push(Instr::Copy { dst, src });
                Ok(dst)
            }
            Expr::Unary(op, a) => {
                let src = self.compile_expr(a, b)?;
                let dst = b.temp()?;
                b.code.push(Instr::Unary {
                    op: *op,
                    dst,
                    src,
                    cls_i: unop_class(*op, false),
                    cls_f: unop_class(*op, true),
                });
                Ok(dst)
            }
            Expr::Binary(op, a, bb) if op.is_short_circuit() => {
                let lhs = self.compile_expr(a, b)?;
                let dst = b.temp()?;
                let at = b.here();
                b.code.push(Instr::Sc {
                    op: *op,
                    dst,
                    lhs,
                    rhs_range: (0, 0),
                    rhs: 0,
                });
                let lo = b.here();
                let rhs = self.compile_expr(bb, b)?;
                let hi = b.here();
                if let Instr::Sc {
                    rhs_range, rhs: rr, ..
                } = &mut b.code[at as usize]
                {
                    *rhs_range = (lo, hi);
                    *rr = rhs;
                }
                Ok(dst)
            }
            Expr::Binary(op, a, bb) => {
                let ra = self.compile_expr(a, b)?;
                let rb = self.compile_expr(bb, b)?;
                let dst = b.temp()?;
                b.code.push(Instr::Binary {
                    op: *op,
                    dst,
                    a: ra,
                    b: rb,
                    cls_i: binop_class(*op, false),
                    cls_f: binop_class(*op, true),
                });
                Ok(dst)
            }
            Expr::Cast(ty, a) => {
                let src = self.compile_expr(a, b)?;
                let dst = b.temp()?;
                b.code.push(Instr::Cast { ty: *ty, dst, src });
                Ok(dst)
            }
            Expr::Index { array, index } => {
                let arr = b.var_reg(*array)?;
                b.code.push(Instr::GuardArray { arr, var: *array });
                let idx = self.compile_expr(index, b)?;
                let dst = b.temp()?;
                b.code.push(Instr::Load {
                    dst,
                    arr,
                    var: *array,
                    idx,
                });
                Ok(dst)
            }
            Expr::Len(v) => {
                let arr = b.var_reg(*v)?;
                let dst = b.temp()?;
                b.code.push(Instr::Len { dst, arr, var: *v });
                Ok(dst)
            }
            Expr::Intrinsic(f, args) => {
                let mut regs = Vec::with_capacity(args.len());
                for a in args {
                    regs.push(self.compile_expr(a, b)?);
                }
                let dst = b.temp()?;
                b.code.push(Instr::Intrinsic {
                    f: *f,
                    cls: intrinsic_class(*f),
                    dst,
                    args: regs,
                });
                Ok(dst)
            }
            Expr::Call(fid, args) => {
                let mut regs = Vec::with_capacity(args.len());
                for a in args {
                    regs.push(self.compile_expr(a, b)?);
                }
                let f = self
                    .program
                    .function(*fid)
                    .ok_or(CompileError::UnknownFunction)?;
                if f.ret.is_none() {
                    return Err(CompileError::VoidCallInExpr);
                }
                let chunk = self.call_target(*fid, args.len())?;
                let dst = b.temp()?;
                b.code.push(Instr::Call {
                    chunk,
                    dst: Some(dst),
                    args: regs,
                });
                Ok(dst)
            }
            Expr::Ternary(c, t, f) => {
                let cond = self.compile_expr(c, b)?;
                let dst = b.temp()?;
                let at = b.here();
                b.code.push(Instr::Ternary {
                    dst,
                    cond,
                    t_range: (0, 0),
                    t_dst: 0,
                    f_range: (0, 0),
                    f_dst: 0,
                });
                let t_lo = b.here();
                let t_dst = self.compile_expr(t, b)?;
                let t_hi = b.here();
                let f_dst = self.compile_expr(f, b)?;
                let f_hi = b.here();
                if let Instr::Ternary {
                    t_range,
                    t_dst: tr,
                    f_range,
                    f_dst: fr,
                    ..
                } = &mut b.code[at as usize]
                {
                    *t_range = (t_lo, t_hi);
                    *tr = t_dst;
                    *f_range = (t_hi, f_hi);
                    *fr = f_dst;
                }
                Ok(dst)
            }
        }
    }
}

fn contains_bare_return(stmts: &[Stmt]) -> bool {
    fn stmt_has(s: &Stmt) -> bool {
        match s {
            Stmt::Return(None) => true,
            Stmt::Return(Some(_)) => false,
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => contains_bare_return(then_branch) || contains_bare_return(else_branch),
            Stmt::For(l) => contains_bare_return(&l.body),
            Stmt::While { body, .. } => contains_bare_return(body),
            _ => false,
        }
    }
    stmts.iter().any(stmt_has)
}

/// Highest variable slot mentioned anywhere in `stmts`, plus one.
fn max_var_in(stmts: &[Stmt]) -> u32 {
    fn expr_max(e: &Expr, m: &mut u32) {
        match e {
            Expr::Var(v) | Expr::Len(v) => *m = (*m).max(v.0 + 1),
            Expr::Index { array, index } => {
                *m = (*m).max(array.0 + 1);
                expr_max(index, m);
            }
            Expr::Unary(_, a) | Expr::Cast(_, a) => expr_max(a, m),
            Expr::Binary(_, a, b) => {
                expr_max(a, m);
                expr_max(b, m);
            }
            Expr::Intrinsic(_, args) | Expr::Call(_, args) => {
                for a in args {
                    expr_max(a, m);
                }
            }
            Expr::Ternary(c, t, f) => {
                expr_max(c, m);
                expr_max(t, m);
                expr_max(f, m);
            }
            Expr::Const(_) => {}
        }
    }
    fn stmt_max(s: &Stmt, m: &mut u32) {
        match s {
            Stmt::DeclVar { var, init, .. } => {
                *m = (*m).max(var.0 + 1);
                if let Some(e) = init {
                    expr_max(e, m);
                }
            }
            Stmt::NewArray { var, len, .. } => {
                *m = (*m).max(var.0 + 1);
                expr_max(len, m);
            }
            Stmt::Assign { var, value } => {
                *m = (*m).max(var.0 + 1);
                expr_max(value, m);
            }
            Stmt::Store {
                array,
                index,
                value,
                ..
            } => {
                *m = (*m).max(array.0 + 1);
                expr_max(index, m);
                expr_max(value, m);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                expr_max(cond, m);
                for s in then_branch.iter().chain(else_branch) {
                    stmt_max(s, m);
                }
            }
            Stmt::For(l) => {
                *m = (*m).max(l.var.0 + 1);
                expr_max(&l.start, m);
                expr_max(&l.end, m);
                expr_max(&l.step, m);
                for s in &l.body {
                    stmt_max(s, m);
                }
            }
            Stmt::While { cond, body } => {
                expr_max(cond, m);
                for s in body {
                    stmt_max(s, m);
                }
            }
            Stmt::Return(Some(e)) | Stmt::ExprStmt(e) => expr_max(e, m),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        }
    }
    let mut m = 0;
    for s in stmts {
        stmt_max(s, &mut m);
    }
    m
}

/// Compile the body of `loop_` (and every statically reachable callee)
/// into a [`CompiledKernel`].
pub fn compile_kernel(program: &Program, loop_: &ForLoop) -> Result<CompiledKernel, CompileError> {
    let num_vars = max_var_in(&loop_.body).max(loop_.var.0 + 1);
    let mut c = Compiler {
        program,
        pool: Vec::new(),
        chunks: vec![None],
        chunk_of_fn: BTreeMap::new(),
        in_progress: Vec::new(),
    };
    let mut b = ChunkBuilder::new(num_vars);
    c.compile_block(&loop_.body, &mut b)?;
    c.chunks[0] = Some(Chunk {
        code: b.code,
        num_regs: u16::try_from(b.max_reg).map_err(|_| CompileError::Overflow)?,
        num_vars: u16::try_from(b.num_vars).map_err(|_| CompileError::Overflow)?,
        params: Vec::new(),
        fn_name: String::new(),
        check_returned: false,
    });
    let chunks = c
        .chunks
        .into_iter()
        .map(|ch| ch.ok_or(CompileError::Recursion))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CompiledKernel {
        chunks,
        pool: c.pool,
    })
}

/// Shards of [`KernelCache`]. A small power of two: enough that the serve
/// path's concurrent tenants (whose hot loops hash to different shards)
/// rarely contend, cheap enough that an empty cache stays tiny.
const KERNEL_CACHE_SHARDS: usize = 8;

/// Demand threshold for the native tier: a loop is promoted from bytecode
/// to threaded code on the lookup that brings its per-entry use count to
/// this value. The first launch of every loop therefore runs bytecode (the
/// always-correct lower tier); only loops the scheduler actually re-enters
/// — sub-loop windows, chunk streams, TLS re-executions, retry ladders —
/// pay a native compilation.
pub const NATIVE_PROMOTE_USES: u64 = 2;

/// One loop's cache slot: the memoized bytecode compile (or `None` for a
/// bail-out the walker must handle), the demand counter, and any native-
/// tier artifacts built from the bytecode, keyed by the artifact's type so
/// the scalar and SIMT lowerings coexist on one entry.
struct CacheEntry {
    kernel: Option<Arc<CompiledKernel>>,
    uses: u64,
    native: BTreeMap<TypeId, Arc<dyn Any + Send + Sync>>,
}

impl std::fmt::Debug for CacheEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheEntry")
            .field("compiled", &self.kernel.is_some())
            .field("uses", &self.uses)
            .field("native_tiers", &self.native.len())
            .finish()
    }
}

/// A per-scheduler-run cache of compiled kernels keyed by loop id.
///
/// Loop ids are only unique within one program, so the cache must live per
/// run (never inside a config that outlives the program). Uncompilable
/// loops are memoized as `None` so the fallback decision is also paid once.
///
/// The map is sharded by loop id so concurrent jobs hitting different loops
/// do not serialize on one lock; hit/miss counters are atomics and stay
/// exact under any interleaving (every lookup increments exactly one).
///
/// Each entry also carries a *use counter* (incremented by every
/// [`KernelCache::get_or_compile`]) and a slot per native-tier artifact
/// type; [`KernelCache::native_tier`] consults the counter to decide when
/// a loop is hot enough to pay the threaded-code lowering.
#[derive(Debug)]
pub struct KernelCache {
    shards: [Mutex<BTreeMap<u32, CacheEntry>>; KERNEL_CACHE_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for KernelCache {
    fn default() -> KernelCache {
        KernelCache {
            shards: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }
}

impl KernelCache {
    /// An empty cache.
    pub fn new() -> KernelCache {
        KernelCache::default()
    }

    /// The shard holding `loop_id`'s entry.
    fn shard(&self, loop_id: u32) -> &Mutex<BTreeMap<u32, CacheEntry>> {
        &self.shards[loop_id as usize % KERNEL_CACHE_SHARDS]
    }

    /// Fetch the compiled form of `loop_`, compiling it on first use.
    /// `None` means the loop is not bytecode-compilable (use the walker).
    ///
    /// The shard lock is held across the compile so a loop is compiled at
    /// most once per cache (two racing tenants would otherwise both pay the
    /// compile); lookups of *other* shards proceed concurrently. Every
    /// lookup bumps the entry's use counter, which is what drives native-
    /// tier promotion (see [`KernelCache::native_tier`]).
    pub fn get_or_compile(
        &self,
        program: &Program,
        loop_: &ForLoop,
    ) -> Option<Arc<CompiledKernel>> {
        let mut map = self
            .shard(loop_.id.0)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = map.get_mut(&loop_.id.0) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            entry.uses += 1;
            return entry.kernel.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = compile_kernel(program, loop_).ok().map(Arc::new);
        map.insert(
            loop_.id.0,
            CacheEntry {
                kernel: compiled.clone(),
                uses: 1,
                native: BTreeMap::new(),
            },
        );
        compiled
    }

    /// How many times `loop_id` has been looked up (0 if never seen).
    pub fn uses(&self, loop_id: u32) -> u64 {
        let map = self
            .shard(loop_id)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        map.get(&loop_id).map_or(0, |e| e.uses)
    }

    /// The native-tier artifact of type `T` for `loop_id`, building and
    /// memoizing it on the lookup that finds the loop hot enough.
    ///
    /// Returns `None` until the loop's use count reaches
    /// [`NATIVE_PROMOTE_USES`] (the caller then runs the bytecode tier), or
    /// forever if the loop never bytecode-compiled (walker fallback). The
    /// artifact type is the key, so the scalar ([`crate::native`]) and SIMT
    /// lowerings each get their own memoized slot on the same entry. The
    /// shard lock is held across `build`, so each artifact is built at most
    /// once per cache.
    pub fn native_tier<T, F>(&self, loop_id: u32, build: F) -> Option<Arc<T>>
    where
        T: Send + Sync + 'static,
        F: FnOnce(&CompiledKernel) -> T,
    {
        let mut map = self
            .shard(loop_id)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let entry = map.get_mut(&loop_id)?;
        if entry.uses < NATIVE_PROMOTE_USES {
            return None;
        }
        let kernel = entry.kernel.clone()?;
        let slot = entry
            .native
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Arc::new(build(&kernel)) as Arc<dyn Any + Send + Sync>);
        slot.clone().downcast::<T>().ok()
    }

    /// Drop `loop_id`'s entry — the memoized bytecode *and* every native
    /// tier built from it. Returns whether an entry was resident. This is
    /// the hot-code-reload hook: a session that recompiles an edited kernel
    /// invalidates exactly this entry, and the drop is counted in
    /// [`KernelCache::invalidations`], never in the hit/miss pair.
    pub fn invalidate(&self, loop_id: u32) -> bool {
        let dropped = self
            .shard(loop_id)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&loop_id)
            .is_some();
        if dropped {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        dropped
    }

    /// Transplant `src`'s entry for `src_loop` into this cache under
    /// `dst_loop`: the compiled kernel `Arc`, every native-tier artifact,
    /// and the use counter (so a promoted loop stays promoted across a hot
    /// reload). Returns `false` — and changes nothing — when `src` has no
    /// entry for `src_loop` or this cache already holds `dst_loop`.
    ///
    /// The id remap exists because loop ids are program-wide ordinals:
    /// editing one function renumbers the loops behind it, so an unchanged
    /// kernel's entry moves to a *new* id in the reloaded program's cache.
    /// The snapshot is taken before the destination shard is locked, so
    /// transplanting within one cache (or between caches sharing a shard
    /// index) cannot deadlock.
    pub fn adopt_from(&self, src: &KernelCache, src_loop: u32, dst_loop: u32) -> bool {
        let snapshot = {
            let map = src
                .shard(src_loop)
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            match map.get(&src_loop) {
                Some(e) => CacheEntry {
                    kernel: e.kernel.clone(),
                    uses: e.uses,
                    native: e.native.clone(),
                },
                None => return false,
            }
        };
        let mut map = self
            .shard(dst_loop)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if map.contains_key(&dst_loop) {
            return false;
        }
        map.insert(dst_loop, snapshot);
        true
    }

    /// Entries resident right now (compiled kernels plus memoized
    /// bail-outs).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (compilations, successful or not) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by [`KernelCache::invalidate`] so far (never
    /// overlaps the hit/miss counters).
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }
}

#[inline]
pub(crate) fn is_float_v(v: Value) -> bool {
    matches!(v, Value::Float(_) | Value::Double(_))
}

/// Scalar bytecode VM: replays [`crate::interp::Interp`] bit-for-bit over
/// a [`CompiledKernel`] — same `Backend::op` charge sequence, same memory
/// access order, same errors — without per-node allocation or `Env`
/// indirection. Register and boundness arenas are reused across chunks
/// and iterations; calls push/pop frame regions.
#[derive(Debug, Default)]
pub struct ScalarVm {
    regs: Vec<Value>,
    bound: Vec<bool>,
}

impl ScalarVm {
    /// An empty VM (arenas grow on first use and are then reused).
    pub fn new() -> ScalarVm {
        ScalarVm::default()
    }

    /// Execute iterations `k_lo..k_hi` of the compiled kernel against
    /// `env`, mirroring `Interp::exec_range`: the environment is loaded
    /// into registers up front and every bound variable slot is written
    /// back on exit (including error exits, matching the walker's direct
    /// `Env` mutation).
    #[allow(clippy::too_many_arguments)] // mirrors the walker's exec_range signature
    pub fn exec_range<B: Backend>(
        &mut self,
        k: &CompiledKernel,
        var: VarId,
        bounds: &LoopBounds,
        k_lo: u64,
        k_hi: u64,
        env: &mut Env,
        be: &mut B,
    ) -> Result<Flow, ExecError> {
        let num_vars = k.chunks[0].num_vars as usize;
        let num_regs = k.chunks[0].num_regs as usize;
        let code_len = k.chunks[0].code.len() as u32;
        self.regs.clear();
        self.regs.resize(num_regs, Value::Int(0));
        self.bound.clear();
        self.bound.resize(num_regs, false);
        for v in 0..num_vars {
            let vid = VarId(v as u32);
            if env.is_set(vid) {
                if let Ok(val) = env.get(vid) {
                    self.regs[v] = val;
                    self.bound[v] = true;
                }
            }
        }
        let vi = var.index();
        let mut out = Ok(Flow::Normal);
        for kk in k_lo..k_hi {
            // Loop bookkeeping: induction update + bound test + back edge.
            be.op(OpClass::IntAlu);
            be.op(OpClass::Branch);
            self.regs[vi] = Value::Int(bounds.value_of(kk) as i32);
            self.bound[vi] = true;
            match self.run(k, 0, 0, code_len, 0, be) {
                Ok(Flow::Normal) | Ok(Flow::Continue) => {}
                other => {
                    out = other;
                    break;
                }
            }
        }
        for v in 0..num_vars {
            if self.bound[v] {
                env.set(VarId(v as u32), self.regs[v]);
            }
        }
        out
    }

    /// Bind arguments into the freshly pushed frame at `nbase` and run the
    /// callee chunk. The caller truncates the arenas afterwards.
    fn enter_call<B: Backend>(
        &mut self,
        k: &CompiledKernel,
        callee: usize,
        base: usize,
        args: &[Reg],
        nbase: usize,
        be: &mut B,
    ) -> Result<Flow, ExecError> {
        let c = &k.chunks[callee];
        for (i, (preg, pty)) in c.params.iter().enumerate() {
            let a = self.regs[base + args[i] as usize];
            // Apply the assignment conversion for scalar params.
            let v = match pty {
                ParamTy::Scalar(t) => a.cast(*t).ok_or_else(|| ExecError::TypeMismatch {
                    expected: t.to_string(),
                    found: format!("{a}"),
                })?,
                ParamTy::Array(_) => match a {
                    Value::Array(_) => a,
                    other => {
                        return Err(ExecError::TypeMismatch {
                            expected: format!("{pty}"),
                            found: format!("{other}"),
                        })
                    }
                },
            };
            self.regs[nbase + *preg as usize] = v;
            self.bound[nbase + *preg as usize] = true;
        }
        self.run(k, callee, 0, c.code.len() as u32, nbase, be)
    }

    /// Execute instructions `lo..hi` of chunk `ci` with frame base `base`.
    fn run<B: Backend>(
        &mut self,
        k: &CompiledKernel,
        ci: usize,
        lo: u32,
        hi: u32,
        base: usize,
        be: &mut B,
    ) -> Result<Flow, ExecError> {
        let mut pc = lo;
        while pc < hi {
            let instr = &k.chunks[ci].code[pc as usize];
            let next = instr.next_pc(pc);
            match instr {
                Instr::Const { dst, pool } => {
                    be.op(OpClass::Move);
                    self.regs[base + *dst as usize] = k.pool[*pool as usize];
                }
                Instr::Copy { dst, src } => {
                    be.op(OpClass::Move);
                    if !self.bound[base + *src as usize] {
                        return Err(ExecError::UnboundVariable(VarId(*src as u32)));
                    }
                    self.regs[base + *dst as usize] = self.regs[base + *src as usize];
                }
                Instr::Unary {
                    op,
                    dst,
                    src,
                    cls_i,
                    cls_f,
                } => {
                    let v = self.regs[base + *src as usize];
                    be.op(if is_float_v(v) { *cls_f } else { *cls_i });
                    self.regs[base + *dst as usize] = ops::unary(*op, v)?;
                }
                Instr::Binary {
                    op,
                    dst,
                    a,
                    b,
                    cls_i,
                    cls_f,
                } => {
                    let va = self.regs[base + *a as usize];
                    let vb = self.regs[base + *b as usize];
                    be.op(if is_float_v(va) || is_float_v(vb) {
                        *cls_f
                    } else {
                        *cls_i
                    });
                    self.regs[base + *dst as usize] = ops::binary(*op, va, vb)?;
                }
                Instr::Cast { ty, dst, src } => {
                    let v = self.regs[base + *src as usize];
                    be.op(OpClass::Cast);
                    self.regs[base + *dst as usize] =
                        v.cast(*ty).ok_or_else(|| ExecError::InvalidCast {
                            from: format!("{v}"),
                            to: *ty,
                        })?;
                }
                Instr::GuardArray { arr, var } => {
                    if !self.bound[base + *arr as usize] {
                        return Err(ExecError::UnboundVariable(*var));
                    }
                    let v = self.regs[base + *arr as usize];
                    if v.as_array().is_none() {
                        return Err(ExecError::TypeMismatch {
                            expected: "array".into(),
                            found: format!("{var}"),
                        });
                    }
                }
                Instr::CheckIdx { idx } => {
                    let v = self.regs[base + *idx as usize];
                    if v.as_i64().is_none() {
                        return Err(ExecError::TypeMismatch {
                            expected: "int index".into(),
                            found: format!("{v}"),
                        });
                    }
                }
                Instr::Load { dst, arr, var, idx } => {
                    let av = self.regs[base + *arr as usize];
                    let a = av.as_array().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "array".into(),
                        found: format!("{var}"),
                    })?;
                    let iv = self.regs[base + *idx as usize];
                    let i = iv.as_i64().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "int index".into(),
                        found: format!("{iv}"),
                    })?;
                    be.op(OpClass::Load);
                    self.regs[base + *dst as usize] = be.load(a, i)?;
                }
                Instr::Len { dst, arr, var } => {
                    if !self.bound[base + *arr as usize] {
                        return Err(ExecError::UnboundVariable(*var));
                    }
                    let v = self.regs[base + *arr as usize];
                    let a = v.as_array().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "array".into(),
                        found: format!("{var}"),
                    })?;
                    be.op(OpClass::Move);
                    self.regs[base + *dst as usize] = Value::Int(be.array_len(a)? as i32);
                }
                Instr::Intrinsic { f, cls, dst, args } => {
                    let mut buf = [Value::Int(0); 4];
                    for (i, r) in args.iter().enumerate() {
                        buf[i] = self.regs[base + *r as usize];
                    }
                    be.op(*cls);
                    self.regs[base + *dst as usize] = ops::intrinsic(*f, &buf[..args.len()])?;
                }
                Instr::Call { chunk, dst, args } => {
                    be.op(OpClass::Call);
                    let callee = *chunk as usize;
                    let nbase = self.regs.len();
                    let nregs = k.chunks[callee].num_regs as usize;
                    self.regs.resize(nbase + nregs, Value::Int(0));
                    self.bound.resize(nbase + nregs, false);
                    let res = self.enter_call(k, callee, base, args, nbase, be);
                    self.regs.truncate(nbase);
                    self.bound.truncate(nbase);
                    let ret = match res? {
                        Flow::Return(v) => v,
                        Flow::Normal => None,
                        Flow::Break | Flow::Continue => {
                            return Err(ExecError::Aborted(
                                "break/continue escaped function body".into(),
                            ))
                        }
                    };
                    if let Some(dst) = dst {
                        let v = ret.ok_or_else(|| ExecError::TypeMismatch {
                            expected: "value".into(),
                            found: "void call in expression".into(),
                        })?;
                        self.regs[base + *dst as usize] = v;
                    }
                }
                Instr::Sc {
                    op,
                    dst,
                    lhs,
                    rhs_range,
                    rhs,
                } => {
                    let v = self.regs[base + *lhs as usize];
                    let lb = v.as_bool().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "boolean".into(),
                        found: format!("{v}"),
                    })?;
                    be.op(OpClass::Branch);
                    let out = match (*op, lb) {
                        (BinOp::LAnd, false) => Value::Bool(false),
                        (BinOp::LOr, true) => Value::Bool(true),
                        _ => {
                            self.run(k, ci, rhs_range.0, rhs_range.1, base, be)?;
                            let rv = self.regs[base + *rhs as usize];
                            let rb = rv.as_bool().ok_or_else(|| ExecError::TypeMismatch {
                                expected: "boolean".into(),
                                found: format!("{rv}"),
                            })?;
                            Value::Bool(rb)
                        }
                    };
                    self.regs[base + *dst as usize] = out;
                }
                Instr::Ternary {
                    dst,
                    cond,
                    t_range,
                    t_dst,
                    f_range,
                    f_dst,
                } => {
                    let cv = self.regs[base + *cond as usize];
                    let c = cv.as_bool().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "boolean".into(),
                        found: format!("{cv}"),
                    })?;
                    be.op(OpClass::Branch);
                    let (r, src) = if c {
                        (t_range, t_dst)
                    } else {
                        (f_range, f_dst)
                    };
                    self.run(k, ci, r.0, r.1, base, be)?;
                    self.regs[base + *dst as usize] = self.regs[base + *src as usize];
                }
                Instr::Decl { var, ty, init } => {
                    let v = match init {
                        Some(r) => {
                            let raw = self.regs[base + *r as usize];
                            raw.cast(*ty).ok_or_else(|| ExecError::TypeMismatch {
                                expected: ty.to_string(),
                                found: format!("{raw}"),
                            })?
                        }
                        None => ty.zero(),
                    };
                    be.op(OpClass::Move);
                    self.regs[base + *var as usize] = v;
                    self.bound[base + *var as usize] = true;
                }
                Instr::Assign { var, src } => {
                    let mut v = self.regs[base + *src as usize];
                    // Preserve the declared scalar type across re-assignment.
                    if self.bound[base + *var as usize] {
                        if let Some(ty) = self.regs[base + *var as usize].ty() {
                            v = v.cast(ty).ok_or_else(|| ExecError::TypeMismatch {
                                expected: ty.to_string(),
                                found: format!("{v}"),
                            })?;
                        }
                    }
                    be.op(OpClass::Move);
                    self.regs[base + *var as usize] = v;
                    self.bound[base + *var as usize] = true;
                }
                Instr::Store { arr, var, idx, val } => {
                    let av = self.regs[base + *arr as usize];
                    let a = av.as_array().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "array".into(),
                        found: format!("{var}"),
                    })?;
                    let iv = self.regs[base + *idx as usize];
                    let i = iv.as_i64().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "int index".into(),
                        found: format!("{iv}"),
                    })?;
                    let v = self.regs[base + *val as usize];
                    be.op(OpClass::Store);
                    be.store(a, i, v)?;
                }
                Instr::NewArray {
                    var,
                    elem,
                    len_range,
                    len,
                } => {
                    self.run(k, ci, len_range.0, len_range.1, base, be)?;
                    let lv = self.regs[base + *len as usize];
                    let n = lv.as_i64().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "int".into(),
                        found: "non-integral length".into(),
                    })?;
                    if n < 0 {
                        return Err(ExecError::NegativeArraySize(n));
                    }
                    be.op(OpClass::Move);
                    let id = be.alloc(*elem, n as usize)?;
                    self.regs[base + *var as usize] = Value::Array(id);
                    self.bound[base + *var as usize] = true;
                }
                Instr::If {
                    cond,
                    then_range,
                    else_range,
                } => {
                    let cv = self.regs[base + *cond as usize];
                    let c = cv.as_bool().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "boolean".into(),
                        found: format!("{cv}"),
                    })?;
                    be.op(OpClass::Branch);
                    let r = if c { then_range } else { else_range };
                    match self.run(k, ci, r.0, r.1, base, be)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
                Instr::While {
                    cond_range,
                    cond,
                    body_range,
                } => loop {
                    self.run(k, ci, cond_range.0, cond_range.1, base, be)?;
                    let cv = self.regs[base + *cond as usize];
                    let c = cv.as_bool().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "boolean".into(),
                        found: format!("{cv}"),
                    })?;
                    be.op(OpClass::Branch);
                    if !c {
                        break;
                    }
                    match self.run(k, ci, body_range.0, body_range.1, base, be)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                },
                Instr::For {
                    var,
                    start_range,
                    start,
                    end_range,
                    end,
                    step_range,
                    step,
                    body_range,
                } => {
                    let as_int = |v: Value| {
                        v.as_i64().ok_or_else(|| ExecError::TypeMismatch {
                            expected: "int".into(),
                            found: format!("{v}"),
                        })
                    };
                    self.run(k, ci, start_range.0, start_range.1, base, be)?;
                    let s = as_int(self.regs[base + *start as usize])?;
                    self.run(k, ci, end_range.0, end_range.1, base, be)?;
                    let e = as_int(self.regs[base + *end as usize])?;
                    self.run(k, ci, step_range.0, step_range.1, base, be)?;
                    let st = as_int(self.regs[base + *step as usize])?;
                    if st <= 0 {
                        return Err(ExecError::NonPositiveStep(st));
                    }
                    let b2 = LoopBounds {
                        start: s,
                        end: e,
                        step: st,
                    };
                    for kk in 0..b2.trip() {
                        be.op(OpClass::IntAlu);
                        be.op(OpClass::Branch);
                        self.regs[base + *var as usize] = Value::Int(b2.value_of(kk) as i32);
                        self.bound[base + *var as usize] = true;
                        match self.run(k, ci, body_range.0, body_range.1, base, be)? {
                            Flow::Normal | Flow::Continue => {}
                            Flow::Break => break,
                            ret @ Flow::Return(_) => return Ok(ret),
                        }
                    }
                }
                Instr::Return { val_range, val } => {
                    self.run(k, ci, val_range.0, val_range.1, base, be)?;
                    return Ok(Flow::Return(val.map(|r| self.regs[base + r as usize])));
                }
                Instr::Break => return Ok(Flow::Break),
                Instr::Continue => return Ok(Flow::Continue),
            }
            pc = next;
        }
        Ok(Flow::Normal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FnBuilder;
    use crate::heap::{ArrayId, Heap};
    use crate::interp::{HeapBackend, Interp};
    use crate::span::Span;
    use crate::stmt::LoopId;
    use crate::types::Ty;

    /// Backend recording the exact `op` charge sequence, so the tests can
    /// assert bit-level replay (order, not just totals).
    struct TraceBackend<'h> {
        inner: HeapBackend<'h>,
        trace: Vec<OpClass>,
    }

    impl Backend for TraceBackend<'_> {
        fn load(&mut self, arr: ArrayId, idx: i64) -> Result<Value, ExecError> {
            self.inner.load(arr, idx)
        }
        fn store(&mut self, arr: ArrayId, idx: i64, v: Value) -> Result<(), ExecError> {
            self.inner.store(arr, idx, v)
        }
        fn array_len(&mut self, arr: ArrayId) -> Result<usize, ExecError> {
            self.inner.array_len(arr)
        }
        fn alloc(&mut self, ty: Ty, len: usize) -> Result<ArrayId, ExecError> {
            self.inner.alloc(ty, len)
        }
        fn op(&mut self, cls: OpClass) {
            self.trace.push(cls);
            self.inner.op(cls);
        }
    }

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    /// Bit-exact value comparison key (NaN-safe, unlike `PartialEq`).
    fn bits(v: Option<Value>) -> Option<(u8, u64)> {
        v.map(|v| match v {
            Value::Bool(b) => (0, b as u64),
            Value::Int(i) => (1, i as u64),
            Value::Long(l) => (2, l as u64),
            Value::Float(f) => (3, f.to_bits() as u64),
            Value::Double(d) => (4, d.to_bits()),
            Value::Array(a) => (5, a.0 as u64),
        })
    }

    fn kernel_loop(var: VarId, n: i32, body: Vec<Stmt>) -> ForLoop {
        ForLoop {
            id: LoopId(0),
            var,
            start: Expr::int(0),
            end: Expr::int(n),
            step: Expr::int(1),
            body,
            annot: None,
            span: Span::none(),
        }
    }

    /// Run `loop_` over `0..trip` under both engines against identical
    /// heap/env copies and assert results, env slots, heap contents, and
    /// the charge trace are identical.
    fn assert_engines_agree(program: &Program, loop_: &ForLoop, env0: &Env, heap0: &Heap) {
        let bounds = LoopBounds {
            start: 0,
            end: match loop_.end {
                Expr::Const(Value::Int(n)) => n as i64,
                _ => unreachable!("test loops use literal bounds"),
            },
            step: 1,
        };
        let trip = bounds.trip();

        let mut heap_a = heap0.clone();
        let mut env_a = env0.clone();
        let mut be_a = TraceBackend {
            inner: HeapBackend::new(&mut heap_a),
            trace: Vec::new(),
        };
        let interp = Interp::new(program);
        let ra = interp.exec_range(loop_, &bounds, 0, trip, &mut env_a, &mut be_a);
        let trace_a = be_a.trace;

        let k = compile_kernel(program, loop_).expect("kernel should compile");
        let mut heap_b = heap0.clone();
        let mut env_b = env0.clone();
        let mut be_b = TraceBackend {
            inner: HeapBackend::new(&mut heap_b),
            trace: Vec::new(),
        };
        let mut vm = ScalarVm::new();
        let rb = vm.exec_range(&k, loop_.var, &bounds, 0, trip, &mut env_b, &mut be_b);
        let trace_b = be_b.trace;

        match (&ra, &rb) {
            (Ok(fa), Ok(fb)) => assert_eq!(
                std::mem::discriminant(fa),
                std::mem::discriminant(fb),
                "flow mismatch: {fa:?} vs {fb:?}"
            ),
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "error mismatch"),
            _ => panic!("result mismatch: {ra:?} vs {rb:?}"),
        }
        assert_eq!(trace_a, trace_b, "charge order mismatch");
        for slot in 0..64u32 {
            let sa = env_a.get(v(slot)).ok();
            let sb = env_b.get(v(slot)).ok();
            assert_eq!(
                bits(sa),
                bits(sb),
                "env slot v{slot} mismatch: {sa:?} vs {sb:?}"
            );
        }
        assert_eq!(heap_a.array_count(), heap_b.array_count());
        for i in 0..heap_a.array_count() {
            let id = ArrayId(i as u32);
            assert_eq!(
                heap_a.array(id).ok(),
                heap_b.array(id).ok(),
                "array {i} mismatch"
            );
        }
    }

    /// Helper: `clamp2(x) = x > 10 ? x - 10 : x * 2` via early return.
    fn add_helper(p: &mut Program) -> crate::program::FnId {
        let mut f = FnBuilder::new("clamp2");
        let x = f.param_scalar("x", Ty::Int);
        f.push(Stmt::If {
            cond: Expr::Binary(BinOp::Gt, Box::new(Expr::var(x)), Box::new(Expr::int(10))),
            then_branch: vec![Stmt::Return(Some(Expr::Binary(
                BinOp::Sub,
                Box::new(Expr::var(x)),
                Box::new(Expr::int(10)),
            )))],
            else_branch: vec![],
        });
        f.push(Stmt::Return(Some(Expr::Binary(
            BinOp::Mul,
            Box::new(Expr::var(x)),
            Box::new(Expr::int(2)),
        ))));
        p.add_function(f.finish(Some(Ty::Int)))
    }

    #[test]
    fn scalar_vm_matches_interp_on_rich_kernel() {
        let mut p = Program::new();
        let helper = add_helper(&mut p);
        let (i, a, b, acc, j) = (v(0), v(1), v(2), v(3), v(4));
        let body = vec![
            Stmt::DeclVar {
                var: acc,
                ty: Ty::Double,
                init: Some(Expr::double(0.0)),
            },
            Stmt::For(ForLoop {
                id: LoopId(1),
                var: j,
                start: Expr::int(0),
                end: Expr::int(3),
                step: Expr::int(1),
                body: vec![Stmt::Assign {
                    var: acc,
                    value: Expr::Binary(
                        BinOp::Add,
                        Box::new(Expr::var(acc)),
                        Box::new(Expr::Intrinsic(
                            Intrinsic::Sqrt,
                            vec![Expr::Cast(
                                Ty::Double,
                                Box::new(Expr::Binary(
                                    BinOp::Add,
                                    Box::new(Expr::Index {
                                        array: a,
                                        index: Box::new(Expr::var(i)),
                                    }),
                                    Box::new(Expr::var(j)),
                                )),
                            )],
                        )),
                    ),
                }],
                annot: None,
                span: Span::none(),
            }),
            Stmt::If {
                cond: Expr::Binary(
                    BinOp::LAnd,
                    Box::new(Expr::Binary(
                        BinOp::Eq,
                        Box::new(Expr::Binary(
                            BinOp::Rem,
                            Box::new(Expr::var(i)),
                            Box::new(Expr::int(2)),
                        )),
                        Box::new(Expr::int(0)),
                    )),
                    Box::new(Expr::Binary(
                        BinOp::Gt,
                        Box::new(Expr::Index {
                            array: a,
                            index: Box::new(Expr::var(i)),
                        }),
                        Box::new(Expr::int(0)),
                    )),
                ),
                then_branch: vec![Stmt::Store {
                    array: a,
                    index: Expr::var(i),
                    value: Expr::Call(
                        helper,
                        vec![Expr::Index {
                            array: a,
                            index: Box::new(Expr::var(i)),
                        }],
                    ),
                    span: crate::span::Span::none(),
                }],
                else_branch: vec![Stmt::Store {
                    array: a,
                    index: Expr::var(i),
                    value: Expr::Ternary(
                        Box::new(Expr::Binary(
                            BinOp::Gt,
                            Box::new(Expr::Index {
                                array: b,
                                index: Box::new(Expr::var(i)),
                            }),
                            Box::new(Expr::int(5)),
                        )),
                        Box::new(Expr::Index {
                            array: b,
                            index: Box::new(Expr::var(i)),
                        }),
                        Box::new(Expr::Binary(
                            BinOp::Add,
                            Box::new(Expr::Index {
                                array: a,
                                index: Box::new(Expr::var(i)),
                            }),
                            Box::new(Expr::int(1)),
                        )),
                    ),
                    span: crate::span::Span::none(),
                }],
            },
            Stmt::While {
                cond: Expr::Binary(
                    BinOp::Gt,
                    Box::new(Expr::var(acc)),
                    Box::new(Expr::double(1.0)),
                ),
                body: vec![Stmt::Assign {
                    var: acc,
                    value: Expr::Binary(
                        BinOp::Sub,
                        Box::new(Expr::var(acc)),
                        Box::new(Expr::double(1.0)),
                    ),
                }],
            },
            Stmt::Store {
                array: b,
                index: Expr::var(i),
                value: Expr::Cast(Ty::Int, Box::new(Expr::var(acc))),
                span: crate::span::Span::none(),
            },
        ];
        let loop_ = kernel_loop(i, 8, body);
        let mut heap = Heap::new();
        let aa = heap.alloc_ints(&[3, -1, 14, 7, 0, 9, 22, -5]);
        let bb = heap.alloc_ints(&[1, 9, 2, 8, 3, 7, 4, 6]);
        let mut env = Env::with_slots(8);
        env.set(a, Value::Array(aa));
        env.set(b, Value::Array(bb));
        assert_engines_agree(&p, &loop_, &env, &heap);
    }

    #[test]
    fn scalar_vm_matches_interp_on_error_paths() {
        // Iteration 2 divides by zero after a store already landed; the
        // walker leaves the partial mutations visible, so must the VM.
        let (i, a, x) = (v(0), v(1), v(2));
        let p = Program::new();
        let body = vec![
            Stmt::DeclVar {
                var: x,
                ty: Ty::Int,
                init: Some(Expr::int(7)),
            },
            Stmt::Store {
                array: a,
                index: Expr::var(i),
                value: Expr::var(x),
                span: crate::span::Span::none(),
            },
            Stmt::Assign {
                var: x,
                value: Expr::Binary(
                    BinOp::Div,
                    Box::new(Expr::int(10)),
                    Box::new(Expr::Binary(
                        BinOp::Sub,
                        Box::new(Expr::int(2)),
                        Box::new(Expr::var(i)),
                    )),
                ),
            },
        ];
        let loop_ = kernel_loop(i, 8, body);
        let mut heap = Heap::new();
        let aa = heap.alloc_ints(&[0; 8]);
        let mut env = Env::with_slots(4);
        env.set(a, Value::Array(aa));
        assert_engines_agree(&p, &loop_, &env, &heap);
    }

    #[test]
    fn scalar_vm_matches_interp_on_unbound_read() {
        let (i, y) = (v(0), v(3));
        let p = Program::new();
        let body = vec![Stmt::If {
            cond: Expr::Binary(BinOp::Eq, Box::new(Expr::var(i)), Box::new(Expr::int(1))),
            then_branch: vec![Stmt::Assign {
                var: v(2),
                value: Expr::var(y),
            }],
            else_branch: vec![],
        }];
        let loop_ = kernel_loop(i, 4, body);
        let env = Env::with_slots(4);
        assert_engines_agree(&p, &loop_, &env, &Heap::new());
    }

    #[test]
    fn recursion_and_void_expr_calls_bail_to_walker() {
        let mut p = Program::new();
        let mut f = FnBuilder::new("rec");
        let x = f.param_scalar("x", Ty::Int);
        let id = crate::program::FnId(0);
        f.push(Stmt::Return(Some(Expr::Call(id, vec![Expr::var(x)]))));
        p.add_function(f.finish(Some(Ty::Int)));
        let body = vec![Stmt::Assign {
            var: v(1),
            value: Expr::Call(id, vec![Expr::var(v(0))]),
        }];
        let loop_ = kernel_loop(v(0), 2, body);
        assert_eq!(
            compile_kernel(&p, &loop_).err(),
            Some(CompileError::Recursion)
        );

        let mut p2 = Program::new();
        let mut g = FnBuilder::new("noop");
        let _ = g.param_scalar("x", Ty::Int);
        p2.add_function(g.finish(None));
        let body2 = vec![Stmt::Assign {
            var: v(1),
            value: Expr::Call(crate::program::FnId(0), vec![Expr::var(v(0))]),
        }];
        let loop2 = kernel_loop(v(0), 2, body2);
        assert_eq!(
            compile_kernel(&p2, &loop2).err(),
            Some(CompileError::VoidCallInExpr)
        );
    }

    #[test]
    fn kernel_cache_memoizes_and_counts() {
        let p = Program::new();
        let body = vec![Stmt::Assign {
            var: v(1),
            value: Expr::var(v(0)),
        }];
        let loop_ = kernel_loop(v(0), 2, body);
        let cache = KernelCache::new();
        assert!(cache.get_or_compile(&p, &loop_).is_some());
        assert!(cache.get_or_compile(&p, &loop_).is_some());
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn kernel_cache_counters_exact_across_shards_and_threads() {
        // Loops 0..16 cover every shard twice; 4 threads × 3 passes over
        // all 16 loops = 192 lookups: exactly 16 misses, 176 hits.
        let p = Program::new();
        let loops: Vec<ForLoop> = (0..16)
            .map(|i| {
                let body = vec![Stmt::Assign {
                    var: v(1),
                    value: Expr::var(v(0)),
                }];
                let mut l = kernel_loop(v(0), 2, body);
                l.id = LoopId(i);
                l
            })
            .collect();
        let cache = KernelCache::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..3 {
                        for l in &loops {
                            assert!(cache.get_or_compile(&p, l).is_some());
                        }
                    }
                });
            }
        });
        assert_eq!(cache.misses(), 16);
        assert_eq!(cache.hits(), 4 * 3 * 16 - 16);
    }

    #[test]
    fn invalidate_drops_entry_and_counts_separately() {
        let p = Program::new();
        let body = vec![Stmt::Assign {
            var: v(1),
            value: Expr::var(v(0)),
        }];
        let loop_ = kernel_loop(v(0), 4, body);
        let cache = KernelCache::new();
        assert!(cache.get_or_compile(&p, &loop_).is_some());
        assert_eq!(cache.len(), 1);
        assert!(cache.invalidate(loop_.id.0));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.invalidations(), 1);
        // A second invalidation of the same id is a no-op, not a count.
        assert!(!cache.invalidate(loop_.id.0));
        assert_eq!(cache.invalidations(), 1);
        // Re-fetching recompiles: one more miss, hit count untouched.
        assert!(cache.get_or_compile(&p, &loop_).is_some());
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    #[test]
    fn adopt_from_transplants_kernel_uses_and_native_tiers() {
        let p = Program::new();
        let body = vec![Stmt::Assign {
            var: v(1),
            value: Expr::var(v(0)),
        }];
        let loop_ = kernel_loop(v(0), 4, body);
        let old = KernelCache::new();
        // Two lookups promote the loop; build a native-tier artifact.
        let k1 = old.get_or_compile(&p, &loop_).expect("compiles");
        old.get_or_compile(&p, &loop_);
        let tier: Option<Arc<String>> = old.native_tier(loop_.id.0, |_| "artifact".to_string());
        assert!(tier.is_some());
        assert_eq!(old.uses(loop_.id.0), 2);

        // Transplant under a *different* id, as a hot reload would after
        // loop renumbering.
        let new = KernelCache::new();
        assert!(new.adopt_from(&old, loop_.id.0, 7));
        assert_eq!(new.len(), 1);
        assert_eq!(new.uses(7), 2, "use counter must survive the move");
        // The compiled kernel is shared, not recompiled: same Arc, and the
        // native tier is immediately available (still promoted).
        let mut renumbered = loop_.clone();
        renumbered.id = LoopId(7);
        let k2 = new.get_or_compile(&p, &renumbered).expect("resident");
        assert!(Arc::ptr_eq(&k1, &k2));
        assert_eq!((new.hits(), new.misses()), (1, 0));
        let moved: Option<Arc<String>> = new.native_tier(7, |_| "rebuilt".to_string());
        assert_eq!(moved.as_deref().map(String::as_str), Some("artifact"));

        // Missing source entry or occupied destination: refused.
        assert!(!new.adopt_from(&old, 99, 8));
        assert!(!new.adopt_from(&old, loop_.id.0, 7));
    }
}

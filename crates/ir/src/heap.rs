//! Host array heap: typed array storage with Java reference semantics.

use crate::error::ExecError;
use crate::types::{Ty, Value};
use std::fmt;

/// Handle to an array object on a [`Heap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "array#{}", self.0)
    }
}

/// Typed, contiguous storage for one MiniJava array.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayData {
    Bool(Vec<bool>),
    Int(Vec<i32>),
    Long(Vec<i64>),
    Float(Vec<f32>),
    Double(Vec<f64>),
}

impl ArrayData {
    /// Zero-initialized array of `len` elements of type `ty`.
    pub fn zeroed(ty: Ty, len: usize) -> ArrayData {
        match ty {
            Ty::Bool => ArrayData::Bool(vec![false; len]),
            Ty::Int => ArrayData::Int(vec![0; len]),
            Ty::Long => ArrayData::Long(vec![0; len]),
            Ty::Float => ArrayData::Float(vec![0.0; len]),
            Ty::Double => ArrayData::Double(vec![0.0; len]),
        }
    }

    /// Element type.
    pub fn ty(&self) -> Ty {
        match self {
            ArrayData::Bool(_) => Ty::Bool,
            ArrayData::Int(_) => Ty::Int,
            ArrayData::Long(_) => Ty::Long,
            ArrayData::Float(_) => Ty::Float,
            ArrayData::Double(_) => Ty::Double,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            ArrayData::Bool(v) => v.len(),
            ArrayData::Int(v) => v.len(),
            ArrayData::Long(v) => v.len(),
            ArrayData::Float(v) => v.len(),
            ArrayData::Double(v) => v.len(),
        }
    }

    /// Is the array empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total size in bytes (for the transfer model).
    pub fn size_bytes(&self) -> usize {
        self.len() * self.ty().size_bytes()
    }

    /// Unchecked-typed element read; `idx` must be in bounds.
    pub fn get(&self, idx: usize) -> Value {
        match self {
            ArrayData::Bool(v) => Value::Bool(v[idx]),
            ArrayData::Int(v) => Value::Int(v[idx]),
            ArrayData::Long(v) => Value::Long(v[idx]),
            ArrayData::Float(v) => Value::Float(v[idx]),
            ArrayData::Double(v) => Value::Double(v[idx]),
        }
    }

    /// Element write with an implicit Java assignment conversion; returns an
    /// error if `val` cannot be stored in this array's element type.
    pub fn set(&mut self, idx: usize, val: Value) -> Result<(), ExecError> {
        let elem = self.ty();
        let converted = val.cast(elem).ok_or_else(|| ExecError::TypeMismatch {
            expected: elem.to_string(),
            found: format!("{val}"),
        })?;
        match (self, converted) {
            (ArrayData::Bool(v), Value::Bool(x)) => v[idx] = x,
            (ArrayData::Int(v), Value::Int(x)) => v[idx] = x,
            (ArrayData::Long(v), Value::Long(x)) => v[idx] = x,
            (ArrayData::Float(v), Value::Float(x)) => v[idx] = x,
            (ArrayData::Double(v), Value::Double(x)) => v[idx] = x,
            _ => unreachable!("cast produced mismatched value"),
        }
        Ok(())
    }
}

/// The host heap: a growable arena of arrays addressed by [`ArrayId`].
///
/// Cloning a `Heap` deep-copies every array, which the executors use to
/// snapshot state (e.g. to compare a speculative run against a sequential
/// reference, or to roll back after fault injection in tests).
#[derive(Debug, Clone, Default)]
pub struct Heap {
    arrays: Vec<ArrayData>,
}

impl Heap {
    /// Empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Allocate a zero-initialized array.
    pub fn alloc(&mut self, ty: Ty, len: usize) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayData::zeroed(ty, len));
        id
    }

    /// Allocate an array initialized from `data`.
    pub fn alloc_init(&mut self, data: ArrayData) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(data);
        id
    }

    /// Allocate an `int[]` from a slice.
    pub fn alloc_ints(&mut self, data: &[i32]) -> ArrayId {
        self.alloc_init(ArrayData::Int(data.to_vec()))
    }

    /// Allocate a `double[]` from a slice.
    pub fn alloc_doubles(&mut self, data: &[f64]) -> ArrayId {
        self.alloc_init(ArrayData::Double(data.to_vec()))
    }

    /// Allocate a `float[]` from a slice.
    pub fn alloc_floats(&mut self, data: &[f32]) -> ArrayId {
        self.alloc_init(ArrayData::Float(data.to_vec()))
    }

    /// Allocate a `long[]` from a slice.
    pub fn alloc_longs(&mut self, data: &[i64]) -> ArrayId {
        self.alloc_init(ArrayData::Long(data.to_vec()))
    }

    /// Number of arrays allocated so far.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// Borrow an array.
    pub fn array(&self, id: ArrayId) -> Result<&ArrayData, ExecError> {
        self.arrays
            .get(id.0 as usize)
            .ok_or(ExecError::UnknownArray(id))
    }

    /// Mutably borrow an array.
    pub fn array_mut(&mut self, id: ArrayId) -> Result<&mut ArrayData, ExecError> {
        self.arrays
            .get_mut(id.0 as usize)
            .ok_or(ExecError::UnknownArray(id))
    }

    /// Array length.
    pub fn len_of(&self, id: ArrayId) -> Result<usize, ExecError> {
        Ok(self.array(id)?.len())
    }

    /// Bounds-checked element load.
    pub fn load(&self, id: ArrayId, idx: i64) -> Result<Value, ExecError> {
        let arr = self.array(id)?;
        let len = arr.len();
        if idx < 0 || idx as usize >= len {
            return Err(ExecError::IndexOutOfBounds {
                array: id,
                index: idx,
                len,
            });
        }
        Ok(arr.get(idx as usize))
    }

    /// Bounds-checked element store with assignment conversion.
    pub fn store(&mut self, id: ArrayId, idx: i64, val: Value) -> Result<(), ExecError> {
        let arr = self.array_mut(id)?;
        let len = arr.len();
        if idx < 0 || idx as usize >= len {
            return Err(ExecError::IndexOutOfBounds {
                array: id,
                index: idx,
                len,
            });
        }
        arr.set(idx as usize, val)
    }

    /// Copy of an array as `f64` (convenience for result validation).
    pub fn read_doubles(&self, id: ArrayId) -> Result<Vec<f64>, ExecError> {
        let arr = self.array(id)?;
        Ok((0..arr.len())
            .map(|i| arr.get(i).as_f64().unwrap_or(0.0))
            .collect())
    }

    /// Copy of an array as `i64` (convenience for result validation).
    pub fn read_ints(&self, id: ArrayId) -> Result<Vec<i64>, ExecError> {
        let arr = self.array(id)?;
        Ok((0..arr.len())
            .map(|i| arr.get(i).as_i64().unwrap_or(0))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zeroed_and_rw() {
        let mut h = Heap::new();
        let a = h.alloc(Ty::Int, 4);
        assert_eq!(h.load(a, 0).unwrap(), Value::Int(0));
        h.store(a, 2, Value::Int(9)).unwrap();
        assert_eq!(h.load(a, 2).unwrap(), Value::Int(9));
        assert_eq!(h.len_of(a).unwrap(), 4);
    }

    #[test]
    fn bounds_checks() {
        let mut h = Heap::new();
        let a = h.alloc(Ty::Double, 3);
        assert!(matches!(
            h.load(a, 3),
            Err(ExecError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            h.load(a, -1),
            Err(ExecError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            h.store(a, 100, Value::Double(1.0)),
            Err(ExecError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn store_applies_assignment_conversion() {
        let mut h = Heap::new();
        let a = h.alloc(Ty::Double, 1);
        h.store(a, 0, Value::Int(3)).unwrap();
        assert_eq!(h.load(a, 0).unwrap(), Value::Double(3.0));
    }

    #[test]
    fn store_rejects_bool_into_numeric() {
        let mut h = Heap::new();
        let a = h.alloc(Ty::Int, 1);
        assert!(h.store(a, 0, Value::Bool(true)).is_err());
    }

    #[test]
    fn unknown_array_errors() {
        let h = Heap::new();
        assert!(matches!(
            h.load(ArrayId(0), 0),
            Err(ExecError::UnknownArray(_))
        ));
    }

    #[test]
    fn size_bytes_reflects_type() {
        let mut h = Heap::new();
        let a = h.alloc(Ty::Long, 10);
        assert_eq!(h.array(a).unwrap().size_bytes(), 80);
    }

    #[test]
    fn heap_clone_is_deep() {
        let mut h = Heap::new();
        let a = h.alloc(Ty::Int, 1);
        let snapshot = h.clone();
        h.store(a, 0, Value::Int(5)).unwrap();
        assert_eq!(snapshot.load(a, 0).unwrap(), Value::Int(0));
        assert_eq!(h.load(a, 0).unwrap(), Value::Int(5));
    }
}

//! Programs, functions and parameters.

use crate::span::Span;
use crate::stmt::{ForLoop, LoopId, Stmt};
use crate::types::Ty;
use crate::VarId;
use std::fmt;

/// Index of a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FnId(pub u32);

impl fmt::Display for FnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// Parameter type: scalar or array-of-scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamTy {
    Scalar(Ty),
    Array(Ty),
}

impl fmt::Display for ParamTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamTy::Scalar(t) => write!(f, "{t}"),
            ParamTy::Array(t) => write!(f, "{t}[]"),
        }
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Source-level name (diagnostics only).
    pub name: String,
    /// Environment slot the argument is bound to.
    pub var: VarId,
    /// Parameter type.
    pub ty: ParamTy,
}

/// One MiniJava `static` function lowered to IR.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Source-level name.
    pub name: String,
    /// Parameters in declaration order. Their `var` slots are `0..params.len()`.
    pub params: Vec<Param>,
    /// Return type (`None` = `void`).
    pub ret: Option<Ty>,
    /// Function body.
    pub body: Vec<Stmt>,
    /// Total number of variable slots used by the body (environment size).
    pub num_vars: u32,
    /// Source-level variable names by slot, for diagnostics and reports.
    pub var_names: Vec<String>,
    /// Source position of the function declaration.
    pub span: Span,
}

impl Function {
    /// Name of a variable slot, falling back to the slot id.
    pub fn var_name(&self, v: VarId) -> String {
        self.var_names
            .get(v.index())
            .cloned()
            .unwrap_or_else(|| v.to_string())
    }

    /// Find the annotated loop with the given id anywhere in the body.
    pub fn find_loop(&self, id: LoopId) -> Option<&ForLoop> {
        let mut found = None;
        for s in &self.body {
            s.walk(&mut |s| {
                if let Stmt::For(l) = s {
                    if l.id == id {
                        found = Some(l);
                    }
                }
            });
        }
        found
    }

    /// All loops (annotated or not) in source order.
    pub fn all_loops(&self) -> Vec<&ForLoop> {
        let mut out = Vec::new();
        for s in &self.body {
            s.walk(&mut |s| {
                if let Stmt::For(l) = s {
                    out.push(l);
                }
            });
        }
        out
    }
}

/// A whole MiniJava compilation unit lowered to IR.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Functions in declaration order; [`FnId`] indexes this vector.
    pub functions: Vec<Function>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Add a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FnId {
        let id = FnId(self.functions.len() as u32);
        self.functions.push(f);
        id
    }

    /// Look up a function by id.
    pub fn function(&self, id: FnId) -> Option<&Function> {
        self.functions.get(id.0 as usize)
    }

    /// Look up a function by source name.
    pub fn function_by_name(&self, name: &str) -> Option<(FnId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FnId(i as u32), f))
    }

    /// Find the function containing the loop `id`, plus the loop itself.
    pub fn find_loop(&self, id: LoopId) -> Option<(FnId, &Function, &ForLoop)> {
        for (i, f) in self.functions.iter().enumerate() {
            if let Some(l) = f.find_loop(id) {
                return Some((FnId(i as u32), f, l));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::stmt::LoopAnnotation;

    fn func_with_loop(name: &str, lid: u32) -> Function {
        Function {
            name: name.into(),
            params: vec![],
            ret: None,
            body: vec![Stmt::For(ForLoop {
                id: LoopId(lid),
                var: VarId(0),
                start: Expr::int(0),
                end: Expr::int(4),
                step: Expr::int(1),
                body: vec![],
                annot: Some(LoopAnnotation::parallel()),
                span: Span::none(),
            })],
            num_vars: 1,
            var_names: vec!["i".into()],
            span: Span::none(),
        }
    }

    #[test]
    fn lookup_by_name_and_loop() {
        let mut p = Program::new();
        p.add_function(func_with_loop("a", 0));
        let fb = p.add_function(func_with_loop("b", 1));
        assert_eq!(p.function_by_name("b").unwrap().0, fb);
        let (fid, f, l) = p.find_loop(LoopId(1)).unwrap();
        assert_eq!(fid, fb);
        assert_eq!(f.name, "b");
        assert_eq!(l.id, LoopId(1));
        assert!(p.find_loop(LoopId(9)).is_none());
    }

    #[test]
    fn var_name_fallback() {
        let f = func_with_loop("a", 0);
        assert_eq!(f.var_name(VarId(0)), "i");
        assert_eq!(f.var_name(VarId(5)), "v5");
    }
}

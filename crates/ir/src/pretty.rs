//! Pretty-printing of IR back to MiniJava-style source.
//!
//! The output is valid MiniJava: it re-parses through the front end, and
//! the round-trip is semantics-preserving (tested in
//! `crates/frontend/tests/roundtrip.rs`). Useful for debugging lowered
//! programs and for reports that show "what the translator saw".

use crate::expr::{BinOp, Expr, UnOp};
use crate::program::{Function, ParamTy, Program};
use crate::stmt::{ForLoop, LoopAnnotation, Stmt};
use crate::types::Value;
use std::fmt::Write;

/// Render a whole program.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for f in &p.functions {
        out.push_str(&function(p, f));
        out.push('\n');
    }
    out
}

/// Render one function.
pub fn function(p: &Program, f: &Function) -> String {
    let mut out = String::new();
    let ret = f
        .ret
        .map(|t| t.to_string())
        .unwrap_or_else(|| "void".to_string());
    let params: Vec<String> = f
        .params
        .iter()
        .map(|prm| match prm.ty {
            ParamTy::Scalar(t) => format!("{t} {}", prm.name),
            ParamTy::Array(t) => format!("{t}[] {}", prm.name),
        })
        .collect();
    let _ = writeln!(out, "static {ret} {}({}) {{", f.name, params.join(", "));
    let mut pr = Pretty { p, f, out };
    for s in &f.body {
        pr.stmt(s, 1);
    }
    pr.out.push_str("}\n");
    pr.out
}

struct Pretty<'a> {
    p: &'a Program,
    f: &'a Function,
    out: String,
}

fn binop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::UShr => ">>>",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::LAnd => "&&",
        BinOp::LOr => "||",
    }
}

impl Pretty<'_> {
    fn indent(&mut self, depth: usize) {
        for _ in 0..depth {
            self.out.push_str("    ");
        }
    }

    fn name(&self, v: crate::VarId) -> String {
        self.f.var_name(v)
    }

    fn annot(&mut self, a: &LoopAnnotation, depth: usize) {
        self.indent(depth);
        self.out.push_str("/* acc parallel");
        if !a.private.is_empty() {
            let names: Vec<String> = a.private.iter().map(|v| self.name(*v)).collect();
            let _ = write!(self.out, " private({})", names.join(", "));
        }
        let ranges = |label: &str, rs: &[crate::stmt::ArrayRange], out: &mut String| {
            if rs.is_empty() {
                return;
            }
            let items: Vec<String> = rs
                .iter()
                .map(|r| match (&r.lo, &r.hi) {
                    (Some(lo), Some(hi)) => {
                        format!(
                            "{}[{}:{}]",
                            self.f.var_name(r.array),
                            expr(self.p, self.f, lo),
                            expr(self.p, self.f, hi)
                        )
                    }
                    _ => self.f.var_name(r.array),
                })
                .collect();
            let _ = write!(out, " {label}({})", items.join(", "));
        };
        let mut tmp = std::mem::take(&mut self.out);
        ranges("copyin", &a.copyin, &mut tmp);
        ranges("copyout", &a.copyout, &mut tmp);
        ranges("create", &a.create, &mut tmp);
        self.out = tmp;
        if let Some(t) = a.threads {
            let _ = write!(self.out, " threads({t})");
        }
        if let Some(s) = a.scheme {
            let _ = write!(self.out, " scheme({s})");
        }
        self.out.push_str(" */\n");
    }

    fn stmt(&mut self, s: &Stmt, depth: usize) {
        match s {
            Stmt::DeclVar { var, ty, init } => {
                self.indent(depth);
                let _ = match init {
                    Some(e) => writeln!(
                        self.out,
                        "{ty} {} = {};",
                        self.name(*var),
                        expr(self.p, self.f, e)
                    ),
                    None => writeln!(self.out, "{ty} {};", self.name(*var)),
                };
            }
            Stmt::NewArray { var, elem, len } => {
                self.indent(depth);
                let _ = writeln!(
                    self.out,
                    "{elem}[] {} = new {elem}[{}];",
                    self.name(*var),
                    expr(self.p, self.f, len)
                );
            }
            Stmt::Assign { var, value } => {
                self.indent(depth);
                let _ = writeln!(
                    self.out,
                    "{} = {};",
                    self.name(*var),
                    expr(self.p, self.f, value)
                );
            }
            Stmt::Store {
                array,
                index,
                value,
                ..
            } => {
                self.indent(depth);
                let _ = writeln!(
                    self.out,
                    "{}[{}] = {};",
                    self.name(*array),
                    expr(self.p, self.f, index),
                    expr(self.p, self.f, value)
                );
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.indent(depth);
                let _ = writeln!(self.out, "if ({}) {{", expr(self.p, self.f, cond));
                for s in then_branch {
                    self.stmt(s, depth + 1);
                }
                if else_branch.is_empty() {
                    self.indent(depth);
                    self.out.push_str("}\n");
                } else {
                    self.indent(depth);
                    self.out.push_str("} else {\n");
                    for s in else_branch {
                        self.stmt(s, depth + 1);
                    }
                    self.indent(depth);
                    self.out.push_str("}\n");
                }
            }
            Stmt::For(ForLoop {
                var,
                start,
                end,
                step,
                body,
                annot,
                ..
            }) => {
                if let Some(a) = annot {
                    self.annot(a, depth);
                }
                self.indent(depth);
                let v = self.name(*var);
                let _ = writeln!(
                    self.out,
                    "for (int {v} = {}; {v} < {}; {v} = {v} + {}) {{",
                    expr(self.p, self.f, start),
                    expr(self.p, self.f, end),
                    expr(self.p, self.f, step)
                );
                for s in body {
                    self.stmt(s, depth + 1);
                }
                self.indent(depth);
                self.out.push_str("}\n");
            }
            Stmt::While { cond, body } => {
                self.indent(depth);
                let _ = writeln!(self.out, "while ({}) {{", expr(self.p, self.f, cond));
                for s in body {
                    self.stmt(s, depth + 1);
                }
                self.indent(depth);
                self.out.push_str("}\n");
            }
            Stmt::Return(e) => {
                self.indent(depth);
                match e {
                    Some(e) => {
                        let _ = writeln!(self.out, "return {};", expr(self.p, self.f, e));
                    }
                    None => self.out.push_str("return;\n"),
                }
            }
            Stmt::Break => {
                self.indent(depth);
                self.out.push_str("break;\n");
            }
            Stmt::Continue => {
                self.indent(depth);
                self.out.push_str("continue;\n");
            }
            Stmt::ExprStmt(e) => {
                self.indent(depth);
                let _ = writeln!(self.out, "{};", expr(self.p, self.f, e));
            }
        }
    }
}

/// Render one expression (fully parenthesized — correctness over beauty).
pub fn expr(p: &Program, f: &Function, e: &Expr) -> String {
    match e {
        Expr::Const(v) => match v {
            Value::Bool(b) => b.to_string(),
            Value::Int(x) => {
                if *x < 0 {
                    format!("(0 - {})", x.unsigned_abs())
                } else {
                    x.to_string()
                }
            }
            Value::Long(x) => {
                if *x < 0 {
                    format!("(0L - {}L)", x.unsigned_abs())
                } else {
                    format!("{x}L")
                }
            }
            Value::Float(x) => format!("{x:?}f"),
            Value::Double(x) => format!("{x:?}"),
            Value::Array(a) => format!("/*{a}*/0"),
        },
        Expr::Var(v) => f.var_name(*v),
        Expr::Unary(op, a) => match op {
            UnOp::Neg => format!("(0 - {})", expr(p, f, a)),
            UnOp::Not => format!("(!{})", expr(p, f, a)),
            UnOp::BitNot => format!("(~{})", expr(p, f, a)),
        },
        Expr::Binary(op, a, b) => {
            format!("({} {} {})", expr(p, f, a), binop(*op), expr(p, f, b))
        }
        Expr::Cast(ty, a) => format!("(({ty}) {})", expr(p, f, a)),
        Expr::Index { array, index } => {
            format!("{}[{}]", f.var_name(*array), expr(p, f, index))
        }
        Expr::Len(v) => format!("{}.length", f.var_name(*v)),
        Expr::Intrinsic(i, args) => {
            let args: Vec<String> = args.iter().map(|a| expr(p, f, a)).collect();
            format!("{i}({})", args.join(", "))
        }
        Expr::Call(fid, args) => {
            let name = p
                .function(*fid)
                .map(|g| g.name.clone())
                .unwrap_or_else(|| fid.to_string());
            let args: Vec<String> = args.iter().map(|a| expr(p, f, a)).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Ternary(c, t, e2) => format!(
            "({} ? {} : {})",
            expr(p, f, c),
            expr(p, f, t),
            expr(p, f, e2)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FnBuilder;
    use crate::types::Ty;

    #[test]
    fn renders_builder_output_as_minijava() {
        let mut prog = Program::new();
        let mut fb = FnBuilder::new("scale");
        let a = fb.param_array("a", Ty::Double);
        let n = fb.param_scalar("n", Ty::Int);
        fb.for_loop(
            "i",
            Expr::int(0),
            Expr::var(n),
            Expr::int(1),
            Some(crate::stmt::LoopAnnotation::parallel()),
            |_, i| {
                vec![Stmt::Store {
                    array: a,
                    index: Expr::var(i),
                    value: Expr::index(a, Expr::var(i)).mul(Expr::double(2.0)),
                    span: crate::span::Span::none(),
                }]
            },
        );
        prog.add_function(fb.finish(None));
        let src = program(&prog);
        assert!(src.contains("static void scale(double[] a, int n) {"));
        assert!(src.contains("/* acc parallel */"));
        assert!(src.contains("for (int i = 0; i < n; i = i + 1) {"));
        assert!(src.contains("a[i] = (a[i] * 2.0);"));
    }

    #[test]
    fn negative_literals_render_parseably() {
        let prog = Program::new();
        let f = Function {
            name: "x".into(),
            params: vec![],
            ret: None,
            body: vec![],
            num_vars: 0,
            var_names: vec![],
            span: crate::Span::none(),
        };
        assert_eq!(expr(&prog, &f, &Expr::int(-5)), "(0 - 5)");
        assert_eq!(expr(&prog, &f, &Expr::int(7)), "7");
        assert_eq!(expr(&prog, &f, &Expr::long(-3)), "(0L - 3L)");
    }
}

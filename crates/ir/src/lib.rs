//! # japonica-ir
//!
//! The typed loop intermediate representation (IR) shared by every Japonica
//! execution engine: the sequential CPU interpreter, the multi-threaded CPU
//! chunk executor, the SIMT GPU simulator, the GPU-TLS speculation engine and
//! the dependency profiler.
//!
//! The IR is a structured (tree-shaped, non-SSA) representation of MiniJava
//! functions. Loops that carry an OpenACC-style annotation keep it as
//! [`LoopAnnotation`] metadata so that downstream phases (static analysis,
//! translation, scheduling) can find the parallelization candidates.
//!
//! Execution is performed by a tree-walking interpreter ([`interp::Interp`])
//! that is generic over a [`Backend`]: the backend owns array memory and
//! receives a callback for every dynamic operation, which is how the
//! profiler observes memory accesses, how GPU-TLS redirects speculative
//! stores into write buffers, and how the cost models account simulated
//! cycles.

pub mod builder;
pub mod bytecode;
pub mod cost;
pub mod error;
pub mod expr;
pub mod heap;
pub mod interp;
pub mod native;
pub mod ops;
pub mod pretty;
pub mod program;
pub mod span;
pub mod stmt;
pub mod types;

pub use bytecode::{
    compile_kernel, Chunk, CompileError, CompiledKernel, ExecEngine, Instr, KernelCache, ScalarVm,
    NATIVE_PROMOTE_USES,
};
pub use cost::{estimate_body_cost, estimate_loop_cost, CostTable, OpClass, OpCounts};
pub use error::ExecError;
pub use expr::{BinOp, Expr, Intrinsic, UnOp};
pub use heap::{ArrayData, ArrayId, Heap};
pub use interp::{Backend, CountingBackend, Env, Flow, HeapBackend, Interp, LoopBounds};
pub use native::{compile_native, NativeKernel, NativeVm};
pub use program::{FnId, Function, Param, ParamTy, Program};
pub use span::Span;
pub use stmt::{annotated_loops, ArrayRange, ForLoop, LoopAnnotation, LoopId, Scheme, Stmt};
pub use types::{Ty, Value};

/// A variable slot inside one function's environment.
///
/// Slots are assigned densely by the front end (or the [`builder`]) so an
/// environment is a plain vector indexed by `VarId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The slot index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VarId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

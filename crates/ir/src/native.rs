//! The scalar **native tier**: threaded-code compilation of kernel bytecode.
//!
//! [`compile_native`] lowers a [`CompiledKernel`] one step further than the
//! bytecode compiler: every instruction becomes a *monomorphized op closure*
//! with its operand registers, constant-pool values, callee chunks and error
//! payloads pre-resolved at compile time, and structured control flow
//! becomes nested closure arrays. Execution is then a direct-call sweep over
//! a flat `Vec<Op>` — no per-instruction decode `match`, no pool indexing,
//! no extent arithmetic — which is the classic threaded-code escape hatch
//! from interpreter dispatch overhead.
//!
//! [`NativeVm`] replays [`crate::bytecode::ScalarVm`] (and therefore the
//! tree walker) **bit for bit**: same `Backend::op` charge sequence, same
//! memory-access order, same error payloads, same flow semantics. That is
//! the determinism contract the three-way `engine_differential` proptests
//! pin, and it is why the bytecode VM can serve as the always-correct
//! fallback tier: a loop that the bytecode compiler declines
//! ([`crate::bytecode::CompileError`]) never reaches this module, and any
//! runtime bail-out (deep recursion, arity miss) surfaces as the identical
//! `ExecError` the lower tiers produce.

use std::sync::Arc;

use crate::bytecode::{is_float_v, CompiledKernel, Instr};
use crate::cost::OpClass;
use crate::error::ExecError;
use crate::expr::BinOp;
use crate::interp::{Backend, Env, Flow, LoopBounds};
use crate::ops;
use crate::program::ParamTy;
use crate::types::Value;
use crate::VarId;

/// One pre-compiled op: a direct-callable closure over the VM state.
///
/// `base` is the register-frame base of the executing chunk (calls push a
/// fresh frame region); the backend is dynamic so one compiled artifact is
/// shared across every backend the schedulers use (counting, buffered,
/// tracing) and can live in the [`crate::KernelCache`].
type Op =
    Box<dyn Fn(&mut NativeVm, usize, &mut dyn Backend) -> Result<Flow, ExecError> + Send + Sync>;

/// A lowered chunk: the closure array plus the frame metadata needed to
/// push it as a call frame.
struct NativeChunk {
    ops: Vec<Op>,
    num_regs: usize,
    params: Vec<(usize, ParamTy)>,
}

/// A kernel fully lowered to threaded code. Build once via
/// [`compile_native`] (typically through [`crate::KernelCache::native_tier`]
/// once a loop is hot), share via `Arc`, execute via [`NativeVm`].
pub struct NativeKernel {
    entry: Arc<NativeChunk>,
    num_vars: usize,
}

impl std::fmt::Debug for NativeKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeKernel")
            .field("entry_ops", &self.entry.ops.len())
            .field("num_regs", &self.entry.num_regs)
            .field("num_vars", &self.num_vars)
            .finish()
    }
}

/// Run a closure block: normal flow falls through, anything else (break,
/// continue, return) propagates to the enclosing construct — exactly the
/// `run` loop of the bytecode VM with the decode `match` deleted.
fn run_ops(
    vm: &mut NativeVm,
    ops: &[Op],
    base: usize,
    be: &mut dyn Backend,
) -> Result<Flow, ExecError> {
    for op in ops {
        match op(vm, base, be)? {
            Flow::Normal => {}
            other => return Ok(other),
        }
    }
    Ok(Flow::Normal)
}

/// Bind arguments into the freshly pushed frame at `nbase` and run the
/// callee chunk. The `Call` op truncates the arenas afterwards. Mirrors
/// `ScalarVm::enter_call` (same conversion, same error payloads).
fn enter_call(
    vm: &mut NativeVm,
    c: &NativeChunk,
    base: usize,
    args: &[usize],
    nbase: usize,
    be: &mut dyn Backend,
) -> Result<Flow, ExecError> {
    for (i, (preg, pty)) in c.params.iter().enumerate() {
        let a = vm.regs[base + args[i]];
        // Apply the assignment conversion for scalar params.
        let v = match pty {
            ParamTy::Scalar(t) => a.cast(*t).ok_or_else(|| ExecError::TypeMismatch {
                expected: t.to_string(),
                found: format!("{a}"),
            })?,
            ParamTy::Array(_) => match a {
                Value::Array(_) => a,
                other => {
                    return Err(ExecError::TypeMismatch {
                        expected: format!("{pty}"),
                        found: format!("{other}"),
                    })
                }
            },
        };
        vm.regs[nbase + *preg] = v;
        vm.bound[nbase + *preg] = true;
    }
    run_ops(vm, &c.ops, nbase, be)
}

/// Scalar VM over a [`NativeKernel`]: the same reusable register/boundness
/// arenas as [`crate::bytecode::ScalarVm`], but execution is a direct-call
/// sweep over the pre-compiled closure array.
#[derive(Debug, Default)]
pub struct NativeVm {
    regs: Vec<Value>,
    bound: Vec<bool>,
}

impl NativeVm {
    /// An empty VM (arenas grow on first use and are then reused).
    pub fn new() -> NativeVm {
        NativeVm::default()
    }

    /// Execute iterations `k_lo..k_hi` of the lowered kernel against `env`,
    /// mirroring `ScalarVm::exec_range` bit for bit: environment loaded
    /// into registers up front, per-iteration induction bookkeeping charges,
    /// every bound variable slot written back on exit (including error
    /// exits).
    #[allow(clippy::too_many_arguments)] // mirrors the walker's exec_range signature
    pub fn exec_range<B: Backend>(
        &mut self,
        nk: &NativeKernel,
        var: VarId,
        bounds: &LoopBounds,
        k_lo: u64,
        k_hi: u64,
        env: &mut Env,
        be: &mut B,
    ) -> Result<Flow, ExecError> {
        let be: &mut dyn Backend = be;
        let num_vars = nk.num_vars;
        let num_regs = nk.entry.num_regs;
        self.regs.clear();
        self.regs.resize(num_regs, Value::Int(0));
        self.bound.clear();
        self.bound.resize(num_regs, false);
        for v in 0..num_vars {
            let vid = VarId(v as u32);
            if env.is_set(vid) {
                if let Ok(val) = env.get(vid) {
                    self.regs[v] = val;
                    self.bound[v] = true;
                }
            }
        }
        let vi = var.index();
        let mut out = Ok(Flow::Normal);
        for kk in k_lo..k_hi {
            // Loop bookkeeping: induction update + bound test + back edge.
            be.op(OpClass::IntAlu);
            be.op(OpClass::Branch);
            self.regs[vi] = Value::Int(bounds.value_of(kk) as i32);
            self.bound[vi] = true;
            match run_ops(self, &nk.entry.ops, 0, be) {
                Ok(Flow::Normal) | Ok(Flow::Continue) => {}
                other => {
                    out = other;
                    break;
                }
            }
        }
        for v in 0..num_vars {
            if self.bound[v] {
                env.set(VarId(v as u32), self.regs[v]);
            }
        }
        out
    }
}

/// Lower a compiled kernel to threaded code.
///
/// Lowering is total: every bytecode instruction has a closure form, so a
/// kernel that bytecode-compiled always native-compiles (the bail-out
/// ladder lives entirely in [`crate::bytecode::compile_kernel`]).
pub fn compile_native(k: &CompiledKernel) -> NativeKernel {
    let mut lw = Lowerer {
        k,
        done: vec![None; k.chunks.len()],
    };
    let entry = lw.chunk(0);
    NativeKernel {
        num_vars: k.chunks[0].num_vars as usize,
        entry,
    }
}

/// Recursive chunk lowerer with memoization: the chunk call graph is a DAG
/// (the bytecode compiler rejects recursion), so each chunk is lowered once
/// and `Call` ops share the `Arc`.
struct Lowerer<'k> {
    k: &'k CompiledKernel,
    done: Vec<Option<Arc<NativeChunk>>>,
}

impl Lowerer<'_> {
    fn chunk(&mut self, ci: usize) -> Arc<NativeChunk> {
        if let Some(c) = &self.done[ci] {
            return Arc::clone(c);
        }
        let src = &self.k.chunks[ci];
        let ops = self.lower(ci, 0, src.code.len() as u32);
        let src = &self.k.chunks[ci];
        let c = Arc::new(NativeChunk {
            ops,
            num_regs: src.num_regs as usize,
            params: src.params.iter().map(|(r, t)| (*r as usize, *t)).collect(),
        });
        self.done[ci] = Some(Arc::clone(&c));
        c
    }

    /// Lower instructions `lo..hi` of chunk `ci`, walking the same
    /// `next_pc` extents the bytecode VM walks at run time.
    fn lower(&mut self, ci: usize, lo: u32, hi: u32) -> Vec<Op> {
        let k = self.k;
        let mut ops = Vec::new();
        let mut pc = lo;
        while pc < hi {
            let instr = &k.chunks[ci].code[pc as usize];
            let next = instr.next_pc(pc);
            ops.push(self.lower_instr(ci, instr));
            pc = next;
        }
        ops
    }

    /// One instruction → one closure. Each arm resolves its operands now
    /// and mirrors the corresponding `ScalarVm::run` arm exactly: same
    /// charge order, same checks, same error payloads.
    fn lower_instr(&mut self, ci: usize, instr: &Instr) -> Op {
        match instr {
            Instr::Const { dst, pool } => {
                let dst = *dst as usize;
                let v = self.k.pool[*pool as usize];
                Box::new(move |vm, base, be| {
                    be.op(OpClass::Move);
                    vm.regs[base + dst] = v;
                    Ok(Flow::Normal)
                })
            }
            Instr::Copy { dst, src } => {
                let (dst, src) = (*dst as usize, *src as usize);
                let vid = VarId(src as u32);
                Box::new(move |vm, base, be| {
                    be.op(OpClass::Move);
                    if !vm.bound[base + src] {
                        return Err(ExecError::UnboundVariable(vid));
                    }
                    vm.regs[base + dst] = vm.regs[base + src];
                    Ok(Flow::Normal)
                })
            }
            Instr::Unary {
                op,
                dst,
                src,
                cls_i,
                cls_f,
            } => {
                let (op, dst, src) = (*op, *dst as usize, *src as usize);
                let (cls_i, cls_f) = (*cls_i, *cls_f);
                Box::new(move |vm, base, be| {
                    let v = vm.regs[base + src];
                    be.op(if is_float_v(v) { cls_f } else { cls_i });
                    vm.regs[base + dst] = ops::unary(op, v)?;
                    Ok(Flow::Normal)
                })
            }
            Instr::Binary {
                op,
                dst,
                a,
                b,
                cls_i,
                cls_f,
            } => {
                let (op, dst, a, b) = (*op, *dst as usize, *a as usize, *b as usize);
                let (cls_i, cls_f) = (*cls_i, *cls_f);
                Box::new(move |vm, base, be| {
                    let va = vm.regs[base + a];
                    let vb = vm.regs[base + b];
                    be.op(if is_float_v(va) || is_float_v(vb) {
                        cls_f
                    } else {
                        cls_i
                    });
                    vm.regs[base + dst] = ops::binary(op, va, vb)?;
                    Ok(Flow::Normal)
                })
            }
            Instr::Cast { ty, dst, src } => {
                let (ty, dst, src) = (*ty, *dst as usize, *src as usize);
                Box::new(move |vm, base, be| {
                    let v = vm.regs[base + src];
                    be.op(OpClass::Cast);
                    vm.regs[base + dst] = v.cast(ty).ok_or_else(|| ExecError::InvalidCast {
                        from: format!("{v}"),
                        to: ty,
                    })?;
                    Ok(Flow::Normal)
                })
            }
            Instr::GuardArray { arr, var } => {
                let (arr, var) = (*arr as usize, *var);
                Box::new(move |vm, base, _be| {
                    if !vm.bound[base + arr] {
                        return Err(ExecError::UnboundVariable(var));
                    }
                    let v = vm.regs[base + arr];
                    if v.as_array().is_none() {
                        return Err(ExecError::TypeMismatch {
                            expected: "array".into(),
                            found: format!("{var}"),
                        });
                    }
                    Ok(Flow::Normal)
                })
            }
            Instr::CheckIdx { idx } => {
                let idx = *idx as usize;
                Box::new(move |vm, base, _be| {
                    let v = vm.regs[base + idx];
                    if v.as_i64().is_none() {
                        return Err(ExecError::TypeMismatch {
                            expected: "int index".into(),
                            found: format!("{v}"),
                        });
                    }
                    Ok(Flow::Normal)
                })
            }
            Instr::Load { dst, arr, var, idx } => {
                let (dst, arr, var, idx) = (*dst as usize, *arr as usize, *var, *idx as usize);
                Box::new(move |vm, base, be| {
                    let av = vm.regs[base + arr];
                    let a = av.as_array().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "array".into(),
                        found: format!("{var}"),
                    })?;
                    let iv = vm.regs[base + idx];
                    let i = iv.as_i64().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "int index".into(),
                        found: format!("{iv}"),
                    })?;
                    be.op(OpClass::Load);
                    vm.regs[base + dst] = be.load(a, i)?;
                    Ok(Flow::Normal)
                })
            }
            Instr::Len { dst, arr, var } => {
                let (dst, arr, var) = (*dst as usize, *arr as usize, *var);
                Box::new(move |vm, base, be| {
                    if !vm.bound[base + arr] {
                        return Err(ExecError::UnboundVariable(var));
                    }
                    let v = vm.regs[base + arr];
                    let a = v.as_array().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "array".into(),
                        found: format!("{var}"),
                    })?;
                    be.op(OpClass::Move);
                    vm.regs[base + dst] = Value::Int(be.array_len(a)? as i32);
                    Ok(Flow::Normal)
                })
            }
            Instr::Intrinsic { f, cls, dst, args } => {
                let (f, cls, dst) = (*f, *cls, *dst as usize);
                let args: Vec<usize> = args.iter().map(|r| *r as usize).collect();
                Box::new(move |vm, base, be| {
                    let mut buf = [Value::Int(0); 4];
                    for (i, r) in args.iter().enumerate() {
                        buf[i] = vm.regs[base + r];
                    }
                    be.op(cls);
                    vm.regs[base + dst] = ops::intrinsic(f, &buf[..args.len()])?;
                    Ok(Flow::Normal)
                })
            }
            Instr::Call { chunk, dst, args } => {
                let callee = self.chunk(*chunk as usize);
                let dst = dst.map(|d| d as usize);
                let args: Vec<usize> = args.iter().map(|r| *r as usize).collect();
                Box::new(move |vm, base, be| {
                    be.op(OpClass::Call);
                    let nbase = vm.regs.len();
                    vm.regs.resize(nbase + callee.num_regs, Value::Int(0));
                    vm.bound.resize(nbase + callee.num_regs, false);
                    let res = enter_call(vm, &callee, base, &args, nbase, be);
                    vm.regs.truncate(nbase);
                    vm.bound.truncate(nbase);
                    let ret = match res? {
                        Flow::Return(v) => v,
                        Flow::Normal => None,
                        Flow::Break | Flow::Continue => {
                            return Err(ExecError::Aborted(
                                "break/continue escaped function body".into(),
                            ))
                        }
                    };
                    if let Some(dst) = dst {
                        let v = ret.ok_or_else(|| ExecError::TypeMismatch {
                            expected: "value".into(),
                            found: "void call in expression".into(),
                        })?;
                        vm.regs[base + dst] = v;
                    }
                    Ok(Flow::Normal)
                })
            }
            Instr::Sc {
                op,
                dst,
                lhs,
                rhs_range,
                rhs,
            } => {
                let (op, dst, lhs, rhs) = (*op, *dst as usize, *lhs as usize, *rhs as usize);
                let rhs_ops = self.lower(ci, rhs_range.0, rhs_range.1);
                Box::new(move |vm, base, be| {
                    let v = vm.regs[base + lhs];
                    let lb = v.as_bool().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "boolean".into(),
                        found: format!("{v}"),
                    })?;
                    be.op(OpClass::Branch);
                    let out = match (op, lb) {
                        (BinOp::LAnd, false) => Value::Bool(false),
                        (BinOp::LOr, true) => Value::Bool(true),
                        _ => {
                            run_ops(vm, &rhs_ops, base, be)?;
                            let rv = vm.regs[base + rhs];
                            let rb = rv.as_bool().ok_or_else(|| ExecError::TypeMismatch {
                                expected: "boolean".into(),
                                found: format!("{rv}"),
                            })?;
                            Value::Bool(rb)
                        }
                    };
                    vm.regs[base + dst] = out;
                    Ok(Flow::Normal)
                })
            }
            Instr::Ternary {
                dst,
                cond,
                t_range,
                t_dst,
                f_range,
                f_dst,
            } => {
                let (dst, cond) = (*dst as usize, *cond as usize);
                let (t_dst, f_dst) = (*t_dst as usize, *f_dst as usize);
                let t_ops = self.lower(ci, t_range.0, t_range.1);
                let f_ops = self.lower(ci, f_range.0, f_range.1);
                Box::new(move |vm, base, be| {
                    let cv = vm.regs[base + cond];
                    let c = cv.as_bool().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "boolean".into(),
                        found: format!("{cv}"),
                    })?;
                    be.op(OpClass::Branch);
                    let (ops, src) = if c { (&t_ops, t_dst) } else { (&f_ops, f_dst) };
                    run_ops(vm, ops, base, be)?;
                    vm.regs[base + dst] = vm.regs[base + src];
                    Ok(Flow::Normal)
                })
            }
            Instr::Decl { var, ty, init } => {
                let (var, ty) = (*var as usize, *ty);
                let init = init.map(|r| r as usize);
                Box::new(move |vm, base, be| {
                    let v = match init {
                        Some(r) => {
                            let raw = vm.regs[base + r];
                            raw.cast(ty).ok_or_else(|| ExecError::TypeMismatch {
                                expected: ty.to_string(),
                                found: format!("{raw}"),
                            })?
                        }
                        None => ty.zero(),
                    };
                    be.op(OpClass::Move);
                    vm.regs[base + var] = v;
                    vm.bound[base + var] = true;
                    Ok(Flow::Normal)
                })
            }
            Instr::Assign { var, src } => {
                let (var, src) = (*var as usize, *src as usize);
                Box::new(move |vm, base, be| {
                    let mut v = vm.regs[base + src];
                    // Preserve the declared scalar type across re-assignment.
                    if vm.bound[base + var] {
                        if let Some(ty) = vm.regs[base + var].ty() {
                            v = v.cast(ty).ok_or_else(|| ExecError::TypeMismatch {
                                expected: ty.to_string(),
                                found: format!("{v}"),
                            })?;
                        }
                    }
                    be.op(OpClass::Move);
                    vm.regs[base + var] = v;
                    vm.bound[base + var] = true;
                    Ok(Flow::Normal)
                })
            }
            Instr::Store { arr, var, idx, val } => {
                let (arr, var, idx, val) = (*arr as usize, *var, *idx as usize, *val as usize);
                Box::new(move |vm, base, be| {
                    let av = vm.regs[base + arr];
                    let a = av.as_array().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "array".into(),
                        found: format!("{var}"),
                    })?;
                    let iv = vm.regs[base + idx];
                    let i = iv.as_i64().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "int index".into(),
                        found: format!("{iv}"),
                    })?;
                    let v = vm.regs[base + val];
                    be.op(OpClass::Store);
                    be.store(a, i, v)?;
                    Ok(Flow::Normal)
                })
            }
            Instr::NewArray {
                var,
                elem,
                len_range,
                len,
            } => {
                let (var, elem, len) = (*var as usize, *elem, *len as usize);
                let len_ops = self.lower(ci, len_range.0, len_range.1);
                Box::new(move |vm, base, be| {
                    run_ops(vm, &len_ops, base, be)?;
                    let lv = vm.regs[base + len];
                    let n = lv.as_i64().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "int".into(),
                        found: "non-integral length".into(),
                    })?;
                    if n < 0 {
                        return Err(ExecError::NegativeArraySize(n));
                    }
                    be.op(OpClass::Move);
                    let id = be.alloc(elem, n as usize)?;
                    vm.regs[base + var] = Value::Array(id);
                    vm.bound[base + var] = true;
                    Ok(Flow::Normal)
                })
            }
            Instr::If {
                cond,
                then_range,
                else_range,
            } => {
                let cond = *cond as usize;
                let then_ops = self.lower(ci, then_range.0, then_range.1);
                let else_ops = self.lower(ci, else_range.0, else_range.1);
                Box::new(move |vm, base, be| {
                    let cv = vm.regs[base + cond];
                    let c = cv.as_bool().ok_or_else(|| ExecError::TypeMismatch {
                        expected: "boolean".into(),
                        found: format!("{cv}"),
                    })?;
                    be.op(OpClass::Branch);
                    let ops = if c { &then_ops } else { &else_ops };
                    run_ops(vm, ops, base, be)
                })
            }
            Instr::While {
                cond_range,
                cond,
                body_range,
            } => {
                let cond = *cond as usize;
                let cond_ops = self.lower(ci, cond_range.0, cond_range.1);
                let body_ops = self.lower(ci, body_range.0, body_range.1);
                Box::new(move |vm, base, be| {
                    loop {
                        run_ops(vm, &cond_ops, base, be)?;
                        let cv = vm.regs[base + cond];
                        let c = cv.as_bool().ok_or_else(|| ExecError::TypeMismatch {
                            expected: "boolean".into(),
                            found: format!("{cv}"),
                        })?;
                        be.op(OpClass::Branch);
                        if !c {
                            break;
                        }
                        match run_ops(vm, &body_ops, base, be)? {
                            Flow::Normal | Flow::Continue => {}
                            Flow::Break => break,
                            ret @ Flow::Return(_) => return Ok(ret),
                        }
                    }
                    Ok(Flow::Normal)
                })
            }
            Instr::For {
                var,
                start_range,
                start,
                end_range,
                end,
                step_range,
                step,
                body_range,
            } => {
                let (var, start, end, step) = (
                    *var as usize,
                    *start as usize,
                    *end as usize,
                    *step as usize,
                );
                let start_ops = self.lower(ci, start_range.0, start_range.1);
                let end_ops = self.lower(ci, end_range.0, end_range.1);
                let step_ops = self.lower(ci, step_range.0, step_range.1);
                let body_ops = self.lower(ci, body_range.0, body_range.1);
                Box::new(move |vm, base, be| {
                    let as_int = |v: Value| {
                        v.as_i64().ok_or_else(|| ExecError::TypeMismatch {
                            expected: "int".into(),
                            found: format!("{v}"),
                        })
                    };
                    run_ops(vm, &start_ops, base, be)?;
                    let s = as_int(vm.regs[base + start])?;
                    run_ops(vm, &end_ops, base, be)?;
                    let e = as_int(vm.regs[base + end])?;
                    run_ops(vm, &step_ops, base, be)?;
                    let st = as_int(vm.regs[base + step])?;
                    if st <= 0 {
                        return Err(ExecError::NonPositiveStep(st));
                    }
                    let b2 = LoopBounds {
                        start: s,
                        end: e,
                        step: st,
                    };
                    for kk in 0..b2.trip() {
                        be.op(OpClass::IntAlu);
                        be.op(OpClass::Branch);
                        vm.regs[base + var] = Value::Int(b2.value_of(kk) as i32);
                        vm.bound[base + var] = true;
                        match run_ops(vm, &body_ops, base, be)? {
                            Flow::Normal | Flow::Continue => {}
                            Flow::Break => break,
                            ret @ Flow::Return(_) => return Ok(ret),
                        }
                    }
                    Ok(Flow::Normal)
                })
            }
            Instr::Return { val_range, val } => {
                let val = val.map(|r| r as usize);
                let val_ops = self.lower(ci, val_range.0, val_range.1);
                Box::new(move |vm, base, be| {
                    run_ops(vm, &val_ops, base, be)?;
                    Ok(Flow::Return(val.map(|r| vm.regs[base + r])))
                })
            }
            Instr::Break => Box::new(|_, _, _| Ok(Flow::Break)),
            Instr::Continue => Box::new(|_, _, _| Ok(Flow::Continue)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FnBuilder;
    use crate::bytecode::{compile_kernel, KernelCache, ScalarVm, NATIVE_PROMOTE_USES};
    use crate::expr::{Expr, Intrinsic};
    use crate::heap::{ArrayId, Heap};
    use crate::interp::{HeapBackend, Interp};
    use crate::program::Program;
    use crate::span::Span;
    use crate::stmt::{ForLoop, LoopId, Stmt};
    use crate::types::Ty;

    /// Backend recording the exact `op` charge sequence, so the tests can
    /// assert bit-level replay (order, not just totals).
    struct TraceBackend<'h> {
        inner: HeapBackend<'h>,
        trace: Vec<OpClass>,
    }

    impl Backend for TraceBackend<'_> {
        fn load(&mut self, arr: ArrayId, idx: i64) -> Result<Value, ExecError> {
            self.inner.load(arr, idx)
        }
        fn store(&mut self, arr: ArrayId, idx: i64, v: Value) -> Result<(), ExecError> {
            self.inner.store(arr, idx, v)
        }
        fn array_len(&mut self, arr: ArrayId) -> Result<usize, ExecError> {
            self.inner.array_len(arr)
        }
        fn alloc(&mut self, ty: Ty, len: usize) -> Result<ArrayId, ExecError> {
            self.inner.alloc(ty, len)
        }
        fn op(&mut self, cls: OpClass) {
            self.trace.push(cls);
            self.inner.op(cls);
        }
    }

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    /// Bit-exact value comparison key (NaN-safe, unlike `PartialEq`).
    fn bits(v: Option<Value>) -> Option<(u8, u64)> {
        v.map(|v| match v {
            Value::Bool(b) => (0, b as u64),
            Value::Int(i) => (1, i as u64),
            Value::Long(l) => (2, l as u64),
            Value::Float(f) => (3, f.to_bits() as u64),
            Value::Double(d) => (4, d.to_bits()),
            Value::Array(a) => (5, a.0 as u64),
        })
    }

    fn kernel_loop(var: VarId, n: i32, body: Vec<Stmt>) -> ForLoop {
        ForLoop {
            id: LoopId(0),
            var,
            start: Expr::int(0),
            end: Expr::int(n),
            step: Expr::int(1),
            body,
            annot: None,
            span: Span::none(),
        }
    }

    type EngineOutcome = (
        Result<Flow, ExecError>,
        Vec<OpClass>,
        Vec<Option<(u8, u64)>>,
        Heap,
    );

    fn outcome<F>(env0: &Env, heap0: &Heap, run: F) -> EngineOutcome
    where
        F: FnOnce(&mut Env, &mut TraceBackend<'_>) -> Result<Flow, ExecError>,
    {
        let mut heap = heap0.clone();
        let mut env = env0.clone();
        let mut be = TraceBackend {
            inner: HeapBackend::new(&mut heap),
            trace: Vec::new(),
        };
        let r = run(&mut env, &mut be);
        let trace = be.trace;
        let slots = (0..64u32).map(|s| bits(env.get(v(s)).ok())).collect();
        (r, trace, slots, heap)
    }

    /// Run `loop_` under all three engines (tree walker, bytecode VM,
    /// native tier) against identical heap/env copies and assert results,
    /// env slots, heap contents, and the charge trace are identical.
    fn assert_three_engines_agree(program: &Program, loop_: &ForLoop, env0: &Env, heap0: &Heap) {
        let bounds = LoopBounds {
            start: 0,
            end: match loop_.end {
                Expr::Const(Value::Int(n)) => n as i64,
                _ => unreachable!("test loops use literal bounds"),
            },
            step: 1,
        };
        let trip = bounds.trip();

        let walker = outcome(env0, heap0, |env, be| {
            Interp::new(program).exec_range(loop_, &bounds, 0, trip, env, be)
        });
        let k = compile_kernel(program, loop_).expect("kernel should compile");
        let byte = outcome(env0, heap0, |env, be| {
            ScalarVm::new().exec_range(&k, loop_.var, &bounds, 0, trip, env, be)
        });
        let nk = compile_native(&k);
        let native = outcome(env0, heap0, |env, be| {
            NativeVm::new().exec_range(&nk, loop_.var, &bounds, 0, trip, env, be)
        });

        for (name, other) in [("bytecode", &byte), ("native", &native)] {
            match (&walker.0, &other.0) {
                (Ok(fa), Ok(fb)) => assert_eq!(
                    std::mem::discriminant(fa),
                    std::mem::discriminant(fb),
                    "{name} flow mismatch: {fa:?} vs {fb:?}"
                ),
                (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{name} error mismatch"),
                _ => panic!("{name} result mismatch: {:?} vs {:?}", walker.0, other.0),
            }
            assert_eq!(walker.1, other.1, "{name} charge order mismatch");
            assert_eq!(walker.2, other.2, "{name} env slots mismatch");
            assert_eq!(walker.3.array_count(), other.3.array_count());
            for i in 0..walker.3.array_count() {
                let id = ArrayId(i as u32);
                assert_eq!(
                    walker.3.array(id).ok(),
                    other.3.array(id).ok(),
                    "{name} array {i} mismatch"
                );
            }
        }
    }

    /// Helper: `clamp2(x) = x > 10 ? x - 10 : x * 2` via early return.
    fn add_helper(p: &mut Program) -> crate::program::FnId {
        let mut f = FnBuilder::new("clamp2");
        let x = f.param_scalar("x", Ty::Int);
        f.push(Stmt::If {
            cond: Expr::Binary(BinOp::Gt, Box::new(Expr::var(x)), Box::new(Expr::int(10))),
            then_branch: vec![Stmt::Return(Some(Expr::Binary(
                BinOp::Sub,
                Box::new(Expr::var(x)),
                Box::new(Expr::int(10)),
            )))],
            else_branch: vec![],
        });
        f.push(Stmt::Return(Some(Expr::Binary(
            BinOp::Mul,
            Box::new(Expr::var(x)),
            Box::new(Expr::int(2)),
        ))));
        p.add_function(f.finish(Some(Ty::Int)))
    }

    #[test]
    fn native_matches_walker_and_bytecode_on_rich_kernel() {
        let mut p = Program::new();
        let helper = add_helper(&mut p);
        let (i, a, b, acc, j) = (v(0), v(1), v(2), v(3), v(4));
        let body = vec![
            Stmt::DeclVar {
                var: acc,
                ty: Ty::Double,
                init: Some(Expr::double(0.0)),
            },
            Stmt::For(ForLoop {
                id: LoopId(1),
                var: j,
                start: Expr::int(0),
                end: Expr::int(3),
                step: Expr::int(1),
                body: vec![Stmt::Assign {
                    var: acc,
                    value: Expr::Binary(
                        BinOp::Add,
                        Box::new(Expr::var(acc)),
                        Box::new(Expr::Intrinsic(
                            Intrinsic::Sqrt,
                            vec![Expr::Cast(
                                Ty::Double,
                                Box::new(Expr::Binary(
                                    BinOp::Add,
                                    Box::new(Expr::Index {
                                        array: a,
                                        index: Box::new(Expr::var(i)),
                                    }),
                                    Box::new(Expr::var(j)),
                                )),
                            )],
                        )),
                    ),
                }],
                annot: None,
                span: Span::none(),
            }),
            Stmt::If {
                cond: Expr::Binary(
                    BinOp::LAnd,
                    Box::new(Expr::Binary(
                        BinOp::Eq,
                        Box::new(Expr::Binary(
                            BinOp::Rem,
                            Box::new(Expr::var(i)),
                            Box::new(Expr::int(2)),
                        )),
                        Box::new(Expr::int(0)),
                    )),
                    Box::new(Expr::Binary(
                        BinOp::Gt,
                        Box::new(Expr::Index {
                            array: a,
                            index: Box::new(Expr::var(i)),
                        }),
                        Box::new(Expr::int(0)),
                    )),
                ),
                then_branch: vec![Stmt::Store {
                    array: a,
                    index: Expr::var(i),
                    value: Expr::Call(
                        helper,
                        vec![Expr::Index {
                            array: a,
                            index: Box::new(Expr::var(i)),
                        }],
                    ),
                    span: Span::none(),
                }],
                else_branch: vec![Stmt::Store {
                    array: a,
                    index: Expr::var(i),
                    value: Expr::Ternary(
                        Box::new(Expr::Binary(
                            BinOp::Gt,
                            Box::new(Expr::Index {
                                array: b,
                                index: Box::new(Expr::var(i)),
                            }),
                            Box::new(Expr::int(5)),
                        )),
                        Box::new(Expr::Index {
                            array: b,
                            index: Box::new(Expr::var(i)),
                        }),
                        Box::new(Expr::Binary(
                            BinOp::Add,
                            Box::new(Expr::Index {
                                array: a,
                                index: Box::new(Expr::var(i)),
                            }),
                            Box::new(Expr::int(1)),
                        )),
                    ),
                    span: Span::none(),
                }],
            },
            Stmt::While {
                cond: Expr::Binary(
                    BinOp::Gt,
                    Box::new(Expr::var(acc)),
                    Box::new(Expr::double(1.0)),
                ),
                body: vec![Stmt::Assign {
                    var: acc,
                    value: Expr::Binary(
                        BinOp::Sub,
                        Box::new(Expr::var(acc)),
                        Box::new(Expr::double(1.0)),
                    ),
                }],
            },
            Stmt::Store {
                array: b,
                index: Expr::var(i),
                value: Expr::Cast(Ty::Int, Box::new(Expr::var(acc))),
                span: Span::none(),
            },
        ];
        let loop_ = kernel_loop(i, 8, body);
        let mut heap = Heap::new();
        let aa = heap.alloc_ints(&[3, -1, 14, 7, 0, 9, 22, -5]);
        let bb = heap.alloc_ints(&[1, 9, 2, 8, 3, 7, 4, 6]);
        let mut env = Env::with_slots(8);
        env.set(a, Value::Array(aa));
        env.set(b, Value::Array(bb));
        assert_three_engines_agree(&p, &loop_, &env, &heap);
    }

    #[test]
    fn native_matches_on_error_paths() {
        // Iteration 2 divides by zero after a store already landed; the
        // walker leaves the partial mutations visible, so must both VMs.
        let (i, a, x) = (v(0), v(1), v(2));
        let p = Program::new();
        let body = vec![
            Stmt::DeclVar {
                var: x,
                ty: Ty::Int,
                init: Some(Expr::int(7)),
            },
            Stmt::Store {
                array: a,
                index: Expr::var(i),
                value: Expr::var(x),
                span: Span::none(),
            },
            Stmt::Assign {
                var: x,
                value: Expr::Binary(
                    BinOp::Div,
                    Box::new(Expr::int(10)),
                    Box::new(Expr::Binary(
                        BinOp::Sub,
                        Box::new(Expr::int(2)),
                        Box::new(Expr::var(i)),
                    )),
                ),
            },
        ];
        let loop_ = kernel_loop(i, 8, body);
        let mut heap = Heap::new();
        let aa = heap.alloc_ints(&[0; 8]);
        let mut env = Env::with_slots(4);
        env.set(a, Value::Array(aa));
        assert_three_engines_agree(&p, &loop_, &env, &heap);
    }

    #[test]
    fn native_matches_on_unbound_read() {
        let (i, y) = (v(0), v(3));
        let p = Program::new();
        let body = vec![Stmt::If {
            cond: Expr::Binary(BinOp::Eq, Box::new(Expr::var(i)), Box::new(Expr::int(1))),
            then_branch: vec![Stmt::Assign {
                var: v(2),
                value: Expr::var(y),
            }],
            else_branch: vec![],
        }];
        let loop_ = kernel_loop(i, 4, body);
        let env = Env::with_slots(4);
        assert_three_engines_agree(&p, &loop_, &env, &Heap::new());
    }

    #[test]
    fn cache_promotes_to_native_after_threshold() {
        let p = Program::new();
        let body = vec![Stmt::Assign {
            var: v(1),
            value: Expr::var(v(0)),
        }];
        let loop_ = kernel_loop(v(0), 2, body);
        let cache = KernelCache::new();

        // Unknown loop: no entry, no promotion.
        assert!(cache
            .native_tier::<NativeKernel, _>(loop_.id.0, compile_native)
            .is_none());

        // First use: below the threshold, stays on bytecode.
        assert!(cache.get_or_compile(&p, &loop_).is_some());
        assert_eq!(cache.uses(loop_.id.0), 1);
        assert!(NATIVE_PROMOTE_USES > 1);
        assert!(cache
            .native_tier::<NativeKernel, _>(loop_.id.0, compile_native)
            .is_none());

        // Second use: promoted; the artifact is built once and memoized.
        assert!(cache.get_or_compile(&p, &loop_).is_some());
        assert_eq!(cache.uses(loop_.id.0), NATIVE_PROMOTE_USES);
        let n1 = cache
            .native_tier::<NativeKernel, _>(loop_.id.0, compile_native)
            .expect("hot loop should promote");
        let n2 = cache
            .native_tier::<NativeKernel, _>(loop_.id.0, compile_native)
            .expect("promotion is sticky");
        assert!(Arc::ptr_eq(&n1, &n2), "native artifact must be memoized");
    }

    #[test]
    fn uncompilable_loop_never_promotes() {
        // Recursive helper: bytecode compile fails, entry memoizes None,
        // native_tier must keep returning None no matter how hot.
        let mut p = Program::new();
        let mut f = FnBuilder::new("rec");
        let x = f.param_scalar("x", Ty::Int);
        let id = crate::program::FnId(0);
        f.push(Stmt::Return(Some(Expr::Call(id, vec![Expr::var(x)]))));
        p.add_function(f.finish(Some(Ty::Int)));
        let body = vec![Stmt::Assign {
            var: v(1),
            value: Expr::Call(id, vec![Expr::var(v(0))]),
        }];
        let loop_ = kernel_loop(v(0), 2, body);
        let cache = KernelCache::new();
        for _ in 0..4 {
            assert!(cache.get_or_compile(&p, &loop_).is_none());
        }
        assert_eq!(cache.uses(loop_.id.0), 4);
        assert!(cache
            .native_tier::<NativeKernel, _>(loop_.id.0, compile_native)
            .is_none());
    }
}

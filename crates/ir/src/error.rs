//! Runtime errors raised during IR execution.

use crate::heap::ArrayId;
use crate::types::Ty;
use crate::VarId;
use std::fmt;

/// An error raised while interpreting IR.
///
/// Well-typed programs produced by the front end only raise the *dynamic*
/// variants (`IndexOutOfBounds`, `DivisionByZero`); the remaining variants
/// guard against malformed hand-built IR.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Array access outside `0..len`, mirroring Java's
    /// `ArrayIndexOutOfBoundsException`.
    IndexOutOfBounds {
        array: ArrayId,
        index: i64,
        len: usize,
    },
    /// Integer division or remainder by zero (Java `ArithmeticException`).
    DivisionByZero,
    /// A variable slot was read before being assigned.
    UnboundVariable(VarId),
    /// An operation received a value of an unexpected type.
    TypeMismatch { expected: String, found: String },
    /// A cast between incompatible types.
    InvalidCast { from: String, to: Ty },
    /// Unknown array handle (stale or foreign heap).
    UnknownArray(ArrayId),
    /// Function called with the wrong number of arguments.
    ArityMismatch {
        function: String,
        expected: usize,
        found: usize,
    },
    /// Unknown function id.
    UnknownFunction(String),
    /// Call stack exceeded the configured limit.
    StackOverflow,
    /// Negative array length in `new T[n]`.
    NegativeArraySize(i64),
    /// A canonical loop has a non-positive step (would not terminate).
    NonPositiveStep(i64),
    /// Execution was aborted by a backend (e.g. a TLS violation that the
    /// engine converts into a control-flow event).
    Aborted(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::IndexOutOfBounds { array, index, len } => write!(
                f,
                "array index out of bounds: index {index} on array#{} of length {len}",
                array.0
            ),
            ExecError::DivisionByZero => write!(f, "integer division by zero"),
            ExecError::UnboundVariable(v) => write!(f, "read of unassigned variable {v}"),
            ExecError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ExecError::InvalidCast { from, to } => write!(f, "invalid cast from {from} to {to}"),
            ExecError::UnknownArray(a) => write!(f, "unknown array handle #{}", a.0),
            ExecError::ArityMismatch {
                function,
                expected,
                found,
            } => write!(
                f,
                "function `{function}` expects {expected} arguments, got {found}"
            ),
            ExecError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            ExecError::StackOverflow => write!(f, "interpreter call-stack overflow"),
            ExecError::NegativeArraySize(n) => write!(f, "negative array size {n}"),
            ExecError::NonPositiveStep(s) => {
                write!(f, "canonical loop step must be positive, got {s}")
            }
            ExecError::Aborted(why) => write!(f, "execution aborted: {why}"),
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ExecError::IndexOutOfBounds {
            array: ArrayId(3),
            index: -1,
            len: 10,
        };
        let s = e.to_string();
        assert!(s.contains("array#3"));
        assert!(s.contains("-1"));
        assert!(s.contains("10"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(ExecError::DivisionByZero);
        assert!(e.to_string().contains("division"));
    }
}

//! Scalar types and runtime values with Java-like numeric semantics.

use crate::heap::ArrayId;
use std::fmt;

/// MiniJava scalar types.
///
/// The ordering of variants matches Java's widening-conversion lattice:
/// `Bool` does not convert, and `Int < Long < Float < Double`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ty {
    /// `boolean`
    Bool,
    /// 32-bit signed `int` with wrap-around overflow (Java semantics).
    Int,
    /// 64-bit signed `long` with wrap-around overflow.
    Long,
    /// IEEE-754 single precision `float`.
    Float,
    /// IEEE-754 double precision `double`.
    Double,
}

impl Ty {
    /// Is this an integral type (`int` / `long`)?
    pub fn is_integral(self) -> bool {
        matches!(self, Ty::Int | Ty::Long)
    }

    /// Is this a floating-point type?
    pub fn is_float(self) -> bool {
        matches!(self, Ty::Float | Ty::Double)
    }

    /// Is this a numeric type (everything except `boolean`)?
    pub fn is_numeric(self) -> bool {
        self != Ty::Bool
    }

    /// Size of one element of this type in bytes, used by the transfer and
    /// memory-coalescing models.
    pub fn size_bytes(self) -> usize {
        match self {
            Ty::Bool => 1,
            Ty::Int | Ty::Float => 4,
            Ty::Long | Ty::Double => 8,
        }
    }

    /// Java binary numeric promotion: the wider of the two operand types.
    ///
    /// Returns `None` when either side is `boolean` (no numeric promotion
    /// exists in that case).
    pub fn promote(a: Ty, b: Ty) -> Option<Ty> {
        if !a.is_numeric() || !b.is_numeric() {
            return None;
        }
        Some(a.max(b))
    }

    /// The default (zero) value of the type, mirroring Java default
    /// initialization of array elements.
    pub fn zero(self) -> Value {
        match self {
            Ty::Bool => Value::Bool(false),
            Ty::Int => Value::Int(0),
            Ty::Long => Value::Long(0),
            Ty::Float => Value::Float(0.0),
            Ty::Double => Value::Double(0.0),
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::Bool => "boolean",
            Ty::Int => "int",
            Ty::Long => "long",
            Ty::Float => "float",
            Ty::Double => "double",
        };
        f.write_str(s)
    }
}

/// A runtime value.
///
/// `Array` holds a handle into the [`crate::Heap`]; MiniJava arrays have
/// reference semantics exactly like Java arrays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    Bool(bool),
    Int(i32),
    Long(i64),
    Float(f32),
    Double(f64),
    /// Reference to an array object on the heap.
    Array(ArrayId),
}

impl Value {
    /// The scalar type of the value; `None` for array references.
    pub fn ty(self) -> Option<Ty> {
        match self {
            Value::Bool(_) => Some(Ty::Bool),
            Value::Int(_) => Some(Ty::Int),
            Value::Long(_) => Some(Ty::Long),
            Value::Float(_) => Some(Ty::Float),
            Value::Double(_) => Some(Ty::Double),
            Value::Array(_) => None,
        }
    }

    /// View as `bool`, if the value is a `boolean`.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// View as an array handle, if the value is an array reference.
    pub fn as_array(self) -> Option<ArrayId> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Numeric view as `i64` (integral values only).
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v as i64),
            Value::Long(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view as `f64` (any numeric value, widening like Java).
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(v as f64),
            Value::Long(v) => Some(v as f64),
            Value::Float(v) => Some(v as f64),
            Value::Double(v) => Some(v),
            _ => None,
        }
    }

    /// Java-style cast to `to`. Integral narrowing truncates; float-to-int
    /// conversion saturates NaN to 0 like the JVM `d2i`/`d2l` instructions.
    pub fn cast(self, to: Ty) -> Option<Value> {
        let v = match (self, to) {
            (Value::Bool(b), Ty::Bool) => Value::Bool(b),
            (v, _) if v.ty() == Some(to) => v,
            (Value::Int(v), Ty::Long) => Value::Long(v as i64),
            (Value::Int(v), Ty::Float) => Value::Float(v as f32),
            (Value::Int(v), Ty::Double) => Value::Double(v as f64),
            (Value::Long(v), Ty::Int) => Value::Int(v as i32),
            (Value::Long(v), Ty::Float) => Value::Float(v as f32),
            (Value::Long(v), Ty::Double) => Value::Double(v as f64),
            (Value::Float(v), Ty::Int) => Value::Int(f2i(v as f64)),
            (Value::Float(v), Ty::Long) => Value::Long(f2l(v as f64)),
            (Value::Float(v), Ty::Double) => Value::Double(v as f64),
            (Value::Double(v), Ty::Int) => Value::Int(f2i(v)),
            (Value::Double(v), Ty::Long) => Value::Long(f2l(v)),
            (Value::Double(v), Ty::Float) => Value::Float(v as f32),
            _ => return None,
        };
        Some(v)
    }
}

/// JVM `d2i`: NaN -> 0, out-of-range saturates.
fn f2i(d: f64) -> i32 {
    if d.is_nan() {
        0
    } else if d >= i32::MAX as f64 {
        i32::MAX
    } else if d <= i32::MIN as f64 {
        i32::MIN
    } else {
        d as i32
    }
}

/// JVM `d2l`: NaN -> 0, out-of-range saturates.
fn f2l(d: f64) -> i64 {
    if d.is_nan() {
        0
    } else if d >= i64::MAX as f64 {
        i64::MAX
    } else if d <= i64::MIN as f64 {
        i64::MIN
    } else {
        d as i64
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}L"),
            Value::Float(v) => write!(f, "{v}f"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Array(a) => write!(f, "array#{}", a.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_follows_java_lattice() {
        assert_eq!(Ty::promote(Ty::Int, Ty::Int), Some(Ty::Int));
        assert_eq!(Ty::promote(Ty::Int, Ty::Long), Some(Ty::Long));
        assert_eq!(Ty::promote(Ty::Long, Ty::Float), Some(Ty::Float));
        assert_eq!(Ty::promote(Ty::Float, Ty::Double), Some(Ty::Double));
        assert_eq!(Ty::promote(Ty::Bool, Ty::Int), None);
    }

    #[test]
    fn casts_truncate_like_java() {
        assert_eq!(
            Value::Long(0x1_0000_0001).cast(Ty::Int),
            Some(Value::Int(1))
        );
        assert_eq!(Value::Double(3.9).cast(Ty::Int), Some(Value::Int(3)));
        assert_eq!(Value::Double(-3.9).cast(Ty::Int), Some(Value::Int(-3)));
        assert_eq!(Value::Double(f64::NAN).cast(Ty::Int), Some(Value::Int(0)));
        assert_eq!(
            Value::Double(1e300).cast(Ty::Int),
            Some(Value::Int(i32::MAX))
        );
    }

    #[test]
    fn cast_to_same_type_is_identity() {
        for v in [Value::Int(7), Value::Double(1.5), Value::Bool(true)] {
            let ty = v.ty().unwrap();
            assert_eq!(v.cast(ty), Some(v));
        }
    }

    #[test]
    fn bool_does_not_cast_to_numbers() {
        assert_eq!(Value::Bool(true).cast(Ty::Int), None);
        assert_eq!(Value::Int(1).cast(Ty::Bool), None);
    }

    #[test]
    fn element_sizes() {
        assert_eq!(Ty::Int.size_bytes(), 4);
        assert_eq!(Ty::Double.size_bytes(), 8);
        assert_eq!(Ty::Bool.size_bytes(), 1);
    }

    #[test]
    fn zero_values() {
        assert_eq!(Ty::Int.zero(), Value::Int(0));
        assert_eq!(Ty::Double.zero(), Value::Double(0.0));
        assert_eq!(Ty::Bool.zero(), Value::Bool(false));
    }
}

//! Source spans carried from the front end into the IR.
//!
//! The lexer stamps every token with a 1-based line/column; the parser
//! copies it onto AST nodes; lowering threads it into the IR structures the
//! analyses and the linter report on ([`crate::ForLoop`],
//! [`crate::LoopAnnotation`], [`crate::ArrayRange`], [`crate::Function`]).
//! IR built programmatically (e.g. via [`crate::FnBuilder`]) carries
//! [`Span::none`], which diagnostics render as "<generated>".

use std::fmt;

/// A source position: 1-based line and column. `(0, 0)` means "unknown /
/// generated" — IR assembled without source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Span {
    /// 1-based source line; 0 when unknown.
    pub line: u32,
    /// 1-based source column; 0 when unknown.
    pub col: u32,
}

impl Span {
    /// A span at `line:col` (both 1-based).
    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }

    /// The unknown/generated span.
    pub fn none() -> Span {
        Span::default()
    }

    /// Does this span point at real source text?
    pub fn is_known(&self) -> bool {
        self.line > 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_known() {
            write!(f, "{}:{}", self.line, self.col)
        } else {
            f.write_str("<generated>")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_known_and_generated() {
        assert_eq!(Span::new(3, 7).to_string(), "3:7");
        assert_eq!(Span::none().to_string(), "<generated>");
        assert!(!Span::none().is_known());
        assert!(Span::new(1, 1).is_known());
    }

    #[test]
    fn ordering_is_line_major() {
        assert!(Span::new(2, 1) < Span::new(3, 9));
        assert!(Span::new(2, 1) < Span::new(2, 2));
    }
}

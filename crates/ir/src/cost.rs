//! Dynamic operation classification and cycle cost tables.
//!
//! Every executor reports executed operations to its [`crate::Backend`] as
//! an [`OpClass`]; a [`CostTable`] maps classes to issue cycles. The CPU
//! executor and the GPU simulator each instantiate their own table — the
//! relative weights (e.g. special-function units for `exp`, expensive
//! divides) are what make compute-bound vs. memory-bound workloads behave
//! differently on the two devices, reproducing the paper's crossovers.

/// Classification of one dynamically executed IR operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer add/sub/bit/shift/compare.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide / remainder.
    IntDiv,
    /// Floating add/sub/mul/compare.
    FpAlu,
    /// Floating divide.
    FpDiv,
    /// Transcendental / special function (`exp`, `log`, `sqrt`, ...).
    Special,
    /// Cast / conversion.
    Cast,
    /// Branch decision (if / loop back-edge / ternary / short-circuit).
    Branch,
    /// Scalar local variable read/write, loop bookkeeping, moves.
    Move,
    /// Array element load (memory models add latency separately).
    Load,
    /// Array element store.
    Store,
    /// Function call overhead.
    Call,
}

impl OpClass {
    /// All variants, for table iteration in tests and reports.
    pub const ALL: [OpClass; 12] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAlu,
        OpClass::FpDiv,
        OpClass::Special,
        OpClass::Cast,
        OpClass::Branch,
        OpClass::Move,
        OpClass::Load,
        OpClass::Store,
        OpClass::Call,
    ];

    fn idx(self) -> usize {
        match self {
            OpClass::IntAlu => 0,
            OpClass::IntMul => 1,
            OpClass::IntDiv => 2,
            OpClass::FpAlu => 3,
            OpClass::FpDiv => 4,
            OpClass::Special => 5,
            OpClass::Cast => 6,
            OpClass::Branch => 7,
            OpClass::Move => 8,
            OpClass::Load => 9,
            OpClass::Store => 10,
            OpClass::Call => 11,
        }
    }
}

/// Cycles charged per operation class.
#[derive(Debug, Clone, PartialEq)]
pub struct CostTable {
    cycles: [f64; 12],
}

impl CostTable {
    /// A table where every class costs `c` cycles.
    pub fn uniform(c: f64) -> CostTable {
        CostTable { cycles: [c; 12] }
    }

    /// Cycles for one op of class `cls`.
    #[inline]
    pub fn cost(&self, cls: OpClass) -> f64 {
        self.cycles[cls.idx()]
    }

    /// Override the cost of one class (builder style).
    pub fn with(mut self, cls: OpClass, c: f64) -> CostTable {
        self.cycles[cls.idx()] = c;
        self
    }

    /// Total cycles for a set of op counts.
    pub fn total(&self, counts: &OpCounts) -> f64 {
        OpClass::ALL
            .iter()
            .map(|&c| self.cost(c) * counts.count(c) as f64)
            .sum()
    }
}

impl Default for CostTable {
    /// A generic single-issue core: most ops 1 cycle, multiplies 3,
    /// divides 20, specials 40, memory handled by the device models.
    fn default() -> CostTable {
        CostTable::uniform(1.0)
            .with(OpClass::IntMul, 3.0)
            .with(OpClass::IntDiv, 20.0)
            .with(OpClass::FpDiv, 20.0)
            .with(OpClass::Special, 40.0)
            .with(OpClass::Call, 5.0)
    }
}

/// Accumulated per-class operation counts for one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpCounts {
    counts: [u64; 12],
}

impl OpCounts {
    /// All-zero counts.
    pub fn new() -> OpCounts {
        OpCounts::default()
    }

    /// Record one op of class `cls`.
    #[inline]
    pub fn record(&mut self, cls: OpClass) {
        self.counts[cls.idx()] += 1;
    }

    /// Count for one class.
    pub fn count(&self, cls: OpClass) -> u64 {
        self.counts[cls.idx()]
    }

    /// Total ops across all classes.
    pub fn total_ops(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Memory operations (loads + stores).
    pub fn memory_ops(&self) -> u64 {
        self.count(OpClass::Load) + self.count(OpClass::Store)
    }

    /// Compute (non-memory) operations.
    pub fn compute_ops(&self) -> u64 {
        self.total_ops() - self.memory_ops()
    }

    /// Arithmetic intensity: compute ops per memory op. Returns `f64::MAX`
    /// style large value when there are no memory ops.
    pub fn arithmetic_intensity(&self) -> f64 {
        let mem = self.memory_ops();
        if mem == 0 {
            return self.compute_ops() as f64;
        }
        self.compute_ops() as f64 / mem as f64
    }

    /// Merge another count set into this one.
    pub fn merge(&mut self, other: &OpCounts) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
        }
    }
}

/// Nominal trip count charged for nested loops whose bounds are not
/// compile-time constants. The absolute value only matters relative to the
/// scheme-selection threshold, not as a cycle prediction.
const NOMINAL_TRIP: f64 = 32.0;

/// Statically estimated issue cycles for **one iteration** of `l`'s body,
/// including the loop's own back-edge bookkeeping (compare + increment).
///
/// This is a structural estimate for ahead-of-time decisions (the
/// auto-parallelizer's scheme selection): nested loops multiply by their
/// constant trip count when the bounds are literals and by [`NOMINAL_TRIP`]
/// otherwise, `if`/ternary charge their more expensive branch, and calls
/// charge only the call overhead class — callee bodies are not expanded.
pub fn estimate_loop_cost(l: &crate::stmt::ForLoop, table: &CostTable) -> f64 {
    estimate_body_cost(&l.body, table) + table.cost(OpClass::Branch) + table.cost(OpClass::IntAlu)
}

/// Statically estimated issue cycles for executing `stmts` once.
pub fn estimate_body_cost(stmts: &[crate::stmt::Stmt], table: &CostTable) -> f64 {
    use crate::stmt::Stmt;
    let mut total = 0.0;
    for s in stmts {
        total += match s {
            Stmt::DeclVar { init, .. } => {
                table.cost(OpClass::Move)
                    + init.as_ref().map_or(0.0, |e| estimate_expr_cost(e, table))
            }
            Stmt::NewArray { len, .. } => {
                table.cost(OpClass::Move) + estimate_expr_cost(len, table)
            }
            Stmt::Assign { value, .. } => {
                table.cost(OpClass::Move) + estimate_expr_cost(value, table)
            }
            Stmt::Store { index, value, .. } => {
                table.cost(OpClass::Store)
                    + estimate_expr_cost(index, table)
                    + estimate_expr_cost(value, table)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let t = estimate_body_cost(then_branch, table);
                let e = estimate_body_cost(else_branch, table);
                table.cost(OpClass::Branch) + estimate_expr_cost(cond, table) + t.max(e)
            }
            Stmt::For(inner) => {
                let trip = const_trip(inner).map_or(NOMINAL_TRIP, |t| t as f64);
                estimate_expr_cost(&inner.start, table)
                    + estimate_expr_cost(&inner.end, table)
                    + estimate_expr_cost(&inner.step, table)
                    + trip * estimate_loop_cost(inner, table)
            }
            Stmt::While { cond, body } => {
                NOMINAL_TRIP
                    * (table.cost(OpClass::Branch)
                        + estimate_expr_cost(cond, table)
                        + estimate_body_cost(body, table))
            }
            Stmt::Return(e) => {
                table.cost(OpClass::Branch)
                    + e.as_ref().map_or(0.0, |e| estimate_expr_cost(e, table))
            }
            Stmt::Break | Stmt::Continue => table.cost(OpClass::Branch),
            Stmt::ExprStmt(e) => estimate_expr_cost(e, table),
        };
    }
    total
}

/// Statically estimated issue cycles for evaluating `e` once.
fn estimate_expr_cost(e: &crate::expr::Expr, table: &CostTable) -> f64 {
    use crate::expr::Expr;
    match e {
        Expr::Const(_) => 0.0,
        Expr::Var(_) | Expr::Len(_) => table.cost(OpClass::Move),
        Expr::Unary(op, a) => {
            table.cost(unop_class(*op, looks_float(a))) + estimate_expr_cost(a, table)
        }
        Expr::Binary(op, a, b) => {
            table.cost(binop_class(*op, looks_float(a) || looks_float(b)))
                + estimate_expr_cost(a, table)
                + estimate_expr_cost(b, table)
        }
        Expr::Cast(_, a) => table.cost(OpClass::Cast) + estimate_expr_cost(a, table),
        Expr::Index { index, .. } => table.cost(OpClass::Load) + estimate_expr_cost(index, table),
        Expr::Intrinsic(f, args) => {
            table.cost(intrinsic_class(*f))
                + args
                    .iter()
                    .map(|a| estimate_expr_cost(a, table))
                    .sum::<f64>()
        }
        Expr::Call(_, args) => {
            table.cost(OpClass::Call)
                + args
                    .iter()
                    .map(|a| estimate_expr_cost(a, table))
                    .sum::<f64>()
        }
        Expr::Ternary(c, t, o) => {
            table.cost(OpClass::Branch)
                + estimate_expr_cost(c, table)
                + estimate_expr_cost(t, table).max(estimate_expr_cost(o, table))
        }
    }
}

/// Syntactic guess whether an expression is floating-point (a double/float
/// literal, FP cast, or math intrinsic anywhere in the tree). Types are not
/// threaded through the IR, so this only steers int-vs-FP cost classes.
fn looks_float(e: &crate::expr::Expr) -> bool {
    use crate::expr::Expr;
    use crate::types::{Ty, Value};
    let mut fp = false;
    e.walk(&mut |n| match n {
        Expr::Const(Value::Double(_) | Value::Float(_)) => fp = true,
        Expr::Cast(Ty::Double | Ty::Float, _) => fp = true,
        Expr::Intrinsic(..) => fp = true,
        _ => {}
    });
    fp
}

/// Trip count of a loop whose start/end/step are all integer literals
/// (`ceil((end - start) / step)`, clamped at zero), else `None`.
fn const_trip(l: &crate::stmt::ForLoop) -> Option<u64> {
    use crate::expr::Expr;
    use crate::types::Value;
    let lit = |e: &Expr| match e {
        Expr::Const(Value::Int(v)) => Some(i64::from(*v)),
        Expr::Const(Value::Long(v)) => Some(*v),
        _ => None,
    };
    let (start, end, step) = (lit(&l.start)?, lit(&l.end)?, lit(&l.step)?);
    if step <= 0 {
        return None;
    }
    let span = end.checked_sub(start)?.max(0);
    Some((span as u64).div_ceil(step as u64))
}

/// Classify a unary operator application (`float` = operand is FP).
pub fn unop_class(op: crate::expr::UnOp, float: bool) -> OpClass {
    match op {
        crate::expr::UnOp::Neg if float => OpClass::FpAlu,
        _ => OpClass::IntAlu,
    }
}

/// Classify a binary operator application (`float` = either operand is FP).
pub fn binop_class(op: crate::expr::BinOp, float: bool) -> OpClass {
    use crate::expr::BinOp;
    match op {
        BinOp::Mul if !float => OpClass::IntMul,
        BinOp::Div | BinOp::Rem if !float => OpClass::IntDiv,
        BinOp::Div | BinOp::Rem => OpClass::FpDiv,
        _ if float => OpClass::FpAlu,
        _ => OpClass::IntAlu,
    }
}

/// Classify a math-intrinsic application.
pub fn intrinsic_class(f: crate::expr::Intrinsic) -> OpClass {
    use crate::expr::Intrinsic as I;
    match f {
        I::Exp | I::Log | I::Sqrt | I::Sin | I::Cos | I::Pow => OpClass::Special,
        I::Abs | I::Max | I::Min | I::Floor | I::Ceil => OpClass::FpAlu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::stmt::{ForLoop, Stmt};

    #[test]
    fn default_table_orders_costs_sensibly() {
        let t = CostTable::default();
        assert!(t.cost(OpClass::IntAlu) < t.cost(OpClass::IntMul));
        assert!(t.cost(OpClass::IntMul) < t.cost(OpClass::IntDiv));
        assert!(t.cost(OpClass::FpDiv) < t.cost(OpClass::Special));
    }

    #[test]
    fn counts_accumulate_and_total() {
        let mut c = OpCounts::new();
        c.record(OpClass::FpAlu);
        c.record(OpClass::FpAlu);
        c.record(OpClass::Load);
        assert_eq!(c.count(OpClass::FpAlu), 2);
        assert_eq!(c.total_ops(), 3);
        assert_eq!(c.memory_ops(), 1);
        assert_eq!(c.compute_ops(), 2);
        let t = CostTable::uniform(2.0);
        assert_eq!(t.total(&c), 6.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = OpCounts::new();
        a.record(OpClass::Store);
        let mut b = OpCounts::new();
        b.record(OpClass::Store);
        b.record(OpClass::Branch);
        a.merge(&b);
        assert_eq!(a.count(OpClass::Store), 2);
        assert_eq!(a.count(OpClass::Branch), 1);
    }

    #[test]
    fn arithmetic_intensity() {
        let mut c = OpCounts::new();
        for _ in 0..10 {
            c.record(OpClass::FpAlu);
        }
        c.record(OpClass::Load);
        c.record(OpClass::Store);
        assert!((c.arithmetic_intensity() - 5.0).abs() < 1e-12);
    }

    fn counted(id: u32, end: Expr, body: Vec<Stmt>) -> ForLoop {
        ForLoop {
            id: crate::stmt::LoopId(id),
            var: crate::VarId(0),
            start: Expr::int(0),
            end,
            step: Expr::int(1),
            body,
            annot: None,
            span: crate::span::Span::none(),
        }
    }

    #[test]
    fn constant_trip_inner_loop_multiplies_body_cost() {
        let t = CostTable::uniform(1.0);
        let store = Stmt::Store {
            array: crate::VarId(1),
            index: Expr::var(crate::VarId(0)),
            value: Expr::double(0.0),
            span: crate::span::Span::none(),
        };
        let flat = counted(0, Expr::int(1), vec![store.clone()]);
        let nested = counted(
            1,
            Expr::int(1),
            vec![Stmt::For(counted(2, Expr::int(10), vec![store]))],
        );
        let one = estimate_loop_cost(&flat, &t);
        let ten = estimate_loop_cost(&nested, &t);
        // The inner body runs 10x; overheads stay constant.
        assert!(ten > 9.0 * one && ten < 12.0 * one, "{one} vs {ten}");
    }

    #[test]
    fn symbolic_inner_bounds_fall_back_to_nominal_trip() {
        let t = CostTable::uniform(1.0);
        let inner = counted(1, Expr::var(crate::VarId(2)), vec![]);
        let l = counted(0, Expr::int(1), vec![Stmt::For(inner)]);
        let c = estimate_loop_cost(&l, &t);
        assert!(c >= NOMINAL_TRIP, "nominal trips not charged: {c}");
    }

    #[test]
    fn calls_charge_overhead_without_expanding_the_callee() {
        let t = CostTable::default();
        let l = counted(
            0,
            Expr::int(1),
            vec![Stmt::ExprStmt(Expr::Call(crate::FnId(3), vec![]))],
        );
        // call (5) + back-edge branch (1) + increment (1)
        assert!((estimate_loop_cost(&l, &t) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn float_multiply_is_cheaper_than_int_multiply() {
        let t = CostTable::default();
        let imul = Expr::var(crate::VarId(0)).mul(Expr::var(crate::VarId(1)));
        let fmul = Expr::var(crate::VarId(0)).mul(Expr::double(2.0));
        let li = counted(0, Expr::int(1), vec![Stmt::ExprStmt(imul)]);
        let lf = counted(1, Expr::int(1), vec![Stmt::ExprStmt(fmul)]);
        assert!(estimate_loop_cost(&li, &t) > estimate_loop_cost(&lf, &t));
    }

    #[test]
    fn all_classes_indexed_uniquely() {
        let mut seen = std::collections::HashSet::new();
        for c in OpClass::ALL {
            assert!(seen.insert(c.idx()));
        }
        assert_eq!(seen.len(), 12);
    }
}

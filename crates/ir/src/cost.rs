//! Dynamic operation classification and cycle cost tables.
//!
//! Every executor reports executed operations to its [`crate::Backend`] as
//! an [`OpClass`]; a [`CostTable`] maps classes to issue cycles. The CPU
//! executor and the GPU simulator each instantiate their own table — the
//! relative weights (e.g. special-function units for `exp`, expensive
//! divides) are what make compute-bound vs. memory-bound workloads behave
//! differently on the two devices, reproducing the paper's crossovers.

/// Classification of one dynamically executed IR operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer add/sub/bit/shift/compare.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide / remainder.
    IntDiv,
    /// Floating add/sub/mul/compare.
    FpAlu,
    /// Floating divide.
    FpDiv,
    /// Transcendental / special function (`exp`, `log`, `sqrt`, ...).
    Special,
    /// Cast / conversion.
    Cast,
    /// Branch decision (if / loop back-edge / ternary / short-circuit).
    Branch,
    /// Scalar local variable read/write, loop bookkeeping, moves.
    Move,
    /// Array element load (memory models add latency separately).
    Load,
    /// Array element store.
    Store,
    /// Function call overhead.
    Call,
}

impl OpClass {
    /// All variants, for table iteration in tests and reports.
    pub const ALL: [OpClass; 12] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAlu,
        OpClass::FpDiv,
        OpClass::Special,
        OpClass::Cast,
        OpClass::Branch,
        OpClass::Move,
        OpClass::Load,
        OpClass::Store,
        OpClass::Call,
    ];

    fn idx(self) -> usize {
        match self {
            OpClass::IntAlu => 0,
            OpClass::IntMul => 1,
            OpClass::IntDiv => 2,
            OpClass::FpAlu => 3,
            OpClass::FpDiv => 4,
            OpClass::Special => 5,
            OpClass::Cast => 6,
            OpClass::Branch => 7,
            OpClass::Move => 8,
            OpClass::Load => 9,
            OpClass::Store => 10,
            OpClass::Call => 11,
        }
    }
}

/// Cycles charged per operation class.
#[derive(Debug, Clone, PartialEq)]
pub struct CostTable {
    cycles: [f64; 12],
}

impl CostTable {
    /// A table where every class costs `c` cycles.
    pub fn uniform(c: f64) -> CostTable {
        CostTable { cycles: [c; 12] }
    }

    /// Cycles for one op of class `cls`.
    #[inline]
    pub fn cost(&self, cls: OpClass) -> f64 {
        self.cycles[cls.idx()]
    }

    /// Override the cost of one class (builder style).
    pub fn with(mut self, cls: OpClass, c: f64) -> CostTable {
        self.cycles[cls.idx()] = c;
        self
    }

    /// Total cycles for a set of op counts.
    pub fn total(&self, counts: &OpCounts) -> f64 {
        OpClass::ALL
            .iter()
            .map(|&c| self.cost(c) * counts.count(c) as f64)
            .sum()
    }
}

impl Default for CostTable {
    /// A generic single-issue core: most ops 1 cycle, multiplies 3,
    /// divides 20, specials 40, memory handled by the device models.
    fn default() -> CostTable {
        CostTable::uniform(1.0)
            .with(OpClass::IntMul, 3.0)
            .with(OpClass::IntDiv, 20.0)
            .with(OpClass::FpDiv, 20.0)
            .with(OpClass::Special, 40.0)
            .with(OpClass::Call, 5.0)
    }
}

/// Accumulated per-class operation counts for one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpCounts {
    counts: [u64; 12],
}

impl OpCounts {
    /// All-zero counts.
    pub fn new() -> OpCounts {
        OpCounts::default()
    }

    /// Record one op of class `cls`.
    #[inline]
    pub fn record(&mut self, cls: OpClass) {
        self.counts[cls.idx()] += 1;
    }

    /// Count for one class.
    pub fn count(&self, cls: OpClass) -> u64 {
        self.counts[cls.idx()]
    }

    /// Total ops across all classes.
    pub fn total_ops(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Memory operations (loads + stores).
    pub fn memory_ops(&self) -> u64 {
        self.count(OpClass::Load) + self.count(OpClass::Store)
    }

    /// Compute (non-memory) operations.
    pub fn compute_ops(&self) -> u64 {
        self.total_ops() - self.memory_ops()
    }

    /// Arithmetic intensity: compute ops per memory op. Returns `f64::MAX`
    /// style large value when there are no memory ops.
    pub fn arithmetic_intensity(&self) -> f64 {
        let mem = self.memory_ops();
        if mem == 0 {
            return self.compute_ops() as f64;
        }
        self.compute_ops() as f64 / mem as f64
    }

    /// Merge another count set into this one.
    pub fn merge(&mut self, other: &OpCounts) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
        }
    }
}

/// Classify a unary operator application (`float` = operand is FP).
pub fn unop_class(op: crate::expr::UnOp, float: bool) -> OpClass {
    match op {
        crate::expr::UnOp::Neg if float => OpClass::FpAlu,
        _ => OpClass::IntAlu,
    }
}

/// Classify a binary operator application (`float` = either operand is FP).
pub fn binop_class(op: crate::expr::BinOp, float: bool) -> OpClass {
    use crate::expr::BinOp;
    match op {
        BinOp::Mul if !float => OpClass::IntMul,
        BinOp::Div | BinOp::Rem if !float => OpClass::IntDiv,
        BinOp::Div | BinOp::Rem => OpClass::FpDiv,
        _ if float => OpClass::FpAlu,
        _ => OpClass::IntAlu,
    }
}

/// Classify a math-intrinsic application.
pub fn intrinsic_class(f: crate::expr::Intrinsic) -> OpClass {
    use crate::expr::Intrinsic as I;
    match f {
        I::Exp | I::Log | I::Sqrt | I::Sin | I::Cos | I::Pow => OpClass::Special,
        I::Abs | I::Max | I::Min | I::Floor | I::Ceil => OpClass::FpAlu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_table_orders_costs_sensibly() {
        let t = CostTable::default();
        assert!(t.cost(OpClass::IntAlu) < t.cost(OpClass::IntMul));
        assert!(t.cost(OpClass::IntMul) < t.cost(OpClass::IntDiv));
        assert!(t.cost(OpClass::FpDiv) < t.cost(OpClass::Special));
    }

    #[test]
    fn counts_accumulate_and_total() {
        let mut c = OpCounts::new();
        c.record(OpClass::FpAlu);
        c.record(OpClass::FpAlu);
        c.record(OpClass::Load);
        assert_eq!(c.count(OpClass::FpAlu), 2);
        assert_eq!(c.total_ops(), 3);
        assert_eq!(c.memory_ops(), 1);
        assert_eq!(c.compute_ops(), 2);
        let t = CostTable::uniform(2.0);
        assert_eq!(t.total(&c), 6.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = OpCounts::new();
        a.record(OpClass::Store);
        let mut b = OpCounts::new();
        b.record(OpClass::Store);
        b.record(OpClass::Branch);
        a.merge(&b);
        assert_eq!(a.count(OpClass::Store), 2);
        assert_eq!(a.count(OpClass::Branch), 1);
    }

    #[test]
    fn arithmetic_intensity() {
        let mut c = OpCounts::new();
        for _ in 0..10 {
            c.record(OpClass::FpAlu);
        }
        c.record(OpClass::Load);
        c.record(OpClass::Store);
        assert!((c.arithmetic_intensity() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn all_classes_indexed_uniquely() {
        let mut seen = std::collections::HashSet::new();
        for c in OpClass::ALL {
            assert!(seen.insert(c.idx()));
        }
        assert_eq!(seen.len(), 12);
    }
}

//! Ergonomic programmatic construction of IR functions.
//!
//! The front end produces IR from MiniJava source; tests, examples and
//! hand-written workloads can instead assemble IR directly with
//! [`FnBuilder`], which manages variable-slot allocation and name bookkeeping.

use crate::expr::Expr;
use crate::program::{Function, Param, ParamTy};
use crate::span::Span;
use crate::stmt::{ForLoop, LoopAnnotation, LoopId, Stmt};
use crate::types::Ty;
use crate::VarId;

/// Builder for one [`Function`].
pub struct FnBuilder {
    name: String,
    params: Vec<Param>,
    body: Vec<Stmt>,
    next_var: u32,
    next_loop: u32,
    var_names: Vec<String>,
}

impl FnBuilder {
    /// Start building a function called `name`.
    pub fn new(name: impl Into<String>) -> FnBuilder {
        FnBuilder {
            name: name.into(),
            params: Vec::new(),
            body: Vec::new(),
            next_var: 0,
            next_loop: 0,
            var_names: Vec::new(),
        }
    }

    fn alloc_var(&mut self, name: &str) -> VarId {
        let v = VarId(self.next_var);
        self.next_var += 1;
        self.var_names.push(name.to_string());
        v
    }

    /// Declare a scalar parameter.
    pub fn param_scalar(&mut self, name: &str, ty: Ty) -> VarId {
        let var = self.alloc_var(name);
        self.params.push(Param {
            name: name.to_string(),
            var,
            ty: ParamTy::Scalar(ty),
        });
        var
    }

    /// Declare an array parameter.
    pub fn param_array(&mut self, name: &str, elem: Ty) -> VarId {
        let var = self.alloc_var(name);
        self.params.push(Param {
            name: name.to_string(),
            var,
            ty: ParamTy::Array(elem),
        });
        var
    }

    /// Allocate a fresh local variable slot (declaration statement still
    /// needed for scalars).
    pub fn fresh(&mut self, name: &str) -> VarId {
        self.alloc_var(name)
    }

    /// Allocate a fresh loop id.
    pub fn fresh_loop(&mut self) -> LoopId {
        let id = LoopId(self.next_loop);
        self.next_loop += 1;
        id
    }

    /// Append a statement to the function body.
    pub fn push(&mut self, s: Stmt) {
        self.body.push(s);
    }

    /// Declare-and-initialize a scalar local, returning its slot.
    pub fn decl(&mut self, name: &str, ty: Ty, init: Expr) -> VarId {
        let var = self.fresh(name);
        self.push(Stmt::DeclVar {
            var,
            ty,
            init: Some(init),
        });
        var
    }

    /// Append a canonical `for` loop built from a closure that receives the
    /// builder and the induction variable and returns the body.
    pub fn for_loop(
        &mut self,
        ivar_name: &str,
        start: Expr,
        end: Expr,
        step: Expr,
        annot: Option<LoopAnnotation>,
        body: impl FnOnce(&mut FnBuilder, VarId) -> Vec<Stmt>,
    ) -> LoopId {
        let var = self.fresh(ivar_name);
        let id = self.fresh_loop();
        let body = body(self, var);
        self.push(Stmt::For(ForLoop {
            id,
            var,
            start,
            end,
            step,
            body,
            annot,
            span: Span::none(),
        }));
        id
    }

    /// Finish, producing the [`Function`].
    pub fn finish(self, ret: Option<Ty>) -> Function {
        Function {
            name: self.name,
            params: self.params,
            ret,
            body: self.body,
            num_vars: self.next_var,
            var_names: self.var_names,
            span: Span::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::Heap;
    use crate::interp::{HeapBackend, Interp};
    use crate::program::Program;
    use crate::types::Value;

    #[test]
    fn builder_allocates_dense_slots() {
        let mut f = FnBuilder::new("f");
        let a = f.param_scalar("a", Ty::Int);
        let b = f.param_array("b", Ty::Double);
        let c = f.fresh("c");
        assert_eq!((a, b, c), (VarId(0), VarId(1), VarId(2)));
        let func = f.finish(None);
        assert_eq!(func.num_vars, 3);
        assert_eq!(func.var_name(VarId(1)), "b");
    }

    #[test]
    fn for_loop_helper_builds_runnable_loop() {
        // scale: b[i] = a[i] * 2 for i in 0..n
        let mut p = Program::new();
        let mut f = FnBuilder::new("scale");
        let a = f.param_array("a", Ty::Int);
        let b = f.param_array("b", Ty::Int);
        let n = f.param_scalar("n", Ty::Int);
        f.for_loop(
            "i",
            Expr::int(0),
            Expr::var(n),
            Expr::int(1),
            Some(LoopAnnotation::parallel()),
            |_, i| {
                vec![Stmt::Store {
                    array: b,
                    index: Expr::var(i),
                    value: Expr::index(a, Expr::var(i)).mul(Expr::int(2)),
                    span: Span::none(),
                }]
            },
        );
        p.add_function(f.finish(None));

        let mut heap = Heap::new();
        let av = heap.alloc_ints(&[1, 2, 3]);
        let bv = heap.alloc(Ty::Int, 3);
        let mut be = HeapBackend::new(&mut heap);
        Interp::new(&p)
            .call_by_name(
                "scale",
                &[Value::Array(av), Value::Array(bv), Value::Int(3)],
                &mut be,
            )
            .unwrap();
        assert_eq!(heap.read_ints(bv).unwrap(), vec![2, 4, 6]);
    }

    #[test]
    fn fresh_loops_are_unique() {
        let mut f = FnBuilder::new("f");
        let l0 = f.fresh_loop();
        let l1 = f.fresh_loop();
        assert_ne!(l0, l1);
    }
}

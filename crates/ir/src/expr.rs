//! Expression nodes of the IR.

use crate::types::{Ty, Value};
use crate::{FnId, VarId};
use std::fmt;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!b`.
    Not,
    /// Bitwise complement `~x` (integral only).
    BitNot,
}

/// Binary operators with Java semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Integral division truncates toward zero; raises on division by zero.
    Div,
    /// Remainder with the sign of the dividend.
    Rem,
    /// Bitwise and / or / xor (integral, or logical on booleans).
    And,
    Or,
    Xor,
    /// `<<` — shift count masked to 5 (int) / 6 (long) bits like the JVM.
    Shl,
    /// `>>` arithmetic shift right.
    Shr,
    /// `>>>` logical shift right.
    UShr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    /// Short-circuit `&&` (the interpreter evaluates lazily).
    LAnd,
    /// Short-circuit `||`.
    LOr,
}

impl BinOp {
    /// Does this operator produce a `boolean` result?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Is this a short-circuit logical operator?
    pub fn is_short_circuit(self) -> bool {
        matches!(self, BinOp::LAnd | BinOp::LOr)
    }
}

/// Built-in math intrinsics (`Math.*` in MiniJava source).
///
/// Intrinsics are pure: they read their arguments and produce a `double`
/// (or the argument type for `Abs`/`Max`/`Min`). On the simulated GPU they
/// are accounted as special-function-unit operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    Exp,
    Log,
    Sqrt,
    Pow,
    Sin,
    Cos,
    Abs,
    Max,
    Min,
    Floor,
    Ceil,
}

impl Intrinsic {
    /// Number of arguments the intrinsic takes.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Pow | Intrinsic::Max | Intrinsic::Min => 2,
            _ => 1,
        }
    }

    /// Resolve from the MiniJava method name after `Math.`.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "exp" => Intrinsic::Exp,
            "log" => Intrinsic::Log,
            "sqrt" => Intrinsic::Sqrt,
            "pow" => Intrinsic::Pow,
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "abs" => Intrinsic::Abs,
            "max" => Intrinsic::Max,
            "min" => Intrinsic::Min,
            "floor" => Intrinsic::Floor,
            "ceil" => Intrinsic::Ceil,
            _ => return None,
        })
    }
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Pow => "pow",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Abs => "abs",
            Intrinsic::Max => "max",
            Intrinsic::Min => "min",
            Intrinsic::Floor => "floor",
            Intrinsic::Ceil => "ceil",
        };
        write!(f, "Math.{s}")
    }
}

/// An expression tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Const(Value),
    /// Read of a scalar or array-reference variable.
    Var(VarId),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation (short-circuit ops evaluate the RHS lazily).
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Explicit cast `(ty) e`.
    Cast(Ty, Box<Expr>),
    /// Array element load `a[i]` where `array` holds an array reference.
    Index { array: VarId, index: Box<Expr> },
    /// Array length `a.length`.
    Len(VarId),
    /// Math intrinsic call.
    Intrinsic(Intrinsic, Vec<Expr>),
    /// Call of another MiniJava function in the same program.
    Call(FnId, Vec<Expr>),
    /// Conditional expression `c ? t : e`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // DSL constructors, not arithmetic impls
impl Expr {
    /// Integer literal shorthand.
    pub fn int(v: i32) -> Expr {
        Expr::Const(Value::Int(v))
    }

    /// Long literal shorthand.
    pub fn long(v: i64) -> Expr {
        Expr::Const(Value::Long(v))
    }

    /// Double literal shorthand.
    pub fn double(v: f64) -> Expr {
        Expr::Const(Value::Double(v))
    }

    /// Float literal shorthand.
    pub fn float(v: f32) -> Expr {
        Expr::Const(Value::Float(v))
    }

    /// Boolean literal shorthand.
    pub fn bool(v: bool) -> Expr {
        Expr::Const(Value::Bool(v))
    }

    /// Variable read shorthand.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// `self + rhs`
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self - rhs`
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self * rhs`
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Div, Box::new(self), Box::new(rhs))
    }

    /// `self % rhs`
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Rem, Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self <= rhs`
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Le, Box::new(self), Box::new(rhs))
    }

    /// `self == rhs`
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Eq, Box::new(self), Box::new(rhs))
    }

    /// `a[i]` load shorthand.
    pub fn index(array: VarId, index: Expr) -> Expr {
        Expr::Index {
            array,
            index: Box::new(index),
        }
    }

    /// Visit every sub-expression (pre-order), including `self`.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::Len(_) => {}
            Expr::Unary(_, e) | Expr::Cast(_, e) => e.walk(f),
            Expr::Binary(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Index { index, .. } => index.walk(f),
            Expr::Intrinsic(_, args) | Expr::Call(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Ternary(c, t, e) => {
                c.walk(f);
                t.walk(f);
                e.walk(f);
            }
        }
    }

    /// Does the expression reference `var` anywhere (including as an array
    /// base)?
    pub fn uses_var(&self, var: VarId) -> bool {
        let mut found = false;
        self.walk(&mut |e| match e {
            Expr::Var(v) | Expr::Len(v) if *v == var => found = true,
            Expr::Index { array, .. } if *array == var => found = true,
            _ => {}
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsic_arities() {
        assert_eq!(Intrinsic::Exp.arity(), 1);
        assert_eq!(Intrinsic::Pow.arity(), 2);
        assert_eq!(Intrinsic::Max.arity(), 2);
    }

    #[test]
    fn intrinsic_lookup_by_name() {
        assert_eq!(Intrinsic::from_name("sqrt"), Some(Intrinsic::Sqrt));
        assert_eq!(Intrinsic::from_name("tanh"), None);
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e =
            Expr::var(VarId(0)).add(Expr::index(VarId(1), Expr::var(VarId(2)).mul(Expr::int(4))));
        let mut n = 0;
        e.walk(&mut |_| n += 1);
        // add, var0, index, mul, var2, 4
        assert_eq!(n, 6);
    }

    #[test]
    fn uses_var_sees_array_bases() {
        let e = Expr::index(VarId(7), Expr::int(0));
        assert!(e.uses_var(VarId(7)));
        assert!(!e.uses_var(VarId(8)));
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::LAnd.is_short_circuit());
        assert!(!BinOp::And.is_short_circuit());
    }
}

//! Statement nodes, canonical loops, and loop annotations (paper Table I).

use crate::expr::Expr;
use crate::span::Span;
use crate::types::Ty;
use crate::VarId;
use std::fmt;

/// Identifier of an annotated (or at least named) loop within a program.
///
/// Loop ids are assigned by the front end in source order and used by the
/// analysis results, profiles, PDG and scheduler to refer to loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LoopId(pub u32);

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Task-scheduling scheme selected by the `scheme(...)` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scheme {
    /// Task sharing: one loop's iteration space is split across CPU and GPU
    /// at the boundary (paper §V-A). This is the paper's default.
    #[default]
    Sharing,
    /// Task stealing: whole loops (or subloops) are queued on CPUQ/GPUQ and
    /// stolen across (paper §V-B, Algorithm 1).
    Stealing,
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::Sharing => f.write_str("sharing"),
            Scheme::Stealing => f.write_str("stealing"),
        }
    }
}

/// An `arr[low:high]` range in a data clause. Bounds are expressions
/// evaluated in the enclosing scope when the loop is entered; `None` means
/// the whole array.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayRange {
    /// The array variable.
    pub array: VarId,
    /// Inclusive element lower bound (`None` = 0).
    pub lo: Option<Expr>,
    /// Exclusive element upper bound (`None` = array length).
    pub hi: Option<Expr>,
    /// Source position of the clause entry (`arr[lo:hi]`).
    pub span: Span,
}

impl ArrayRange {
    /// Whole-array range.
    pub fn whole(array: VarId) -> ArrayRange {
        ArrayRange {
            array,
            lo: None,
            hi: None,
            span: Span::none(),
        }
    }
}

/// The OpenACC-style annotation attached to a `for` loop
/// (`/* acc parallel clause ... */`, paper Table I).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoopAnnotation {
    /// `parallel` — marks the loop for heterogeneous parallel execution.
    pub parallel: bool,
    /// `private(list)` — one copy of each listed variable per execution
    /// element (used by the privatization mode D/D').
    pub private: Vec<VarId>,
    /// `copyin(list)` — allocate on the device and copy host -> device on
    /// loop entry.
    pub copyin: Vec<ArrayRange>,
    /// `copyout(list)` — allocate on the device and copy device -> host on
    /// loop exit.
    pub copyout: Vec<ArrayRange>,
    /// `create(list)` — device-only allocation, no transfers.
    pub create: Vec<ArrayRange>,
    /// `threads(n)` — requested CPU thread count.
    pub threads: Option<u32>,
    /// `scheme(s)` — scheduling scheme; `None` means the paper's default
    /// (sharing).
    pub scheme: Option<Scheme>,
    /// Source position of the `/* acc ... */` comment.
    pub span: Span,
    /// Source positions of the `private(...)` entries, parallel to
    /// [`LoopAnnotation::private`] (empty when built programmatically).
    pub private_spans: Vec<Span>,
}

impl LoopAnnotation {
    /// A bare `/* acc parallel */` annotation.
    pub fn parallel() -> LoopAnnotation {
        LoopAnnotation {
            parallel: true,
            ..LoopAnnotation::default()
        }
    }

    /// Were any explicit data clauses given? If not, the translator derives
    /// transfers from the live-in / live-out analysis (paper §III-B).
    pub fn has_data_clauses(&self) -> bool {
        !self.copyin.is_empty() || !self.copyout.is_empty() || !self.create.is_empty()
    }

    /// Effective scheduling scheme (paper default: sharing).
    pub fn effective_scheme(&self) -> Scheme {
        self.scheme.unwrap_or_default()
    }
}

/// A canonical counted loop:
/// `for (var = start; var < end; var += step) body` with `step > 0`.
///
/// Iteration `k` (0-based) executes with `var = start + k*step`; the trip
/// count is `ceil((end - start) / step)`. Parallelization, chunking, TLS
/// sub-loops and the sharing boundary all operate on the iteration index
/// space `0..trip`.
#[derive(Debug, Clone, PartialEq)]
pub struct ForLoop {
    /// Stable loop identity (assigned in source order).
    pub id: LoopId,
    /// The induction variable (always `int` in MiniJava).
    pub var: VarId,
    /// Start expression, evaluated once on entry.
    pub start: Expr,
    /// Exclusive end expression, evaluated once on entry.
    pub end: Expr,
    /// Step expression, evaluated once on entry; must be positive.
    pub step: Expr,
    /// Loop body.
    pub body: Vec<Stmt>,
    /// Attached `/* acc ... */` annotation, if any.
    pub annot: Option<LoopAnnotation>,
    /// Source position of the `for` keyword.
    pub span: Span,
}

impl ForLoop {
    /// Is this loop a parallelization candidate (annotated `parallel`)?
    pub fn is_annotated(&self) -> bool {
        self.annot.as_ref().map(|a| a.parallel).unwrap_or(false)
    }
}

/// A statement node.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Scalar variable declaration with optional initializer.
    DeclVar {
        var: VarId,
        ty: Ty,
        init: Option<Expr>,
    },
    /// Array allocation `ty[] var = new ty[len]`, zero-initialized.
    NewArray { var: VarId, elem: Ty, len: Expr },
    /// Scalar assignment `var = value`.
    Assign { var: VarId, value: Expr },
    /// Array element store `array[index] = value`.
    Store {
        array: VarId,
        index: Expr,
        value: Expr,
        /// Source position of the assignment (the target element), so
        /// dependence verdicts can point at the exact conflicting access.
        span: Span,
    },
    /// `if (cond) { then } else { other }`.
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
    /// Canonical counted loop.
    For(ForLoop),
    /// General `while` loop (never parallelized).
    While { cond: Expr, body: Vec<Stmt> },
    /// `return e;` / `return;`.
    Return(Option<Expr>),
    /// `break;` out of the innermost loop.
    Break,
    /// `continue;` the innermost loop.
    Continue,
    /// Expression evaluated for side effects (function calls).
    ExprStmt(Expr),
}

impl Stmt {
    /// Visit this statement and all nested statements (pre-order).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        f(self);
        match self {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                for s in then_branch.iter().chain(else_branch) {
                    s.walk(f);
                }
            }
            Stmt::For(l) => {
                for s in &l.body {
                    s.walk(f);
                }
            }
            Stmt::While { body, .. } => {
                for s in body {
                    s.walk(f);
                }
            }
            _ => {}
        }
    }

    /// Visit every expression contained in this statement subtree.
    pub fn walk_exprs<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        self.walk(&mut |s| match s {
            Stmt::DeclVar { init: Some(e), .. } => e.walk(f),
            Stmt::DeclVar { init: None, .. } => {}
            Stmt::NewArray { len, .. } => len.walk(f),
            Stmt::Assign { value, .. } => value.walk(f),
            Stmt::Store { index, value, .. } => {
                index.walk(f);
                value.walk(f);
            }
            Stmt::If { cond, .. } => cond.walk(f),
            Stmt::For(l) => {
                l.start.walk(f);
                l.end.walk(f);
                l.step.walk(f);
            }
            Stmt::While { cond, .. } => cond.walk(f),
            Stmt::Return(Some(e)) => e.walk(f),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
            Stmt::ExprStmt(e) => e.walk(f),
        });
    }
}

/// Collect all annotated loops in a statement list (outermost first, source
/// order).
pub fn annotated_loops(stmts: &[Stmt]) -> Vec<&ForLoop> {
    let mut out = Vec::new();
    for s in stmts {
        s.walk(&mut |s| {
            if let Stmt::For(l) = s {
                if l.is_annotated() {
                    out.push(l);
                }
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn dummy_loop(id: u32, annotated: bool) -> ForLoop {
        ForLoop {
            id: LoopId(id),
            var: VarId(0),
            start: Expr::int(0),
            end: Expr::int(10),
            step: Expr::int(1),
            body: vec![],
            annot: annotated.then(LoopAnnotation::parallel),
            span: Span::none(),
        }
    }

    #[test]
    fn annotated_loops_found_in_order_and_nested() {
        let inner = dummy_loop(1, true);
        let mut outer = dummy_loop(0, true);
        outer.body.push(Stmt::For(inner));
        let stmts = vec![Stmt::For(outer), Stmt::For(dummy_loop(2, false))];
        let found = annotated_loops(&stmts);
        assert_eq!(
            found.iter().map(|l| l.id).collect::<Vec<_>>(),
            vec![LoopId(0), LoopId(1)]
        );
    }

    #[test]
    fn annotation_defaults_match_paper() {
        let a = LoopAnnotation::parallel();
        assert!(a.parallel);
        assert_eq!(a.effective_scheme(), Scheme::Sharing);
        assert!(!a.has_data_clauses());
    }

    #[test]
    fn walk_exprs_reaches_store_operands() {
        let s = Stmt::Store {
            array: VarId(1),
            index: Expr::var(VarId(0)),
            value: Expr::int(42),
            span: Span::none(),
        };
        let mut n = 0;
        s.walk_exprs(&mut |_| n += 1);
        assert_eq!(n, 2);
    }

    #[test]
    fn scheme_display() {
        assert_eq!(Scheme::Sharing.to_string(), "sharing");
        assert_eq!(Scheme::Stealing.to_string(), "stealing");
    }
}

//! Java-faithful scalar operator semantics, shared by the sequential
//! interpreter and the SIMT warp interpreter.

use crate::error::ExecError;
use crate::expr::{BinOp, Intrinsic, UnOp};
use crate::types::{Ty, Value};

fn type_err(expected: &str, found: Value) -> ExecError {
    ExecError::TypeMismatch {
        expected: expected.to_string(),
        found: format!("{found}"),
    }
}

/// Apply a unary operator.
pub fn unary(op: UnOp, v: Value) -> Result<Value, ExecError> {
    match op {
        UnOp::Neg => match v {
            Value::Int(x) => Ok(Value::Int(x.wrapping_neg())),
            Value::Long(x) => Ok(Value::Long(x.wrapping_neg())),
            Value::Float(x) => Ok(Value::Float(-x)),
            Value::Double(x) => Ok(Value::Double(-x)),
            other => Err(type_err("numeric", other)),
        },
        UnOp::Not => match v {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(type_err("boolean", other)),
        },
        UnOp::BitNot => match v {
            Value::Int(x) => Ok(Value::Int(!x)),
            Value::Long(x) => Ok(Value::Long(!x)),
            other => Err(type_err("integral", other)),
        },
    }
}

/// Promote both operands to their common numeric type (Java binary numeric
/// promotion).
fn promoted(a: Value, b: Value) -> Result<(Value, Value, Ty), ExecError> {
    let (ta, tb) = match (a.ty(), b.ty()) {
        (Some(ta), Some(tb)) => (ta, tb),
        _ => return Err(type_err("numeric", a)),
    };
    let ty = Ty::promote(ta, tb).ok_or_else(|| type_err("numeric", a))?;
    let pa = a.cast(ty).ok_or_else(|| type_err("numeric", a))?;
    let pb = b.cast(ty).ok_or_else(|| type_err("numeric", b))?;
    Ok((pa, pb, ty))
}

macro_rules! arith {
    ($a:expr, $b:expr, $iop:ident, $fop:tt) => {
        match promoted($a, $b)? {
            (Value::Int(x), Value::Int(y), _) => Ok(Value::Int(x.$iop(y))),
            (Value::Long(x), Value::Long(y), _) => Ok(Value::Long(x.$iop(y))),
            (Value::Float(x), Value::Float(y), _) => Ok(Value::Float(x $fop y)),
            (Value::Double(x), Value::Double(y), _) => Ok(Value::Double(x $fop y)),
            _ => unreachable!("promotion yields matching scalar types"),
        }
    };
}

macro_rules! int_bitop {
    ($a:expr, $b:expr, $op:tt, $name:literal) => {
        match ($a, $b) {
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x $op y)),
            (Value::Long(x), Value::Long(y)) => Ok(Value::Long(x $op y)),
            (Value::Int(x), Value::Long(y)) => Ok(Value::Long((x as i64) $op y)),
            (Value::Long(x), Value::Int(y)) => Ok(Value::Long(x $op (y as i64))),
            (Value::Bool(x), Value::Bool(y)) => Ok(Value::Bool(x $op y)),
            (a, _) => Err(type_err($name, a)),
        }
    };
}

/// Apply a non-short-circuit binary operator. The interpreter handles
/// `LAnd`/`LOr` itself (lazy right operand); calling this with them applies
/// eager boolean logic, which is what the SIMT simulator does after both
/// lanes' sides are available.
pub fn binary(op: BinOp, a: Value, b: Value) -> Result<Value, ExecError> {
    match op {
        BinOp::Add => arith!(a, b, wrapping_add, +),
        BinOp::Sub => arith!(a, b, wrapping_sub, -),
        BinOp::Mul => arith!(a, b, wrapping_mul, *),
        BinOp::Div => match promoted(a, b)? {
            (Value::Int(_), Value::Int(0), _) => Err(ExecError::DivisionByZero),
            (Value::Long(_), Value::Long(0), _) => Err(ExecError::DivisionByZero),
            (Value::Int(x), Value::Int(y), _) => Ok(Value::Int(x.wrapping_div(y))),
            (Value::Long(x), Value::Long(y), _) => Ok(Value::Long(x.wrapping_div(y))),
            (Value::Float(x), Value::Float(y), _) => Ok(Value::Float(x / y)),
            (Value::Double(x), Value::Double(y), _) => Ok(Value::Double(x / y)),
            _ => unreachable!(),
        },
        BinOp::Rem => match promoted(a, b)? {
            (Value::Int(_), Value::Int(0), _) => Err(ExecError::DivisionByZero),
            (Value::Long(_), Value::Long(0), _) => Err(ExecError::DivisionByZero),
            (Value::Int(x), Value::Int(y), _) => Ok(Value::Int(x.wrapping_rem(y))),
            (Value::Long(x), Value::Long(y), _) => Ok(Value::Long(x.wrapping_rem(y))),
            (Value::Float(x), Value::Float(y), _) => Ok(Value::Float(x % y)),
            (Value::Double(x), Value::Double(y), _) => Ok(Value::Double(x % y)),
            _ => unreachable!(),
        },
        BinOp::And | BinOp::LAnd => int_bitop!(a, b, &, "integral or boolean"),
        BinOp::Or | BinOp::LOr => int_bitop!(a, b, |, "integral or boolean"),
        BinOp::Xor => int_bitop!(a, b, ^, "integral or boolean"),
        BinOp::Shl => shift(a, b, |x, s| x.wrapping_shl(s), |x, s| x.wrapping_shl(s)),
        BinOp::Shr => shift(a, b, |x, s| x.wrapping_shr(s), |x, s| x.wrapping_shr(s)),
        BinOp::UShr => shift(
            a,
            b,
            |x, s| (x as u32).wrapping_shr(s) as i32,
            |x, s| (x as u64).wrapping_shr(s) as i64,
        ),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let (pa, pb, _) = promoted(a, b)?;
            let ord = compare(pa, pb);
            Ok(Value::Bool(match op {
                BinOp::Lt => ord == Some(std::cmp::Ordering::Less),
                BinOp::Le => matches!(
                    ord,
                    Some(std::cmp::Ordering::Less) | Some(std::cmp::Ordering::Equal)
                ),
                BinOp::Gt => ord == Some(std::cmp::Ordering::Greater),
                BinOp::Ge => matches!(
                    ord,
                    Some(std::cmp::Ordering::Greater) | Some(std::cmp::Ordering::Equal)
                ),
                _ => unreachable!(),
            }))
        }
        BinOp::Eq | BinOp::Ne => {
            let eq = match (a, b) {
                (Value::Bool(x), Value::Bool(y)) => x == y,
                (Value::Array(x), Value::Array(y)) => x == y,
                _ => {
                    let (pa, pb, _) = promoted(a, b)?;
                    compare(pa, pb) == Some(std::cmp::Ordering::Equal)
                }
            };
            Ok(Value::Bool(if op == BinOp::Eq { eq } else { !eq }))
        }
    }
}

/// Java shift: the left operand keeps its (int/long) type, the count is
/// masked to 5 or 6 bits.
fn shift(
    a: Value,
    b: Value,
    fi: impl Fn(i32, u32) -> i32,
    fl: impl Fn(i64, u32) -> i64,
) -> Result<Value, ExecError> {
    let count = b.as_i64().ok_or_else(|| type_err("integral", b))?;
    match a {
        Value::Int(x) => Ok(Value::Int(fi(x, (count & 0x1f) as u32))),
        Value::Long(x) => Ok(Value::Long(fl(x, (count & 0x3f) as u32))),
        other => Err(type_err("integral", other)),
    }
}

fn compare(a: Value, b: Value) -> Option<std::cmp::Ordering> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(x.cmp(&y)),
        (Value::Long(x), Value::Long(y)) => Some(x.cmp(&y)),
        (Value::Float(x), Value::Float(y)) => x.partial_cmp(&y),
        (Value::Double(x), Value::Double(y)) => x.partial_cmp(&y),
        _ => None,
    }
}

/// Evaluate a math intrinsic. Single-argument intrinsics on integral input
/// promote to `double` (matching `java.lang.Math`); `Abs`/`Max`/`Min`
/// preserve the argument type.
pub fn intrinsic(f: Intrinsic, args: &[Value]) -> Result<Value, ExecError> {
    if args.len() != f.arity() {
        return Err(ExecError::ArityMismatch {
            function: f.to_string(),
            expected: f.arity(),
            found: args.len(),
        });
    }
    let d = |v: Value| v.as_f64().ok_or_else(|| type_err("numeric", v));
    Ok(match f {
        Intrinsic::Exp => Value::Double(d(args[0])?.exp()),
        Intrinsic::Log => Value::Double(d(args[0])?.ln()),
        Intrinsic::Sqrt => Value::Double(d(args[0])?.sqrt()),
        Intrinsic::Sin => Value::Double(d(args[0])?.sin()),
        Intrinsic::Cos => Value::Double(d(args[0])?.cos()),
        Intrinsic::Floor => Value::Double(d(args[0])?.floor()),
        Intrinsic::Ceil => Value::Double(d(args[0])?.ceil()),
        Intrinsic::Pow => Value::Double(d(args[0])?.powf(d(args[1])?)),
        Intrinsic::Abs => match args[0] {
            Value::Int(x) => Value::Int(x.wrapping_abs()),
            Value::Long(x) => Value::Long(x.wrapping_abs()),
            Value::Float(x) => Value::Float(x.abs()),
            Value::Double(x) => Value::Double(x.abs()),
            other => return Err(type_err("numeric", other)),
        },
        Intrinsic::Max | Intrinsic::Min => {
            let (pa, pb, _) = promoted(args[0], args[1])?;
            let take_a = match compare(pa, pb) {
                Some(std::cmp::Ordering::Greater) => f == Intrinsic::Max,
                Some(std::cmp::Ordering::Less) => f == Intrinsic::Min,
                _ => true,
            };
            if take_a {
                pa
            } else {
                pb
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_add_wraps() {
        assert_eq!(
            binary(BinOp::Add, Value::Int(i32::MAX), Value::Int(1)).unwrap(),
            Value::Int(i32::MIN)
        );
    }

    #[test]
    fn mixed_promotion() {
        assert_eq!(
            binary(BinOp::Add, Value::Int(1), Value::Double(0.5)).unwrap(),
            Value::Double(1.5)
        );
        assert_eq!(
            binary(BinOp::Mul, Value::Long(2), Value::Float(1.5)).unwrap(),
            Value::Float(3.0)
        );
    }

    #[test]
    fn integer_division_truncates_and_traps_zero() {
        assert_eq!(
            binary(BinOp::Div, Value::Int(-7), Value::Int(2)).unwrap(),
            Value::Int(-3)
        );
        assert_eq!(
            binary(BinOp::Div, Value::Int(1), Value::Int(0)),
            Err(ExecError::DivisionByZero)
        );
        // Float division by zero yields infinity, not an error.
        assert_eq!(
            binary(BinOp::Div, Value::Double(1.0), Value::Double(0.0)).unwrap(),
            Value::Double(f64::INFINITY)
        );
    }

    #[test]
    fn remainder_keeps_dividend_sign() {
        assert_eq!(
            binary(BinOp::Rem, Value::Int(-7), Value::Int(2)).unwrap(),
            Value::Int(-1)
        );
    }

    #[test]
    fn shifts_mask_count_like_jvm() {
        assert_eq!(
            binary(BinOp::Shl, Value::Int(1), Value::Int(33)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            binary(BinOp::UShr, Value::Int(-1), Value::Int(28)).unwrap(),
            Value::Int(0xf)
        );
        assert_eq!(
            binary(BinOp::Shr, Value::Int(-8), Value::Int(1)).unwrap(),
            Value::Int(-4)
        );
    }

    #[test]
    fn comparisons_and_nan() {
        assert_eq!(
            binary(BinOp::Lt, Value::Int(1), Value::Int(2)).unwrap(),
            Value::Bool(true)
        );
        // NaN compares false with everything, like Java.
        assert_eq!(
            binary(BinOp::Le, Value::Double(f64::NAN), Value::Double(0.0)).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            binary(BinOp::Eq, Value::Double(f64::NAN), Value::Double(f64::NAN)).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn boolean_bitops() {
        assert_eq!(
            binary(BinOp::Xor, Value::Bool(true), Value::Bool(true)).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            binary(BinOp::And, Value::Bool(true), Value::Bool(false)).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn unary_ops() {
        assert_eq!(
            unary(UnOp::Neg, Value::Int(i32::MIN)).unwrap(),
            Value::Int(i32::MIN)
        );
        assert_eq!(unary(UnOp::BitNot, Value::Int(0)).unwrap(), Value::Int(-1));
        assert_eq!(
            unary(UnOp::Not, Value::Bool(false)).unwrap(),
            Value::Bool(true)
        );
        assert!(unary(UnOp::Not, Value::Int(1)).is_err());
    }

    #[test]
    fn intrinsics_promote_to_double() {
        assert_eq!(
            intrinsic(Intrinsic::Sqrt, &[Value::Int(9)]).unwrap(),
            Value::Double(3.0)
        );
        assert_eq!(
            intrinsic(Intrinsic::Max, &[Value::Int(3), Value::Int(5)]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            intrinsic(Intrinsic::Abs, &[Value::Float(-2.5)]).unwrap(),
            Value::Float(2.5)
        );
    }

    #[test]
    fn intrinsic_arity_checked() {
        assert!(matches!(
            intrinsic(Intrinsic::Exp, &[]),
            Err(ExecError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn array_reference_equality() {
        use crate::heap::ArrayId;
        assert_eq!(
            binary(
                BinOp::Eq,
                Value::Array(ArrayId(1)),
                Value::Array(ArrayId(1))
            )
            .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            binary(
                BinOp::Ne,
                Value::Array(ArrayId(1)),
                Value::Array(ArrayId(2))
            )
            .unwrap(),
            Value::Bool(true)
        );
    }
}

//! # japonica-frontend
//!
//! The MiniJava front end of Japonica: the "code translator" input stage of
//! the paper (§III). It turns annotated sequential MiniJava source into the
//! [`japonica_ir`] loop IR:
//!
//! 1. [`lexer`] — tokenizes MiniJava, capturing `/* acc ... */` comments as
//!    annotation tokens (all other comments are skipped);
//! 2. [`parser`] — recursive-descent parser producing a typed AST;
//! 3. [`annot`] — parses the OpenACC-style clause grammar of paper Table I;
//! 4. [`sema`] — name resolution and Java-style type checking;
//! 5. [`lower`] — lowers the AST to IR, canonicalizing annotated `for` loops
//!    into counted [`japonica_ir::ForLoop`]s.
//!
//! The one-call entry point is [`compile_source`].

pub mod annot;
pub mod ast;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod sema;
pub mod strip;
pub mod token;

pub use error::CompileError;
pub use strip::strip_acc_annotations;

/// Compile MiniJava source text to an IR [`japonica_ir::Program`].
///
/// ```
/// let src = r#"
///     static void scale(double[] a, double[] b, int n) {
///         /* acc parallel copyin(a[0:n]) copyout(b[0:n]) */
///         for (int i = 0; i < n; i = i + 1) {
///             b[i] = a[i] * 2.0;
///         }
///     }
/// "#;
/// let program = japonica_frontend::compile_source(src).unwrap();
/// assert_eq!(program.functions.len(), 1);
/// ```
pub fn compile_source(src: &str) -> Result<japonica_ir::Program, CompileError> {
    let tokens = lexer::lex(src)?;
    let unit = parser::parse(tokens)?;
    sema::check(&unit)?;
    lower::lower(&unit)
}

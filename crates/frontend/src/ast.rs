//! The MiniJava abstract syntax tree (pre-resolution: names are strings).

use crate::annot::AAnnot;
use crate::error::Pos;
use japonica_ir::{BinOp, Intrinsic, Ty, UnOp};

/// A declared type: scalar primitive or array of primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AType {
    Prim(Ty),
    Array(Ty),
}

impl std::fmt::Display for AType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AType::Prim(t) => write!(f, "{t}"),
            AType::Array(t) => write!(f, "{t}[]"),
        }
    }
}

/// An expression with a source position.
#[derive(Debug, Clone, PartialEq)]
pub struct AExpr {
    pub kind: AExprKind,
    pub pos: Pos,
}

impl AExpr {
    /// Construct an expression node.
    pub fn new(kind: AExprKind, pos: Pos) -> AExpr {
        AExpr { kind, pos }
    }
}

/// Expression node kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum AExprKind {
    Int(i32),
    Long(i64),
    Float(f32),
    Double(f64),
    Bool(bool),
    /// A variable reference.
    Name(String),
    Unary(UnOp, Box<AExpr>),
    Binary(BinOp, Box<AExpr>, Box<AExpr>),
    Cast(Ty, Box<AExpr>),
    /// `base[index]` — the base is restricted to a simple name.
    Index(String, Box<AExpr>),
    /// `base.length`
    Length(String),
    /// `Math.f(args)`
    Math(Intrinsic, Vec<AExpr>),
    /// Call of a user `static` function.
    Call(String, Vec<AExpr>),
    /// `c ? t : e`
    Ternary(Box<AExpr>, Box<AExpr>, Box<AExpr>),
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum ATarget {
    /// Scalar / array-reference variable.
    Var(String),
    /// Array element `name[index]`.
    Elem(String, AExpr),
}

/// Variable initializer.
#[derive(Debug, Clone, PartialEq)]
pub enum AInit {
    Expr(AExpr),
    /// `new ty[len]`
    NewArray {
        elem: Ty,
        len: AExpr,
    },
}

/// A statement with a source position.
#[derive(Debug, Clone, PartialEq)]
pub struct AStmt {
    pub kind: AStmtKind,
    pub pos: Pos,
}

impl AStmt {
    /// Construct a statement node.
    pub fn new(kind: AStmtKind, pos: Pos) -> AStmt {
        AStmt { kind, pos }
    }
}

/// Statement node kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum AStmtKind {
    /// Local declaration `ty name (= init)?;`
    Decl {
        ty: AType,
        name: String,
        init: Option<AInit>,
    },
    /// Simple or compound assignment: `target = value` or
    /// `target op= value` (`op` is the compound operator, if any).
    Assign {
        target: ATarget,
        op: Option<BinOp>,
        value: AExpr,
    },
    /// `name++` / `name--`.
    IncDec {
        name: String,
        inc: bool,
    },
    If {
        cond: AExpr,
        then_branch: Vec<AStmt>,
        else_branch: Vec<AStmt>,
    },
    While {
        cond: AExpr,
        body: Vec<AStmt>,
    },
    /// A `for` loop, optionally carrying an `/* acc ... */` annotation.
    For {
        annot: Option<AAnnot>,
        init: Option<Box<AStmt>>,
        cond: AExpr,
        update: Option<Box<AStmt>>,
        body: Vec<AStmt>,
    },
    Return(Option<AExpr>),
    Break,
    Continue,
    /// Bare expression statement (function call).
    ExprStmt(AExpr),
    /// Nested block scope.
    Block(Vec<AStmt>),
}

/// A `static` function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct AFunction {
    pub name: String,
    pub pos: Pos,
    /// `(type, name, pos)` per parameter.
    pub params: Vec<(AType, String, Pos)>,
    /// `None` = `void`.
    pub ret: Option<Ty>,
    pub body: Vec<AStmt>,
}

/// A parsed compilation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Unit {
    pub functions: Vec<AFunction>,
}

impl Unit {
    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&AFunction> {
        self.functions.iter().find(|f| f.name == name)
    }
}

//! Semantic analysis: name resolution and Java-style type checking.
//!
//! `check` validates a parsed [`Unit`] before lowering:
//! scoping rules, operand types, assignment compatibility (implicit numeric
//! conversions are allowed, boolean never converts), annotation clause
//! sanity (data clauses name arrays, `private` names scalars), and
//! definite-return for non-void functions.

use crate::annot::AAnnot;
use crate::ast::*;
use crate::error::{CompileError, Pos};
use japonica_ir::{BinOp, Ty, UnOp};
use std::collections::HashMap;

/// Check a compilation unit, returning the first error found.
pub fn check(unit: &Unit) -> Result<(), CompileError> {
    let mut sigs: HashMap<&str, (&AFunction, Vec<AType>)> = HashMap::new();
    for f in &unit.functions {
        let tys = f.params.iter().map(|(t, _, _)| *t).collect();
        if sigs.insert(f.name.as_str(), (f, tys)).is_some() {
            return Err(CompileError::at(
                f.pos,
                format!("duplicate function `{}`", f.name),
            ));
        }
    }
    for f in &unit.functions {
        Checker {
            sigs: &sigs,
            scopes: Vec::new(),
            func: f,
            loop_depth: 0,
        }
        .check_function()?;
    }
    Ok(())
}

struct Checker<'u> {
    sigs: &'u HashMap<&'u str, (&'u AFunction, Vec<AType>)>,
    scopes: Vec<HashMap<String, AType>>,
    func: &'u AFunction,
    loop_depth: u32,
}

impl<'u> Checker<'u> {
    fn check_function(mut self) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for (ty, name, pos) in &self.func.params {
            self.declare(name, *ty, *pos)?;
        }
        self.check_block(&self.func.body)?;
        if self.func.ret.is_some() && !always_returns(&self.func.body) {
            return Err(CompileError::at(
                self.func.pos,
                format!(
                    "function `{}` may complete without returning a value",
                    self.func.name
                ),
            ));
        }
        Ok(())
    }

    fn declare(&mut self, name: &str, ty: AType, pos: Pos) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.insert(name.to_string(), ty).is_some() {
            return Err(CompileError::at(
                pos,
                format!("`{name}` is already declared in this scope"),
            ));
        }
        Ok(())
    }

    fn lookup(&self, name: &str, pos: Pos) -> Result<AType, CompileError> {
        for scope in self.scopes.iter().rev() {
            if let Some(t) = scope.get(name) {
                return Ok(*t);
            }
        }
        Err(CompileError::at(
            pos,
            format!("undeclared variable `{name}`"),
        ))
    }

    fn check_block(&mut self, stmts: &[AStmt]) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for s in stmts {
            self.check_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, s: &AStmt) -> Result<(), CompileError> {
        match &s.kind {
            AStmtKind::Decl { ty, name, init } => {
                match init {
                    Some(AInit::Expr(e)) => {
                        let et = self.type_of(e)?;
                        self.check_assignable(*ty, et, e.pos)?;
                    }
                    Some(AInit::NewArray { elem, len }) => {
                        match ty {
                            AType::Array(t) if t == elem => {}
                            _ => {
                                return Err(CompileError::at(
                                    s.pos,
                                    format!("cannot assign new {elem}[] to a {ty} variable"),
                                ))
                            }
                        }
                        self.expect_int(len)?;
                    }
                    None => {}
                }
                self.declare(name, *ty, s.pos)
            }
            AStmtKind::Assign { target, op, value } => {
                let tt = match target {
                    ATarget::Var(n) => self.lookup(n, s.pos)?,
                    ATarget::Elem(n, idx) => {
                        let at = self.lookup(n, s.pos)?;
                        self.expect_int(idx)?;
                        match at {
                            AType::Array(t) => AType::Prim(t),
                            AType::Prim(_) => {
                                return Err(CompileError::at(
                                    s.pos,
                                    format!("`{n}` is not an array"),
                                ))
                            }
                        }
                    }
                };
                let vt = self.type_of(value)?;
                if let Some(op) = op {
                    // Compound: target must be numeric and op arithmetic.
                    match (tt, vt) {
                        (AType::Prim(a), AType::Prim(b)) if a.is_numeric() && b.is_numeric() => {}
                        _ => {
                            return Err(CompileError::at(
                                s.pos,
                                format!("compound `{op:?}=` needs numeric operands"),
                            ))
                        }
                    }
                    Ok(())
                } else {
                    self.check_assignable(tt, vt, value.pos)
                }
            }
            AStmtKind::IncDec { name, .. } => match self.lookup(name, s.pos)? {
                AType::Prim(t) if t.is_integral() => Ok(()),
                other => Err(CompileError::at(
                    s.pos,
                    format!("`++`/`--` needs an integral variable, `{name}` is {other}"),
                )),
            },
            AStmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expect_bool(cond)?;
                self.check_block(then_branch)?;
                self.check_block(else_branch)
            }
            AStmtKind::While { cond, body } => {
                self.expect_bool(cond)?;
                self.loop_depth += 1;
                let r = self.check_block(body);
                self.loop_depth -= 1;
                r
            }
            AStmtKind::For {
                annot,
                init,
                cond,
                update,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.check_stmt(i)?;
                }
                self.expect_bool(cond)?;
                if let Some(u) = update {
                    self.check_stmt(u)?;
                }
                if let Some(a) = annot {
                    self.check_annot(a)?;
                }
                self.loop_depth += 1;
                let r = self.check_block(body);
                self.loop_depth -= 1;
                self.scopes.pop();
                r
            }
            AStmtKind::Return(e) => match (self.func.ret, e) {
                (None, None) => Ok(()),
                (None, Some(_)) => Err(CompileError::at(
                    s.pos,
                    "void function cannot return a value",
                )),
                (Some(_), None) => Err(CompileError::at(
                    s.pos,
                    "non-void function must return a value",
                )),
                (Some(rt), Some(e)) => {
                    let et = self.type_of(e)?;
                    self.check_assignable(AType::Prim(rt), et, e.pos)
                }
            },
            AStmtKind::Break | AStmtKind::Continue => {
                if self.loop_depth == 0 {
                    return Err(CompileError::at(s.pos, "break/continue outside of a loop"));
                }
                Ok(())
            }
            AStmtKind::ExprStmt(e) => {
                // Only calls make sense as statements; allow void calls.
                match &e.kind {
                    AExprKind::Call(name, args) => {
                        self.check_call(name, args, e.pos)?;
                        Ok(())
                    }
                    _ => Err(CompileError::at(
                        e.pos,
                        "only function calls may be used as statements",
                    )),
                }
            }
            AStmtKind::Block(b) => self.check_block(b),
        }
    }

    fn check_annot(&mut self, a: &AAnnot) -> Result<(), CompileError> {
        for (name, pos) in &a.private {
            match self.lookup(name, *pos)? {
                AType::Prim(_) => {}
                AType::Array(_) => {
                    return Err(CompileError::at(
                        *pos,
                        format!("private({name}): arrays cannot be privatized by clause"),
                    ))
                }
            }
        }
        for r in a.copyin.iter().chain(&a.copyout).chain(&a.create) {
            match self.lookup(&r.name, r.pos)? {
                AType::Array(_) => {}
                AType::Prim(_) => {
                    return Err(CompileError::at(
                        r.pos,
                        format!("data clause on `{}` which is not an array", r.name),
                    ))
                }
            }
            if let Some(lo) = &r.lo {
                self.expect_int(lo)?;
            }
            if let Some(hi) = &r.hi {
                self.expect_int(hi)?;
            }
        }
        Ok(())
    }

    fn check_assignable(&self, to: AType, from: AType, pos: Pos) -> Result<(), CompileError> {
        let ok = match (to, from) {
            (AType::Prim(Ty::Bool), AType::Prim(Ty::Bool)) => true,
            (AType::Prim(a), AType::Prim(b)) => a.is_numeric() && b.is_numeric(),
            (AType::Array(a), AType::Array(b)) => a == b,
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(CompileError::at(
                pos,
                format!("cannot assign {from} to {to}"),
            ))
        }
    }

    fn expect_bool(&mut self, e: &AExpr) -> Result<(), CompileError> {
        match self.type_of(e)? {
            AType::Prim(Ty::Bool) => Ok(()),
            other => Err(CompileError::at(
                e.pos,
                format!("expected boolean, found {other}"),
            )),
        }
    }

    fn expect_int(&mut self, e: &AExpr) -> Result<(), CompileError> {
        match self.type_of(e)? {
            AType::Prim(Ty::Int) => Ok(()),
            other => Err(CompileError::at(
                e.pos,
                format!("expected int, found {other}"),
            )),
        }
    }

    fn check_call(
        &mut self,
        name: &str,
        args: &[AExpr],
        pos: Pos,
    ) -> Result<Option<Ty>, CompileError> {
        let (f, ptys) = self
            .sigs
            .get(name)
            .ok_or_else(|| CompileError::at(pos, format!("unknown function `{name}`")))?;
        if args.len() != ptys.len() {
            return Err(CompileError::at(
                pos,
                format!(
                    "`{name}` expects {} argument(s), got {}",
                    ptys.len(),
                    args.len()
                ),
            ));
        }
        for (a, pt) in args.iter().zip(ptys.iter()) {
            let at = self.type_of(a)?;
            self.check_assignable(*pt, at, a.pos)?;
        }
        Ok(f.ret)
    }

    fn type_of(&mut self, e: &AExpr) -> Result<AType, CompileError> {
        let prim = |t| Ok(AType::Prim(t));
        match &e.kind {
            AExprKind::Int(_) => prim(Ty::Int),
            AExprKind::Long(_) => prim(Ty::Long),
            AExprKind::Float(_) => prim(Ty::Float),
            AExprKind::Double(_) => prim(Ty::Double),
            AExprKind::Bool(_) => prim(Ty::Bool),
            AExprKind::Name(n) => self.lookup(n, e.pos),
            AExprKind::Unary(op, a) => {
                let at = self.type_of(a)?;
                match (op, at) {
                    (UnOp::Neg, AType::Prim(t)) if t.is_numeric() => Ok(at),
                    (UnOp::Not, AType::Prim(Ty::Bool)) => Ok(at),
                    (UnOp::BitNot, AType::Prim(t)) if t.is_integral() => Ok(at),
                    _ => Err(CompileError::at(
                        e.pos,
                        format!("operator `{op:?}` cannot apply to {at}"),
                    )),
                }
            }
            AExprKind::Binary(op, a, b) => {
                let at = self.type_of(a)?;
                let bt = self.type_of(b)?;
                let (ta, tb) = match (at, bt) {
                    (AType::Prim(x), AType::Prim(y)) => (x, y),
                    _ => {
                        // Array references only support ==/!=.
                        if matches!(op, BinOp::Eq | BinOp::Ne) && at == bt {
                            return prim(Ty::Bool);
                        }
                        return Err(CompileError::at(
                            e.pos,
                            format!("operator `{op:?}` cannot apply to {at} and {bt}"),
                        ));
                    }
                };
                let err = || {
                    Err(CompileError::at(
                        e.pos,
                        format!("operator `{op:?}` cannot apply to {ta} and {tb}"),
                    ))
                };
                match op {
                    BinOp::LAnd | BinOp::LOr => {
                        if ta == Ty::Bool && tb == Ty::Bool {
                            prim(Ty::Bool)
                        } else {
                            err()
                        }
                    }
                    BinOp::And | BinOp::Or | BinOp::Xor => {
                        if ta == Ty::Bool && tb == Ty::Bool {
                            prim(Ty::Bool)
                        } else if ta.is_integral() && tb.is_integral() {
                            prim(ta.max(tb))
                        } else {
                            err()
                        }
                    }
                    BinOp::Shl | BinOp::Shr | BinOp::UShr => {
                        if ta.is_integral() && tb.is_integral() {
                            prim(ta)
                        } else {
                            err()
                        }
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        if ta.is_numeric() && tb.is_numeric() {
                            prim(Ty::Bool)
                        } else {
                            err()
                        }
                    }
                    BinOp::Eq | BinOp::Ne => {
                        if (ta.is_numeric() && tb.is_numeric())
                            || (ta == Ty::Bool && tb == Ty::Bool)
                        {
                            prim(Ty::Bool)
                        } else {
                            err()
                        }
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                        match Ty::promote(ta, tb) {
                            Some(t) => prim(t),
                            None => err(),
                        }
                    }
                }
            }
            AExprKind::Cast(ty, a) => {
                let at = self.type_of(a)?;
                match at {
                    AType::Prim(t) if t.is_numeric() && ty.is_numeric() => prim(*ty),
                    AType::Prim(Ty::Bool) if *ty == Ty::Bool => prim(Ty::Bool),
                    _ => Err(CompileError::at(
                        e.pos,
                        format!("invalid cast from {at} to {ty}"),
                    )),
                }
            }
            AExprKind::Index(n, idx) => {
                let at = self.lookup(n, e.pos)?;
                self.expect_int(idx)?;
                match at {
                    AType::Array(t) => prim(t),
                    AType::Prim(_) => {
                        Err(CompileError::at(e.pos, format!("`{n}` is not an array")))
                    }
                }
            }
            AExprKind::Length(n) => match self.lookup(n, e.pos)? {
                AType::Array(_) => prim(Ty::Int),
                AType::Prim(_) => Err(CompileError::at(e.pos, format!("`{n}` is not an array"))),
            },
            AExprKind::Math(f, args) => {
                for a in args {
                    match self.type_of(a)? {
                        AType::Prim(t) if t.is_numeric() => {}
                        other => {
                            return Err(CompileError::at(
                                a.pos,
                                format!("Math.{f} needs numeric arguments, found {other}"),
                            ))
                        }
                    }
                }
                use japonica_ir::Intrinsic as I;
                match f {
                    I::Abs | I::Max | I::Min => {
                        // Result type follows promoted argument type.
                        let mut t = Ty::Int;
                        for a in args {
                            if let AType::Prim(at) = self.type_of(a)? {
                                t = t.max(at);
                            }
                        }
                        prim(t)
                    }
                    _ => prim(Ty::Double),
                }
            }
            AExprKind::Call(name, args) => match self.check_call(name, args, e.pos)? {
                Some(t) => prim(t),
                None => Err(CompileError::at(
                    e.pos,
                    format!("void function `{name}` used in an expression"),
                )),
            },
            AExprKind::Ternary(c, t, f) => {
                self.expect_bool(c)?;
                let tt = self.type_of(t)?;
                let ft = self.type_of(f)?;
                match (tt, ft) {
                    (AType::Prim(a), AType::Prim(b)) => match Ty::promote(a, b) {
                        Some(t) => prim(t),
                        None if a == Ty::Bool && b == Ty::Bool => prim(Ty::Bool),
                        None => Err(CompileError::at(
                            e.pos,
                            format!("ternary branches have incompatible types {a} / {b}"),
                        )),
                    },
                    (a, b) if a == b => Ok(a),
                    (a, b) => Err(CompileError::at(
                        e.pos,
                        format!("ternary branches have incompatible types {a} / {b}"),
                    )),
                }
            }
        }
    }
}

/// Conservative "all paths return" analysis.
fn always_returns(stmts: &[AStmt]) -> bool {
    stmts.iter().any(|s| match &s.kind {
        AStmtKind::Return(_) => true,
        AStmtKind::If {
            then_branch,
            else_branch,
            ..
        } => always_returns(then_branch) && always_returns(else_branch),
        AStmtKind::Block(b) => always_returns(b),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn ok(src: &str) {
        let unit = parse(lex(src).unwrap()).unwrap();
        check(&unit).unwrap();
    }

    fn err(src: &str) -> CompileError {
        let unit = parse(lex(src).unwrap()).unwrap();
        check(&unit).unwrap_err()
    }

    #[test]
    fn accepts_well_typed_program() {
        ok(r#"
            static double dot(double[] a, double[] b, int n) {
                double s = 0.0;
                for (int i = 0; i < n; i++) { s += a[i] * b[i]; }
                return s;
            }
        "#);
    }

    #[test]
    fn undeclared_variable() {
        let e = err("static void f() { x = 1; }");
        assert!(e.msg.contains("undeclared"));
    }

    #[test]
    fn duplicate_declaration_in_scope() {
        let e = err("static void f() { int x = 1; int x = 2; }");
        assert!(e.msg.contains("already declared"));
    }

    #[test]
    fn shadowing_in_inner_scope_allowed() {
        ok("static void f() { int x = 1; { int x = 2; } }");
    }

    #[test]
    fn condition_must_be_boolean() {
        let e = err("static void f(int n) { if (n) { } }");
        assert!(e.msg.contains("boolean"));
    }

    #[test]
    fn boolean_never_converts_to_numeric() {
        let e = err("static void f(boolean b) { int x = 0; x = b; }");
        assert!(e.msg.contains("cannot assign"));
    }

    #[test]
    fn array_element_type_checked() {
        let e = err("static void f(int[] a, boolean b) { a[0] = b; }");
        assert!(e.msg.contains("cannot assign"));
    }

    #[test]
    fn array_index_must_be_int() {
        let e = err("static void f(int[] a, double d) { a[d] = 1; }");
        assert!(e.msg.contains("expected int"));
    }

    #[test]
    fn call_arity_and_types() {
        let e = err("static void f() { g(1); } static void g(int a, int b) { }");
        assert!(e.msg.contains("argument"));
        let e = err("static void f(boolean b) { g(b); } static void g(int a) { }");
        assert!(e.msg.contains("cannot assign"));
    }

    #[test]
    fn void_call_in_expression_rejected() {
        let e = err("static void g() { } static void f() { int x = 0; x = g(); }");
        assert!(e.msg.contains("void"));
    }

    #[test]
    fn missing_return_detected() {
        let e = err("static int f(boolean b) { if (b) { return 1; } }");
        assert!(e.msg.contains("without returning"));
        ok("static int f(boolean b) { if (b) { return 1; } else { return 2; } }");
    }

    #[test]
    fn break_outside_loop() {
        let e = err("static void f() { break; }");
        assert!(e.msg.contains("outside"));
    }

    #[test]
    fn annotation_data_clause_must_name_array() {
        let e = err(
            "static void f(int n) { /* acc parallel copyin(n) */ for (int i = 0; i < n; i++) { } }",
        );
        assert!(e.msg.contains("not an array"));
    }

    #[test]
    fn annotation_private_must_name_scalar() {
        let e = err(
            "static void f(int[] a, int n) { /* acc parallel private(a) */ for (int i = 0; i < n; i++) { } }",
        );
        assert!(e.msg.contains("privatized"));
    }

    #[test]
    fn annotation_names_must_be_in_scope() {
        let e = err(
            "static void f(int n) { /* acc parallel copyin(zz) */ for (int i = 0; i < n; i++) { } }",
        );
        assert!(e.msg.contains("undeclared"));
    }

    #[test]
    fn duplicate_function_names() {
        let e = err("static void f() { } static void f() { }");
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn shift_result_keeps_lhs_type() {
        ok("static long f(long x) { return x << 3; }");
    }

    #[test]
    fn array_reference_assignment_requires_same_elem() {
        let e = err("static void f(int[] a, double[] b) { a = b; }");
        assert!(e.msg.contains("cannot assign"));
        ok("static void f(int[] a, int[] b) { a = b; }");
    }

    #[test]
    fn ternary_type_promotion() {
        ok("static double f(boolean b, int i, double d) { return b ? i : d; }");
        let e = err("static int f(boolean b, int i) { return b ? i : b; }");
        assert!(e.msg.contains("incompatible"));
    }

    #[test]
    fn incdec_requires_integral() {
        let e = err("static void f(double d) { d++; }");
        assert!(e.msg.contains("integral"));
    }
}

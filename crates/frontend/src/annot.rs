//! Parser for the OpenACC-style annotation clause grammar (paper Table I).
//!
//! Annotations arrive from the lexer as the raw body of an
//! `/* acc parallel [clause [], clause []...] */` comment. Clause arguments
//! may contain full MiniJava expressions (e.g. `copyin(a[0:n*n])`), which
//! are parsed with the main expression parser.

use crate::ast::AExpr;
use crate::error::{CompileError, Pos};
use crate::lexer;
use crate::parser::Parser;
use crate::token::Tok;
use japonica_ir::Scheme;

/// An `arr[low:high]` (or bare `arr`) argument of a data clause.
#[derive(Debug, Clone, PartialEq)]
pub struct ARange {
    pub name: String,
    pub pos: Pos,
    /// Inclusive lower bound; `None` = 0.
    pub lo: Option<AExpr>,
    /// Exclusive upper bound; `None` = whole array.
    pub hi: Option<AExpr>,
}

/// A parsed loop annotation (paper Table I clauses).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AAnnot {
    pub pos: Pos,
    /// `parallel` clause present.
    pub parallel: bool,
    /// `private(list)` variable names.
    pub private: Vec<(String, Pos)>,
    /// `copyin(list)` ranges.
    pub copyin: Vec<ARange>,
    /// `copyout(list)` ranges.
    pub copyout: Vec<ARange>,
    /// `create(list)` ranges.
    pub create: Vec<ARange>,
    /// `threads(n)` CPU thread count.
    pub threads: Option<u32>,
    /// `scheme(sharing|stealing)`.
    pub scheme: Option<Scheme>,
}

/// Parse the body of an `acc` comment (text starts with `acc`). `pos` is
/// the comment's position (used for the annotation itself and for errors).
pub fn parse_annot(text: &str, pos: Pos) -> Result<AAnnot, CompileError> {
    parse_annot_at(text, pos, pos)
}

/// Like [`parse_annot`], but rebases clause positions onto `body_pos` — the
/// file position where `text` starts — so diagnostics can point into the
/// comment.
pub fn parse_annot_at(text: &str, pos: Pos, body_pos: Pos) -> Result<AAnnot, CompileError> {
    let mut tokens = lexer::lex(text).map_err(|e| CompileError::at(pos, e.msg))?;
    // The body was lexed as its own little source starting at 1:1; shift
    // every token to its real file position.
    for t in &mut tokens {
        t.pos = rebase(t.pos, body_pos);
    }
    let mut p = Parser::new(tokens);
    let mut a = AAnnot {
        pos,
        ..AAnnot::default()
    };
    // Leading `acc`
    match p.bump_tok() {
        Tok::Ident(s) if s == "acc" => {}
        other => {
            return Err(CompileError::at(
                pos,
                format!("annotation must start with `acc`, found `{other}`"),
            ))
        }
    }
    loop {
        let cpos = p.pos();
        match p.bump_tok() {
            Tok::Eof => break,
            Tok::Comma => continue,
            Tok::Ident(name) => match name.as_str() {
                "parallel" => a.parallel = true,
                "private" => {
                    for (n, np) in ident_list(&mut p, cpos)? {
                        a.private.push((n, np));
                    }
                }
                "copyin" => a.copyin.extend(range_list(&mut p, cpos)?),
                "copyout" => a.copyout.extend(range_list(&mut p, cpos)?),
                "create" => a.create.extend(range_list(&mut p, cpos)?),
                "threads" => {
                    p.expect(&Tok::LParen)?;
                    let n = match p.bump_tok() {
                        Tok::IntLit(v) if v > 0 => v as u32,
                        other => {
                            return Err(CompileError::at(
                                cpos,
                                format!("threads(...) needs a positive int, found `{other}`"),
                            ))
                        }
                    };
                    p.expect(&Tok::RParen)?;
                    a.threads = Some(n);
                }
                "scheme" => {
                    p.expect(&Tok::LParen)?;
                    let s = match p.bump_tok() {
                        Tok::Ident(s) if s == "sharing" => Scheme::Sharing,
                        Tok::Ident(s) if s == "stealing" => Scheme::Stealing,
                        other => {
                            return Err(CompileError::at(
                                cpos,
                                format!("scheme must be `sharing` or `stealing`, found `{other}`"),
                            ))
                        }
                    };
                    p.expect(&Tok::RParen)?;
                    a.scheme = Some(s);
                }
                other => {
                    return Err(CompileError::at(
                        cpos,
                        format!("unknown annotation clause `{other}`"),
                    ))
                }
            },
            other => {
                return Err(CompileError::at(
                    cpos,
                    format!("unexpected token `{other}` in annotation"),
                ))
            }
        }
    }
    if !a.parallel {
        return Err(CompileError::at(
            pos,
            "annotation is missing the `parallel` clause",
        ));
    }
    Ok(a)
}

/// Map a position relative to the comment body onto the file.
fn rebase(rel: Pos, body: Pos) -> Pos {
    if rel.line == 1 {
        Pos::new(body.line, body.col + rel.col - 1)
    } else {
        Pos::new(body.line + rel.line - 1, rel.col)
    }
}

fn ident_list(p: &mut Parser, cpos: Pos) -> Result<Vec<(String, Pos)>, CompileError> {
    p.expect(&Tok::LParen)?;
    let mut out = Vec::new();
    loop {
        let ip = p.pos();
        match p.bump_tok() {
            Tok::Ident(s) => out.push((s, ip)),
            other => {
                return Err(CompileError::at(
                    cpos,
                    format!("expected variable name, found `{other}`"),
                ))
            }
        }
        match p.bump_tok() {
            Tok::Comma => continue,
            Tok::RParen => break,
            other => {
                return Err(CompileError::at(
                    cpos,
                    format!("expected `,` or `)`, found `{other}`"),
                ))
            }
        }
    }
    Ok(out)
}

fn range_list(p: &mut Parser, cpos: Pos) -> Result<Vec<ARange>, CompileError> {
    p.expect(&Tok::LParen)?;
    let mut out = Vec::new();
    loop {
        let ip = p.pos();
        let name = match p.bump_tok() {
            Tok::Ident(s) => s,
            other => {
                return Err(CompileError::at(
                    cpos,
                    format!("expected array name, found `{other}`"),
                ))
            }
        };
        let mut lo = None;
        let mut hi = None;
        if p.eat(&Tok::LBracket) {
            lo = Some(p.parse_expr()?);
            p.expect(&Tok::Colon)?;
            hi = Some(p.parse_expr()?);
            p.expect(&Tok::RBracket)?;
        }
        out.push(ARange {
            name,
            pos: ip,
            lo,
            hi,
        });
        match p.bump_tok() {
            Tok::Comma => continue,
            Tok::RParen => break,
            other => {
                return Err(CompileError::at(
                    cpos,
                    format!("expected `,` or `)`, found `{other}`"),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AExprKind;

    fn parse(s: &str) -> AAnnot {
        parse_annot(s, Pos::new(1, 1)).unwrap()
    }

    #[test]
    fn bare_parallel() {
        let a = parse("acc parallel");
        assert!(a.parallel);
        assert!(a.copyin.is_empty());
        assert!(a.threads.is_none());
    }

    #[test]
    fn full_clause_set() {
        let a = parse(
            "acc parallel copyin(a[0:1024], b) copyout(c[1:n]) create(tmp) \
             private(x, y) threads(16) scheme(stealing)",
        );
        assert!(a.parallel);
        assert_eq!(a.copyin.len(), 2);
        assert_eq!(a.copyin[0].name, "a");
        assert!(a.copyin[0].lo.is_some());
        assert!(a.copyin[1].lo.is_none());
        assert_eq!(a.copyout.len(), 1);
        assert_eq!(a.create.len(), 1);
        assert_eq!(
            a.private
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["x", "y"]
        );
        assert_eq!(a.threads, Some(16));
        assert_eq!(a.scheme, Some(Scheme::Stealing));
    }

    #[test]
    fn range_bounds_are_full_expressions() {
        let a = parse("acc parallel copyin(a[0:n*n+1])");
        match &a.copyin[0].hi.as_ref().unwrap().kind {
            AExprKind::Binary(japonica_ir::BinOp::Add, _, _) => {}
            other => panic!("expected add expr, got {other:?}"),
        }
    }

    #[test]
    fn missing_parallel_clause_rejected() {
        assert!(parse_annot("acc copyin(a)", Pos::default()).is_err());
    }

    #[test]
    fn unknown_clause_rejected() {
        let e = parse_annot("acc parallel gang(4)", Pos::default()).unwrap_err();
        assert!(e.msg.contains("gang"));
    }

    #[test]
    fn scheme_validation() {
        assert!(parse_annot("acc parallel scheme(greedy)", Pos::default()).is_err());
        assert_eq!(
            parse("acc parallel scheme(sharing)").scheme,
            Some(Scheme::Sharing)
        );
    }

    #[test]
    fn threads_must_be_positive() {
        assert!(parse_annot("acc parallel threads(0)", Pos::default()).is_err());
    }

    #[test]
    fn comma_separated_clauses_tolerated() {
        // The paper's format shows `clause [], clause []...`
        let a = parse("acc parallel, copyin(a), threads(8)");
        assert!(a.parallel);
        assert_eq!(a.threads, Some(8));
    }
}

//! Token definitions for the MiniJava lexer.

use crate::error::Pos;
use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals
    IntLit(i32),
    LongLit(i64),
    FloatLit(f32),
    DoubleLit(f64),
    BoolLit(bool),
    /// Identifier or non-keyword word.
    Ident(String),
    /// Captured `/* acc ... */` comment body (without the delimiters,
    /// leading `acc` retained), plus the source position where the body
    /// text starts — clause positions are rebased onto it when the body is
    /// re-lexed.
    Annot(String, Pos),

    // Keywords
    KwStatic,
    KwVoid,
    KwBoolean,
    KwInt,
    KwLong,
    KwFloat,
    KwDouble,
    KwIf,
    KwElse,
    KwFor,
    KwWhile,
    KwReturn,
    KwBreak,
    KwContinue,
    KwNew,

    // Punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Colon,
    Question,
    Assign,     // =
    PlusAssign, // +=
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    PlusPlus,
    MinusMinus,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    AmpAmp,
    Pipe,
    PipePipe,
    Caret,
    Bang,
    Tilde,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    Shl,  // <<
    Shr,  // >>
    UShr, // >>>

    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::IntLit(v) => write!(f, "{v}"),
            Tok::LongLit(v) => write!(f, "{v}L"),
            Tok::FloatLit(v) => write!(f, "{v}f"),
            Tok::DoubleLit(v) => write!(f, "{v}"),
            Tok::BoolLit(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Annot(_, _) => write!(f, "/* acc ... */"),
            Tok::KwStatic => write!(f, "static"),
            Tok::KwVoid => write!(f, "void"),
            Tok::KwBoolean => write!(f, "boolean"),
            Tok::KwInt => write!(f, "int"),
            Tok::KwLong => write!(f, "long"),
            Tok::KwFloat => write!(f, "float"),
            Tok::KwDouble => write!(f, "double"),
            Tok::KwIf => write!(f, "if"),
            Tok::KwElse => write!(f, "else"),
            Tok::KwFor => write!(f, "for"),
            Tok::KwWhile => write!(f, "while"),
            Tok::KwReturn => write!(f, "return"),
            Tok::KwBreak => write!(f, "break"),
            Tok::KwContinue => write!(f, "continue"),
            Tok::KwNew => write!(f, "new"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Colon => write!(f, ":"),
            Tok::Question => write!(f, "?"),
            Tok::Assign => write!(f, "="),
            Tok::PlusAssign => write!(f, "+="),
            Tok::MinusAssign => write!(f, "-="),
            Tok::StarAssign => write!(f, "*="),
            Tok::SlashAssign => write!(f, "/="),
            Tok::PercentAssign => write!(f, "%="),
            Tok::PlusPlus => write!(f, "++"),
            Tok::MinusMinus => write!(f, "--"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::Amp => write!(f, "&"),
            Tok::AmpAmp => write!(f, "&&"),
            Tok::Pipe => write!(f, "|"),
            Tok::PipePipe => write!(f, "||"),
            Tok::Caret => write!(f, "^"),
            Tok::Bang => write!(f, "!"),
            Tok::Tilde => write!(f, "~"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::EqEq => write!(f, "=="),
            Tok::Ne => write!(f, "!="),
            Tok::Shl => write!(f, "<<"),
            Tok::Shr => write!(f, ">>"),
            Tok::UShr => write!(f, ">>>"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub pos: Pos,
}

impl Token {
    /// Construct a token.
    pub fn new(tok: Tok, pos: Pos) -> Token {
        Token { tok, pos }
    }
}

//! Hand-written MiniJava lexer.
//!
//! Ordinary `//` and `/* */` comments are skipped; block comments whose body
//! starts with `acc` (optionally after whitespace/`*`) are emitted as
//! [`Tok::Annot`] tokens so the parser can attach them to the following
//! `for` statement (paper §III-B retains JavaR's comment-annotation style).

use crate::error::{CompileError, Pos};
use crate::token::{Tok, Token};

struct Lexer<'s> {
    src: &'s [u8],
    i: usize,
    line: u32,
    col: u32,
}

/// Tokenize MiniJava source text.
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        let t = lx.next_token()?;
        let end = t.tok == Tok::Eof;
        out.push(t);
        if end {
            return Ok(out);
        }
    }
}

impl<'s> Lexer<'s> {
    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn peek3(&self) -> Option<u8> {
        self.src.get(self.i + 2).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<Option<Token>, CompileError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    let body_base = self.pos();
                    let mut body = String::new();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => body.push(self.bump().unwrap() as char),
                            None => {
                                return Err(CompileError::at(start, "unterminated block comment"))
                            }
                        }
                    }
                    // Strip leading decoration and detect `acc` annotations.
                    let trimmed = body
                        .trim_start_matches(|c: char| c.is_whitespace() || c == '*')
                        .trim_end();
                    if trimmed.starts_with("acc")
                        && trimmed[3..]
                            .chars()
                            .next()
                            .is_none_or(|c| c.is_whitespace())
                    {
                        // Where `trimmed` starts in the file: walk the
                        // stripped prefix forward from just after `/*`.
                        let prefix_len = body.find(trimmed).unwrap_or(0);
                        let mut bpos = body_base;
                        for c in body[..prefix_len].chars() {
                            if c == '\n' {
                                bpos.line += 1;
                                bpos.col = 1;
                            } else {
                                bpos.col += 1;
                            }
                        }
                        return Ok(Some(Token::new(
                            Tok::Annot(trimmed.to_string(), bpos),
                            start,
                        )));
                    }
                }
                _ => return Ok(None),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, CompileError> {
        if let Some(annot) = self.skip_trivia()? {
            return Ok(annot);
        }
        let pos = self.pos();
        let c = match self.peek() {
            None => return Ok(Token::new(Tok::Eof, pos)),
            Some(c) => c,
        };
        if c.is_ascii_digit() {
            return self.number(pos);
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            return Ok(self.word(pos));
        }
        self.bump();
        let two = |lx: &mut Lexer, t: Tok| {
            lx.bump();
            t
        };
        let tok = match c {
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b';' => Tok::Semi,
            b',' => Tok::Comma,
            b'.' => Tok::Dot,
            b':' => Tok::Colon,
            b'?' => Tok::Question,
            b'~' => Tok::Tilde,
            b'^' => Tok::Caret,
            b'+' => match self.peek() {
                Some(b'+') => two(self, Tok::PlusPlus),
                Some(b'=') => two(self, Tok::PlusAssign),
                _ => Tok::Plus,
            },
            b'-' => match self.peek() {
                Some(b'-') => two(self, Tok::MinusMinus),
                Some(b'=') => two(self, Tok::MinusAssign),
                _ => Tok::Minus,
            },
            b'*' => match self.peek() {
                Some(b'=') => two(self, Tok::StarAssign),
                _ => Tok::Star,
            },
            b'/' => match self.peek() {
                Some(b'=') => two(self, Tok::SlashAssign),
                _ => Tok::Slash,
            },
            b'%' => match self.peek() {
                Some(b'=') => two(self, Tok::PercentAssign),
                _ => Tok::Percent,
            },
            b'&' => match self.peek() {
                Some(b'&') => two(self, Tok::AmpAmp),
                _ => Tok::Amp,
            },
            b'|' => match self.peek() {
                Some(b'|') => two(self, Tok::PipePipe),
                _ => Tok::Pipe,
            },
            b'!' => match self.peek() {
                Some(b'=') => two(self, Tok::Ne),
                _ => Tok::Bang,
            },
            b'=' => match self.peek() {
                Some(b'=') => two(self, Tok::EqEq),
                _ => Tok::Assign,
            },
            b'<' => match self.peek() {
                Some(b'=') => two(self, Tok::Le),
                Some(b'<') => two(self, Tok::Shl),
                _ => Tok::Lt,
            },
            b'>' => match self.peek() {
                Some(b'=') => two(self, Tok::Ge),
                Some(b'>') => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        Tok::UShr
                    } else {
                        Tok::Shr
                    }
                }
                _ => Tok::Gt,
            },
            other => {
                return Err(CompileError::at(
                    pos,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        };
        Ok(Token::new(tok, pos))
    }

    fn word(&mut self, pos: Pos) -> Token {
        let start = self.i;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.src[start..self.i]).unwrap();
        let tok = match s {
            "static" => Tok::KwStatic,
            "void" => Tok::KwVoid,
            "boolean" => Tok::KwBoolean,
            "int" => Tok::KwInt,
            "long" => Tok::KwLong,
            "float" => Tok::KwFloat,
            "double" => Tok::KwDouble,
            "if" => Tok::KwIf,
            "else" => Tok::KwElse,
            "for" => Tok::KwFor,
            "while" => Tok::KwWhile,
            "return" => Tok::KwReturn,
            "break" => Tok::KwBreak,
            "continue" => Tok::KwContinue,
            "new" => Tok::KwNew,
            "true" => Tok::BoolLit(true),
            "false" => Tok::BoolLit(false),
            _ => Tok::Ident(s.to_string()),
        };
        Token::new(tok, pos)
    }

    fn number(&mut self, pos: Pos) -> Result<Token, CompileError> {
        let start = self.i;
        // Hex literal
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let hstart = self.i;
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() {
                    self.bump();
                } else {
                    break;
                }
            }
            let digits = std::str::from_utf8(&self.src[hstart..self.i]).unwrap();
            if digits.is_empty() {
                return Err(CompileError::at(pos, "empty hex literal"));
            }
            if matches!(self.peek(), Some(b'l') | Some(b'L')) {
                self.bump();
                let v = u64::from_str_radix(digits, 16)
                    .map_err(|_| CompileError::at(pos, "hex literal too large for long"))?;
                return Ok(Token::new(Tok::LongLit(v as i64), pos));
            }
            let v = u32::from_str_radix(digits, 16)
                .map_err(|_| CompileError::at(pos, "hex literal too large for int"))?;
            return Ok(Token::new(Tok::IntLit(v as i32), pos));
        }

        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.bump();
            } else if c == b'.' && self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                self.bump();
            } else if (c == b'e' || c == b'E')
                && (self.peek2().is_some_and(|d| d.is_ascii_digit())
                    || (matches!(self.peek2(), Some(b'+') | Some(b'-'))
                        && self.peek3().is_some_and(|d| d.is_ascii_digit())))
            {
                is_float = true;
                self.bump();
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.i]).unwrap();
        match self.peek() {
            Some(b'f') | Some(b'F') => {
                self.bump();
                let v: f32 = text
                    .parse()
                    .map_err(|_| CompileError::at(pos, "malformed float literal"))?;
                Ok(Token::new(Tok::FloatLit(v), pos))
            }
            Some(b'l') | Some(b'L') if !is_float => {
                self.bump();
                let v: i64 = text
                    .parse()
                    .map_err(|_| CompileError::at(pos, "malformed long literal"))?;
                Ok(Token::new(Tok::LongLit(v), pos))
            }
            Some(b'd') | Some(b'D') => {
                self.bump();
                let v: f64 = text
                    .parse()
                    .map_err(|_| CompileError::at(pos, "malformed double literal"))?;
                Ok(Token::new(Tok::DoubleLit(v), pos))
            }
            _ if is_float => {
                let v: f64 = text
                    .parse()
                    .map_err(|_| CompileError::at(pos, "malformed double literal"))?;
                Ok(Token::new(Tok::DoubleLit(v), pos))
            }
            _ => {
                let v: i64 = text
                    .parse()
                    .map_err(|_| CompileError::at(pos, "malformed int literal"))?;
                if v > i32::MAX as i64 {
                    return Err(CompileError::at(
                        pos,
                        "int literal overflows; use an L suffix",
                    ));
                }
                Ok(Token::new(Tok::IntLit(v as i32), pos))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("static int foo"),
            vec![
                Tok::KwStatic,
                Tok::KwInt,
                Tok::Ident("foo".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(
            toks("42 42L 1.5 2.5f 1e3 0x1F 0xffL 3d"),
            vec![
                Tok::IntLit(42),
                Tok::LongLit(42),
                Tok::DoubleLit(1.5),
                Tok::FloatLit(2.5),
                Tok::DoubleLit(1000.0),
                Tok::IntLit(31),
                Tok::LongLit(255),
                Tok::DoubleLit(3.0),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn int_literal_overflow_is_reported() {
        assert!(lex("2147483648").is_err());
        assert_eq!(toks("2147483647")[0], Tok::IntLit(i32::MAX));
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("a >>> b >> c << d <= e == f != g && h || i += j ++"),
            vec![
                Tok::Ident("a".into()),
                Tok::UShr,
                Tok::Ident("b".into()),
                Tok::Shr,
                Tok::Ident("c".into()),
                Tok::Shl,
                Tok::Ident("d".into()),
                Tok::Le,
                Tok::Ident("e".into()),
                Tok::EqEq,
                Tok::Ident("f".into()),
                Tok::Ne,
                Tok::Ident("g".into()),
                Tok::AmpAmp,
                Tok::Ident("h".into()),
                Tok::PipePipe,
                Tok::Ident("i".into()),
                Tok::PlusAssign,
                Tok::Ident("j".into()),
                Tok::PlusPlus,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn plain_comments_are_skipped() {
        assert_eq!(
            toks("a // line\n /* block */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn acc_comment_becomes_annotation_token() {
        let ts = toks("/* acc parallel copyin(a[0:10]) */ for");
        assert_eq!(ts.len(), 3);
        match &ts[0] {
            Tok::Annot(s, body_pos) => {
                assert_eq!(s, "acc parallel copyin(a[0:10])");
                // the body text starts after "/* " at column 4
                assert_eq!(*body_pos, Pos::new(1, 4));
            }
            other => panic!("expected annot, got {other:?}"),
        }
        assert_eq!(ts[1], Tok::KwFor);
    }

    #[test]
    fn acc_prefix_requires_word_boundary() {
        // "/* accelerate */" is an ordinary comment, not an annotation
        assert_eq!(
            toks("/* accelerate */ x"),
            vec![Tok::Ident("x".into()), Tok::Eof]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* acc parallel").is_err());
    }

    #[test]
    fn positions_track_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos::new(1, 1));
        assert_eq!(ts[1].pos, Pos::new(2, 3));
    }

    #[test]
    fn field_access_tokens() {
        assert_eq!(
            toks("a.length"),
            vec![
                Tok::Ident("a".into()),
                Tok::Dot,
                Tok::Ident("length".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn unexpected_char_reports_position() {
        let err = lex("a @").unwrap_err();
        assert_eq!(err.pos, Pos::new(1, 3));
    }
}

//! Recursive-descent parser for MiniJava.

use crate::annot::AAnnot;
use crate::ast::*;
use crate::error::{CompileError, Pos};
use crate::token::{Tok, Token};
use japonica_ir::{BinOp, Intrinsic, Ty, UnOp};

/// Parse a token stream into a compilation [`Unit`].
pub fn parse(tokens: Vec<Token>) -> Result<Unit, CompileError> {
    let mut p = Parser::new(tokens);
    let mut unit = Unit::default();
    while !p.at(&Tok::Eof) {
        unit.functions.push(p.parse_function()?);
    }
    if unit.functions.is_empty() {
        return Err(CompileError::at(p.pos(), "empty compilation unit"));
    }
    Ok(unit)
}

/// The parser state. Exposed crate-internally so the annotation grammar can
/// reuse the expression parser.
pub(crate) struct Parser {
    tokens: Vec<Token>,
    i: usize,
}

impl Parser {
    pub(crate) fn new(tokens: Vec<Token>) -> Parser {
        Parser { tokens, i: 0 }
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.i.min(self.tokens.len() - 1)].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        &self.tokens[(self.i + n).min(self.tokens.len() - 1)].tok
    }

    pub(crate) fn pos(&self) -> Pos {
        self.tokens[self.i.min(self.tokens.len() - 1)].pos
    }

    pub(crate) fn bump_tok(&mut self) -> Tok {
        let t = self.tokens[self.i.min(self.tokens.len() - 1)].tok.clone();
        if self.i < self.tokens.len() - 1 {
            self.i += 1;
        }
        t
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    pub(crate) fn eat(&mut self, t: &Tok) -> bool {
        if self.at(t) {
            self.bump_tok();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect(&mut self, t: &Tok) -> Result<(), CompileError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(CompileError::at(
                self.pos(),
                format!("expected `{t}`, found `{}`", self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Pos), CompileError> {
        let pos = self.pos();
        match self.bump_tok() {
            Tok::Ident(s) => Ok((s, pos)),
            other => Err(CompileError::at(
                pos,
                format!("expected identifier, found `{other}`"),
            )),
        }
    }

    fn prim_ty(tok: &Tok) -> Option<Ty> {
        Some(match tok {
            Tok::KwBoolean => Ty::Bool,
            Tok::KwInt => Ty::Int,
            Tok::KwLong => Ty::Long,
            Tok::KwFloat => Ty::Float,
            Tok::KwDouble => Ty::Double,
            _ => return None,
        })
    }

    fn parse_type(&mut self) -> Result<AType, CompileError> {
        let pos = self.pos();
        let t = self.bump_tok();
        let prim = Self::prim_ty(&t)
            .ok_or_else(|| CompileError::at(pos, format!("expected a type, found `{t}`")))?;
        if self.eat(&Tok::LBracket) {
            self.expect(&Tok::RBracket)?;
            Ok(AType::Array(prim))
        } else {
            Ok(AType::Prim(prim))
        }
    }

    fn parse_function(&mut self) -> Result<AFunction, CompileError> {
        let pos = self.pos();
        self.expect(&Tok::KwStatic)?;
        let ret = if self.eat(&Tok::KwVoid) {
            None
        } else {
            match self.parse_type()? {
                AType::Prim(t) => Some(t),
                AType::Array(_) => {
                    return Err(CompileError::at(
                        pos,
                        "array return types are not supported",
                    ))
                }
            }
        };
        let (name, _) = self.expect_ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.at(&Tok::RParen) {
            loop {
                let ty = self.parse_type()?;
                let (pname, ppos) = self.expect_ident()?;
                params.push((ty, pname, ppos));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let body = self.parse_block()?;
        Ok(AFunction {
            name,
            pos,
            params,
            ret,
            body,
        })
    }

    fn parse_block(&mut self) -> Result<Vec<AStmt>, CompileError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&Tok::RBrace) {
            if self.at(&Tok::Eof) {
                return Err(CompileError::at(self.pos(), "unterminated block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(stmts)
    }

    /// A statement body: either a single statement or a braced block,
    /// normalized to a statement list.
    fn parse_body(&mut self) -> Result<Vec<AStmt>, CompileError> {
        if self.at(&Tok::LBrace) {
            self.parse_block()
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_stmt(&mut self) -> Result<AStmt, CompileError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Annot(text, body_pos) => {
                self.bump_tok();
                let annot = crate::annot::parse_annot_at(&text, pos, body_pos)?;
                if !self.at(&Tok::KwFor) {
                    return Err(CompileError::at(
                        pos,
                        "an /* acc ... */ annotation must be followed by a `for` loop",
                    ));
                }
                self.parse_for(Some(annot))
            }
            Tok::LBrace => Ok(AStmt::new(AStmtKind::Block(self.parse_block()?), pos)),
            Tok::KwIf => {
                self.bump_tok();
                self.expect(&Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                let then_branch = self.parse_body()?;
                let else_branch = if self.eat(&Tok::KwElse) {
                    self.parse_body()?
                } else {
                    vec![]
                };
                Ok(AStmt::new(
                    AStmtKind::If {
                        cond,
                        then_branch,
                        else_branch,
                    },
                    pos,
                ))
            }
            Tok::KwWhile => {
                self.bump_tok();
                self.expect(&Tok::LParen)?;
                let cond = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                let body = self.parse_body()?;
                Ok(AStmt::new(AStmtKind::While { cond, body }, pos))
            }
            Tok::KwFor => self.parse_for(None),
            Tok::KwReturn => {
                self.bump_tok();
                let e = if self.at(&Tok::Semi) {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(&Tok::Semi)?;
                Ok(AStmt::new(AStmtKind::Return(e), pos))
            }
            Tok::KwBreak => {
                self.bump_tok();
                self.expect(&Tok::Semi)?;
                Ok(AStmt::new(AStmtKind::Break, pos))
            }
            Tok::KwContinue => {
                self.bump_tok();
                self.expect(&Tok::Semi)?;
                Ok(AStmt::new(AStmtKind::Continue, pos))
            }
            t if Self::prim_ty(&t).is_some() => {
                let s = self.parse_decl()?;
                self.expect(&Tok::Semi)?;
                Ok(s)
            }
            _ => {
                let s = self.parse_simple_stmt()?;
                self.expect(&Tok::Semi)?;
                Ok(s)
            }
        }
    }

    /// A declaration without the trailing `;` (shared with for-init).
    fn parse_decl(&mut self) -> Result<AStmt, CompileError> {
        let pos = self.pos();
        let ty = self.parse_type()?;
        let (name, _) = self.expect_ident()?;
        let init = if self.eat(&Tok::Assign) {
            if self.at(&Tok::KwNew) {
                self.bump_tok();
                let tpos = self.pos();
                let t = self.bump_tok();
                let elem = Self::prim_ty(&t).ok_or_else(|| {
                    CompileError::at(
                        tpos,
                        format!("expected element type after new, found `{t}`"),
                    )
                })?;
                self.expect(&Tok::LBracket)?;
                let len = self.parse_expr()?;
                self.expect(&Tok::RBracket)?;
                Some(AInit::NewArray { elem, len })
            } else {
                Some(AInit::Expr(self.parse_expr()?))
            }
        } else {
            None
        };
        Ok(AStmt::new(AStmtKind::Decl { ty, name, init }, pos))
    }

    /// Assignment / compound assignment / inc-dec / expression statement,
    /// without the trailing `;` (shared with for-init / for-update).
    fn parse_simple_stmt(&mut self) -> Result<AStmt, CompileError> {
        let pos = self.pos();
        // name[...]= / name = / name op= / name++ / expr-stmt
        if let Tok::Ident(name) = self.peek().clone() {
            match self.peek_at(1) {
                Tok::Assign => {
                    self.bump_tok();
                    self.bump_tok();
                    let value = self.parse_expr()?;
                    return Ok(AStmt::new(
                        AStmtKind::Assign {
                            target: ATarget::Var(name),
                            op: None,
                            value,
                        },
                        pos,
                    ));
                }
                Tok::PlusAssign
                | Tok::MinusAssign
                | Tok::StarAssign
                | Tok::SlashAssign
                | Tok::PercentAssign => {
                    self.bump_tok();
                    let op = match self.bump_tok() {
                        Tok::PlusAssign => BinOp::Add,
                        Tok::MinusAssign => BinOp::Sub,
                        Tok::StarAssign => BinOp::Mul,
                        Tok::SlashAssign => BinOp::Div,
                        Tok::PercentAssign => BinOp::Rem,
                        _ => unreachable!(),
                    };
                    let value = self.parse_expr()?;
                    return Ok(AStmt::new(
                        AStmtKind::Assign {
                            target: ATarget::Var(name),
                            op: Some(op),
                            value,
                        },
                        pos,
                    ));
                }
                Tok::PlusPlus | Tok::MinusMinus => {
                    self.bump_tok();
                    let inc = self.bump_tok() == Tok::PlusPlus;
                    return Ok(AStmt::new(AStmtKind::IncDec { name, inc }, pos));
                }
                Tok::LBracket => {
                    // Could be `a[i] = v`, `a[i] += v`, or an expression
                    // starting with an index. Parse the index, then decide.
                    let save = self.i;
                    self.bump_tok();
                    self.bump_tok();
                    let idx = self.parse_expr()?;
                    self.expect(&Tok::RBracket)?;
                    match self.peek() {
                        Tok::Assign => {
                            self.bump_tok();
                            let value = self.parse_expr()?;
                            return Ok(AStmt::new(
                                AStmtKind::Assign {
                                    target: ATarget::Elem(name, idx),
                                    op: None,
                                    value,
                                },
                                pos,
                            ));
                        }
                        Tok::PlusAssign
                        | Tok::MinusAssign
                        | Tok::StarAssign
                        | Tok::SlashAssign
                        | Tok::PercentAssign => {
                            let op = match self.bump_tok() {
                                Tok::PlusAssign => BinOp::Add,
                                Tok::MinusAssign => BinOp::Sub,
                                Tok::StarAssign => BinOp::Mul,
                                Tok::SlashAssign => BinOp::Div,
                                Tok::PercentAssign => BinOp::Rem,
                                _ => unreachable!(),
                            };
                            let value = self.parse_expr()?;
                            return Ok(AStmt::new(
                                AStmtKind::Assign {
                                    target: ATarget::Elem(name, idx),
                                    op: Some(op),
                                    value,
                                },
                                pos,
                            ));
                        }
                        _ => {
                            // Not an element assignment: re-parse as expr.
                            self.i = save;
                        }
                    }
                }
                _ => {}
            }
        }
        let e = self.parse_expr()?;
        Ok(AStmt::new(AStmtKind::ExprStmt(e), pos))
    }

    fn parse_for(&mut self, annot: Option<AAnnot>) -> Result<AStmt, CompileError> {
        let pos = self.pos();
        self.expect(&Tok::KwFor)?;
        self.expect(&Tok::LParen)?;
        let init = if self.at(&Tok::Semi) {
            None
        } else if Self::prim_ty(self.peek()).is_some() {
            Some(Box::new(self.parse_decl()?))
        } else {
            Some(Box::new(self.parse_simple_stmt()?))
        };
        self.expect(&Tok::Semi)?;
        let cond = self.parse_expr()?;
        self.expect(&Tok::Semi)?;
        let update = if self.at(&Tok::RParen) {
            None
        } else {
            Some(Box::new(self.parse_simple_stmt()?))
        };
        self.expect(&Tok::RParen)?;
        let body = self.parse_body()?;
        Ok(AStmt::new(
            AStmtKind::For {
                annot,
                init,
                cond,
                update,
                body,
            },
            pos,
        ))
    }

    // ---- expressions -----------------------------------------------------

    pub(crate) fn parse_expr(&mut self) -> Result<AExpr, CompileError> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<AExpr, CompileError> {
        let cond = self.parse_binary(0)?;
        if self.eat(&Tok::Question) {
            let pos = cond.pos;
            let t = self.parse_expr()?;
            self.expect(&Tok::Colon)?;
            let e = self.parse_ternary()?;
            return Ok(AExpr::new(
                AExprKind::Ternary(Box::new(cond), Box::new(t), Box::new(e)),
                pos,
            ));
        }
        Ok(cond)
    }

    fn bin_op_at(&self, level: usize) -> Option<BinOp> {
        let op = match (level, self.peek()) {
            (0, Tok::PipePipe) => BinOp::LOr,
            (1, Tok::AmpAmp) => BinOp::LAnd,
            (2, Tok::Pipe) => BinOp::Or,
            (3, Tok::Caret) => BinOp::Xor,
            (4, Tok::Amp) => BinOp::And,
            (5, Tok::EqEq) => BinOp::Eq,
            (5, Tok::Ne) => BinOp::Ne,
            (6, Tok::Lt) => BinOp::Lt,
            (6, Tok::Le) => BinOp::Le,
            (6, Tok::Gt) => BinOp::Gt,
            (6, Tok::Ge) => BinOp::Ge,
            (7, Tok::Shl) => BinOp::Shl,
            (7, Tok::Shr) => BinOp::Shr,
            (7, Tok::UShr) => BinOp::UShr,
            (8, Tok::Plus) => BinOp::Add,
            (8, Tok::Minus) => BinOp::Sub,
            (9, Tok::Star) => BinOp::Mul,
            (9, Tok::Slash) => BinOp::Div,
            (9, Tok::Percent) => BinOp::Rem,
            _ => return None,
        };
        Some(op)
    }

    fn parse_binary(&mut self, level: usize) -> Result<AExpr, CompileError> {
        if level > 9 {
            return self.parse_unary();
        }
        let mut lhs = self.parse_binary(level + 1)?;
        while let Some(op) = self.bin_op_at(level) {
            self.bump_tok();
            let rhs = self.parse_binary(level + 1)?;
            let pos = lhs.pos;
            lhs = AExpr::new(AExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), pos);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<AExpr, CompileError> {
        let pos = self.pos();
        match self.peek() {
            Tok::Minus => {
                self.bump_tok();
                let e = self.parse_unary()?;
                Ok(AExpr::new(AExprKind::Unary(UnOp::Neg, Box::new(e)), pos))
            }
            Tok::Bang => {
                self.bump_tok();
                let e = self.parse_unary()?;
                Ok(AExpr::new(AExprKind::Unary(UnOp::Not, Box::new(e)), pos))
            }
            Tok::Tilde => {
                self.bump_tok();
                let e = self.parse_unary()?;
                Ok(AExpr::new(AExprKind::Unary(UnOp::BitNot, Box::new(e)), pos))
            }
            // Cast: `(` prim `)` unary
            Tok::LParen
                if Self::prim_ty(self.peek_at(1)).is_some() && *self.peek_at(2) == Tok::RParen =>
            {
                self.bump_tok();
                let ty = Self::prim_ty(&self.bump_tok()).unwrap();
                self.bump_tok();
                let e = self.parse_unary()?;
                Ok(AExpr::new(AExprKind::Cast(ty, Box::new(e)), pos))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_args(&mut self) -> Result<Vec<AExpr>, CompileError> {
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if !self.at(&Tok::RParen) {
            loop {
                args.push(self.parse_expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(args)
    }

    fn parse_primary(&mut self) -> Result<AExpr, CompileError> {
        let pos = self.pos();
        match self.bump_tok() {
            Tok::IntLit(v) => Ok(AExpr::new(AExprKind::Int(v), pos)),
            Tok::LongLit(v) => Ok(AExpr::new(AExprKind::Long(v), pos)),
            Tok::FloatLit(v) => Ok(AExpr::new(AExprKind::Float(v), pos)),
            Tok::DoubleLit(v) => Ok(AExpr::new(AExprKind::Double(v), pos)),
            Tok::BoolLit(v) => Ok(AExpr::new(AExprKind::Bool(v), pos)),
            Tok::LParen => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) if name == "Math" && self.at(&Tok::Dot) => {
                self.bump_tok();
                let (mname, mpos) = self.expect_ident()?;
                let f = Intrinsic::from_name(&mname).ok_or_else(|| {
                    CompileError::at(mpos, format!("unknown Math method `{mname}`"))
                })?;
                let args = self.parse_args()?;
                if args.len() != f.arity() {
                    return Err(CompileError::at(
                        mpos,
                        format!("{f} expects {} argument(s), got {}", f.arity(), args.len()),
                    ));
                }
                Ok(AExpr::new(AExprKind::Math(f, args), pos))
            }
            Tok::Ident(name) => {
                if self.at(&Tok::LParen) {
                    let args = self.parse_args()?;
                    return Ok(AExpr::new(AExprKind::Call(name, args), pos));
                }
                if self.at(&Tok::LBracket) {
                    self.bump_tok();
                    let idx = self.parse_expr()?;
                    self.expect(&Tok::RBracket)?;
                    return Ok(AExpr::new(AExprKind::Index(name, Box::new(idx)), pos));
                }
                if self.at(&Tok::Dot) {
                    self.bump_tok();
                    let (field, fpos) = self.expect_ident()?;
                    if field != "length" {
                        return Err(CompileError::at(
                            fpos,
                            format!("only `.length` is supported, found `.{field}`"),
                        ));
                    }
                    return Ok(AExpr::new(AExprKind::Length(name), pos));
                }
                Ok(AExpr::new(AExprKind::Name(name), pos))
            }
            other => Err(CompileError::at(
                pos,
                format!("unexpected token `{other}` in expression"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Unit {
        parse(lex(src).unwrap()).unwrap()
    }

    fn parse_err(src: &str) -> CompileError {
        parse(lex(src).unwrap()).unwrap_err()
    }

    #[test]
    fn minimal_function() {
        let u = parse_src("static void f() { }");
        assert_eq!(u.functions.len(), 1);
        assert_eq!(u.functions[0].name, "f");
        assert!(u.functions[0].ret.is_none());
        assert!(u.functions[0].body.is_empty());
    }

    #[test]
    fn params_and_return_type() {
        let u = parse_src("static double f(int n, double[] a) { return a[n]; }");
        let f = &u.functions[0];
        assert_eq!(f.ret, Some(Ty::Double));
        assert_eq!(f.params[0].0, AType::Prim(Ty::Int));
        assert_eq!(f.params[1].0, AType::Array(Ty::Double));
    }

    #[test]
    fn precedence_mul_over_add() {
        let u = parse_src("static int f(int a, int b, int c) { return a + b * c; }");
        match &u.functions[0].body[0].kind {
            AStmtKind::Return(Some(e)) => match &e.kind {
                AExprKind::Binary(BinOp::Add, _, rhs) => {
                    assert!(matches!(rhs.kind, AExprKind::Binary(BinOp::Mul, _, _)));
                }
                other => panic!("bad tree {other:?}"),
            },
            other => panic!("bad stmt {other:?}"),
        }
    }

    #[test]
    fn cast_vs_paren() {
        let u = parse_src("static double f(int a) { return (double) a + (a); }");
        match &u.functions[0].body[0].kind {
            AStmtKind::Return(Some(e)) => match &e.kind {
                AExprKind::Binary(BinOp::Add, lhs, _) => {
                    assert!(matches!(lhs.kind, AExprKind::Cast(Ty::Double, _)));
                }
                other => panic!("bad tree {other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn annotated_for_loop() {
        let u = parse_src(
            r#"static void f(double[] a, int n) {
                /* acc parallel copyin(a[0:n]) */
                for (int i = 0; i < n; i = i + 1) { a[i] = 0.0; }
            }"#,
        );
        match &u.functions[0].body[0].kind {
            AStmtKind::For { annot: Some(a), .. } => {
                assert!(a.parallel);
                assert_eq!(a.copyin.len(), 1);
            }
            other => panic!("expected annotated for, got {other:?}"),
        }
    }

    #[test]
    fn annotation_not_on_for_is_error() {
        let e = parse_err("static void f() { /* acc parallel */ int x = 0; }");
        assert!(e.msg.contains("for"));
    }

    #[test]
    fn for_update_variants() {
        for upd in ["i = i + 1", "i += 1", "i++"] {
            let src = format!("static void f(int n) {{ for (int i = 0; i < n; {upd}) {{ }} }}");
            parse_src(&src);
        }
    }

    #[test]
    fn compound_element_assignment() {
        let u = parse_src("static void f(int[] a) { a[0] += 2; }");
        match &u.functions[0].body[0].kind {
            AStmtKind::Assign {
                target: ATarget::Elem(n, _),
                op: Some(BinOp::Add),
                ..
            } => assert_eq!(n, "a"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn math_intrinsic_arity_checked() {
        let e = parse_err("static double f() { return Math.pow(2.0); }");
        assert!(e.msg.contains("argument"));
    }

    #[test]
    fn length_access() {
        let u = parse_src("static int f(int[] a) { return a.length; }");
        match &u.functions[0].body[0].kind {
            AStmtKind::Return(Some(e)) => {
                assert!(matches!(&e.kind, AExprKind::Length(n) if n == "a"))
            }
            _ => panic!(),
        }
    }

    #[test]
    fn new_array_decl() {
        let u = parse_src("static void f(int n) { double[] t = new double[n * 2]; }");
        match &u.functions[0].body[0].kind {
            AStmtKind::Decl {
                init: Some(AInit::NewArray { elem, .. }),
                ..
            } => assert_eq!(*elem, Ty::Double),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ternary_parses_right_associative() {
        let u = parse_src("static int f(boolean b) { return b ? 1 : b ? 2 : 3; }");
        match &u.functions[0].body[0].kind {
            AStmtKind::Return(Some(e)) => {
                assert!(matches!(e.kind, AExprKind::Ternary(_, _, _)))
            }
            _ => panic!(),
        }
    }

    #[test]
    fn dangling_else_binds_inner() {
        let u = parse_src(
            "static void f(boolean a, boolean b, int[] x) {
                if (a) if (b) x[0] = 1; else x[0] = 2;
            }",
        );
        match &u.functions[0].body[0].kind {
            AStmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                assert!(else_branch.is_empty());
                match &then_branch[0].kind {
                    AStmtKind::If { else_branch, .. } => assert_eq!(else_branch.len(), 1),
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn call_statement() {
        let u = parse_src("static void f() { g(1, 2); } static void g(int a, int b) { }");
        assert!(matches!(
            &u.functions[0].body[0].kind,
            AStmtKind::ExprStmt(e) if matches!(&e.kind, AExprKind::Call(n, args) if n == "g" && args.len() == 2)
        ));
    }

    #[test]
    fn missing_semicolon_reports_position() {
        let e = parse_err("static void f() { int x = 1 }");
        assert!(e.msg.contains("expected `;`"), "{}", e.msg);
    }

    #[test]
    fn shift_precedence_below_relational() {
        // a << b < c parses as (a << b) < c
        let u = parse_src("static boolean f(int a, int b, int c) { return a << b < c; }");
        match &u.functions[0].body[0].kind {
            AStmtKind::Return(Some(e)) => match &e.kind {
                AExprKind::Binary(BinOp::Lt, lhs, _) => {
                    assert!(matches!(lhs.kind, AExprKind::Binary(BinOp::Shl, _, _)));
                }
                other => panic!("{other:?}"),
            },
            _ => panic!(),
        }
    }
}

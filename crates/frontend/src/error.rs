//! Compile-time diagnostics.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl Pos {
    /// Construct a position.
    pub fn new(line: u32, col: u32) -> Pos {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A compilation error with source location.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// Where the error was detected.
    pub pos: Pos,
    /// Human-readable message.
    pub msg: String,
}

impl CompileError {
    /// Construct an error at `pos`.
    pub fn at(pos: Pos, msg: impl Into<String>) -> CompileError {
        CompileError {
            pos,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = CompileError::at(Pos::new(3, 7), "unexpected token");
        assert_eq!(e.to_string(), "error at 3:7: unexpected token");
    }
}

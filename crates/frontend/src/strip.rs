//! Source-to-source removal of `/* acc ... */` annotation comments.
//!
//! The auto-parallelizer's corpus is the hand-annotated Table II sources
//! with every annotation stripped; keeping the stripper next to the lexer
//! guarantees the two agree on what counts as an annotation comment (a
//! block comment whose body starts with the word `acc`).

/// Remove every `/* acc ... */` annotation comment from `src`, leaving all
/// other text (including ordinary comments) byte-identical. A line that
/// held nothing but an annotation is removed entirely, so the stripped
/// source reads like it was written without annotations. Line comments and
/// non-annotation block comments pass through untouched.
pub fn strip_acc_annotations(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < src.len() {
        let Some(rel) = src[i..].find('/') else {
            out.push_str(&src[i..]);
            break;
        };
        let j = i + rel;
        out.push_str(&src[i..j]);
        i = j;
        if src[i..].starts_with("//") {
            // Line comment: copy verbatim up to (not including) the newline.
            let end = src[i..].find('\n').map_or(src.len(), |k| i + k);
            out.push_str(&src[i..end]);
            i = end;
        } else if src[i..].starts_with("/*") {
            let body_start = i + 2;
            let (body, end) = match src[body_start..].find("*/") {
                Some(k) => (&src[body_start..body_start + k], body_start + k + 2),
                None => (&src[body_start..], src.len()),
            };
            let t = body.trim_start();
            let is_acc = t.starts_with("acc")
                && t[3..]
                    .chars()
                    .next()
                    .is_none_or(|c| !c.is_alphanumeric() && c != '_');
            if is_acc {
                // Drop the comment. When the line held nothing else, drop
                // the whole line: rewind the output to the line start and
                // skip the trailing blank remainder plus its newline.
                let line_start = out.rfind('\n').map_or(0, |k| k + 1);
                let prefix_blank = out[line_start..].chars().all(|c| c == ' ' || c == '\t');
                let rest = &src[end..];
                let nl = rest.find('\n');
                let rest_blank = nl.map_or(rest, |k| &rest[..k]).trim().is_empty();
                if prefix_blank && rest_blank {
                    out.truncate(line_start);
                    i = nl.map_or(src.len(), |k| end + k + 1);
                } else {
                    i = end;
                }
            } else {
                out.push_str(&src[i..end]);
                i = end;
            }
        } else {
            out.push('/');
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_only_lines_disappear() {
        let src = "static void f(double[] a, int n) {\n    /* acc parallel copyin(a[0:n]) */\n    for (int i = 0; i < n; i++) { a[i] = 0.0; }\n}\n";
        let bare = strip_acc_annotations(src);
        assert!(!bare.contains("acc"));
        assert_eq!(bare.lines().count(), src.lines().count() - 1);
        assert!(bare.contains("for (int i = 0; i < n; i++)"));
    }

    #[test]
    fn ordinary_comments_and_code_survive_byte_identical() {
        let src =
            "// keep me\nint x = 1 / 2; /* not an annotation */\n/* accumulate is not acc */\n";
        assert_eq!(strip_acc_annotations(src), src);
    }

    #[test]
    fn inline_annotation_leaves_the_rest_of_the_line() {
        let src = "    /* acc parallel */ for (int i = 0; i < n; i++) { }\n";
        assert_eq!(
            strip_acc_annotations(src),
            "     for (int i = 0; i < n; i++) { }\n"
        );
    }

    #[test]
    fn stripping_is_idempotent() {
        let src = "a\n  /* acc parallel */\nb /* acc parallel */ c\n// acc in a line comment\n";
        let once = strip_acc_annotations(src);
        assert_eq!(strip_acc_annotations(&once), once);
    }

    #[test]
    fn stripped_source_compiles_without_annotated_loops() {
        let src = "static void f(double[] a, int n) {\n    /* acc parallel copyin(a[0:n]) copyout(a[0:n]) */\n    for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0; }\n}\n";
        let bare = strip_acc_annotations(src);
        let p = crate::compile_source(&bare).expect("bare source compiles");
        let f = &p.functions[0];
        assert!(f.all_loops().iter().all(|l| l.annot.is_none()));
        // The annotated original still has the same loop ids in the same
        // order — the property the auto-parallelizer's oracle relies on.
        let hand = crate::compile_source(src).expect("hand source compiles");
        let ids = |p: &japonica_ir::Program| {
            p.functions[0]
                .all_loops()
                .iter()
                .map(|l| l.id)
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&p), ids(&hand));
    }

    #[test]
    fn unterminated_annotation_comment_is_dropped_to_eof() {
        let src = "x\n/* acc parallel";
        assert_eq!(strip_acc_annotations(src), "x\n");
    }
}

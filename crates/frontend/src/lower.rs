//! Lowering from the MiniJava AST to the loop IR.
//!
//! The main transformation is loop canonicalization: every annotated `for`
//! loop must be expressible as `for (i = start; i < end; i += step)` with a
//! positive step, because that is the iteration space the parallelizer,
//! GPU-TLS and the scheduler chunk over. Non-canonical, *un-annotated* loops
//! are desugared into `while` loops instead.

use crate::annot::AAnnot;
use crate::ast::*;
use crate::error::{CompileError, Pos};
use japonica_ir::{
    ArrayRange, BinOp, Expr, ForLoop, Function, LoopAnnotation, LoopId, Param, ParamTy, Program,
    Span, Stmt, Ty, VarId,
};
use std::collections::HashMap;

/// Convert a frontend position into an IR span.
fn sp(p: Pos) -> Span {
    Span::new(p.line, p.col)
}

/// Lower a checked compilation unit.
pub fn lower(unit: &Unit) -> Result<Program, CompileError> {
    let fn_ids: HashMap<&str, japonica_ir::FnId> = unit
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), japonica_ir::FnId(i as u32)))
        .collect();
    let mut program = Program::new();
    let mut next_loop = 0u32;
    for f in &unit.functions {
        let mut lw = Lowerer {
            fn_ids: &fn_ids,
            scopes: Vec::new(),
            next_var: 0,
            var_names: Vec::new(),
            next_loop: &mut next_loop,
        };
        program.add_function(lw.lower_function(f)?);
    }
    Ok(program)
}

struct Lowerer<'u> {
    fn_ids: &'u HashMap<&'u str, japonica_ir::FnId>,
    scopes: Vec<HashMap<String, (VarId, AType)>>,
    next_var: u32,
    var_names: Vec<String>,
    next_loop: &'u mut u32,
}

impl<'u> Lowerer<'u> {
    fn fresh(&mut self, name: &str) -> VarId {
        let v = VarId(self.next_var);
        self.next_var += 1;
        self.var_names.push(name.to_string());
        v
    }

    fn fresh_loop(&mut self) -> LoopId {
        let id = LoopId(*self.next_loop);
        *self.next_loop += 1;
        id
    }

    fn declare(&mut self, name: &str, ty: AType) -> VarId {
        let v = self.fresh(name);
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), (v, ty));
        v
    }

    fn lookup(&self, name: &str, pos: Pos) -> Result<(VarId, AType), CompileError> {
        for scope in self.scopes.iter().rev() {
            if let Some(&v) = scope.get(name) {
                return Ok(v);
            }
        }
        Err(CompileError::at(
            pos,
            format!("undeclared variable `{name}`"),
        ))
    }

    fn lower_function(&mut self, f: &AFunction) -> Result<Function, CompileError> {
        self.scopes.push(HashMap::new());
        let mut params = Vec::new();
        for (ty, name, _) in &f.params {
            let var = self.declare(name, *ty);
            params.push(Param {
                name: name.clone(),
                var,
                ty: match ty {
                    AType::Prim(t) => ParamTy::Scalar(*t),
                    AType::Array(t) => ParamTy::Array(*t),
                },
            });
        }
        let body = self.lower_block(&f.body)?;
        self.scopes.pop();
        Ok(Function {
            name: f.name.clone(),
            params,
            ret: f.ret,
            body,
            num_vars: self.next_var,
            var_names: std::mem::take(&mut self.var_names),
            span: sp(f.pos),
        })
    }

    fn lower_block(&mut self, stmts: &[AStmt]) -> Result<Vec<Stmt>, CompileError> {
        self.scopes.push(HashMap::new());
        let mut out = Vec::new();
        for s in stmts {
            self.lower_stmt(s, &mut out)?;
        }
        self.scopes.pop();
        Ok(out)
    }

    fn lower_stmt(&mut self, s: &AStmt, out: &mut Vec<Stmt>) -> Result<(), CompileError> {
        match &s.kind {
            AStmtKind::Decl { ty, name, init } => match (ty, init) {
                (AType::Prim(t), init) => {
                    let e = match init {
                        Some(AInit::Expr(e)) => Some(self.lower_expr(e)?),
                        Some(AInit::NewArray { .. }) => {
                            return Err(CompileError::at(
                                s.pos,
                                "cannot assign an array to a scalar",
                            ))
                        }
                        None => None,
                    };
                    let var = self.declare(name, *ty);
                    out.push(Stmt::DeclVar {
                        var,
                        ty: *t,
                        init: e,
                    });
                }
                (AType::Array(_), Some(AInit::NewArray { elem, len })) => {
                    let len = self.lower_expr(len)?;
                    let var = self.declare(name, *ty);
                    out.push(Stmt::NewArray {
                        var,
                        elem: *elem,
                        len,
                    });
                }
                (AType::Array(_), Some(AInit::Expr(e))) => {
                    let value = self.lower_expr(e)?;
                    let var = self.declare(name, *ty);
                    out.push(Stmt::Assign { var, value });
                }
                (AType::Array(_), None) => {
                    // Declared but unassigned array reference; slot stays
                    // unbound until assigned.
                    self.declare(name, *ty);
                }
            },
            AStmtKind::Assign { target, op, value } => {
                let rhs = self.lower_expr(value)?;
                match target {
                    ATarget::Var(name) => {
                        let (var, _) = self.lookup(name, s.pos)?;
                        let value = match op {
                            Some(op) => Expr::Binary(*op, Box::new(Expr::Var(var)), Box::new(rhs)),
                            None => rhs,
                        };
                        out.push(Stmt::Assign { var, value });
                    }
                    ATarget::Elem(name, idx) => {
                        let (array, _) = self.lookup(name, s.pos)?;
                        let index = self.lower_expr(idx)?;
                        let value = match op {
                            Some(op) => Expr::Binary(
                                *op,
                                Box::new(Expr::Index {
                                    array,
                                    index: Box::new(index.clone()),
                                }),
                                Box::new(rhs),
                            ),
                            None => rhs,
                        };
                        out.push(Stmt::Store {
                            array,
                            index,
                            value,
                            span: sp(s.pos),
                        });
                    }
                }
            }
            AStmtKind::IncDec { name, inc } => {
                let (var, _) = self.lookup(name, s.pos)?;
                let op = if *inc { BinOp::Add } else { BinOp::Sub };
                out.push(Stmt::Assign {
                    var,
                    value: Expr::Binary(op, Box::new(Expr::Var(var)), Box::new(Expr::int(1))),
                });
            }
            AStmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond = self.lower_expr(cond)?;
                let then_branch = self.lower_block(then_branch)?;
                let else_branch = self.lower_block(else_branch)?;
                out.push(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                });
            }
            AStmtKind::While { cond, body } => {
                let cond = self.lower_expr(cond)?;
                let body = self.lower_block(body)?;
                out.push(Stmt::While { cond, body });
            }
            AStmtKind::For { .. } => self.lower_for(s, out)?,
            AStmtKind::Return(e) => {
                let e = e.as_ref().map(|e| self.lower_expr(e)).transpose()?;
                out.push(Stmt::Return(e));
            }
            AStmtKind::Break => out.push(Stmt::Break),
            AStmtKind::Continue => out.push(Stmt::Continue),
            AStmtKind::ExprStmt(e) => {
                let e = self.lower_expr(e)?;
                out.push(Stmt::ExprStmt(e));
            }
            AStmtKind::Block(b) => {
                let stmts = self.lower_block(b)?;
                out.extend(stmts);
            }
        }
        Ok(())
    }

    fn lower_for(&mut self, s: &AStmt, out: &mut Vec<Stmt>) -> Result<(), CompileError> {
        let (annot, init, cond, update, body) = match &s.kind {
            AStmtKind::For {
                annot,
                init,
                cond,
                update,
                body,
            } => (annot, init, cond, update, body),
            _ => unreachable!(),
        };
        self.scopes.push(HashMap::new());
        let result = self.lower_for_inner(s.pos, annot, init, cond, update, body, out);
        self.scopes.pop();
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_for_inner(
        &mut self,
        pos: Pos,
        annot: &Option<AAnnot>,
        init: &Option<Box<AStmt>>,
        cond: &AExpr,
        update: &Option<Box<AStmt>>,
        body: &[AStmt],
        out: &mut Vec<Stmt>,
    ) -> Result<(), CompileError> {
        // Try the canonical pattern.
        if let Some(canon) = self.try_canonical(init, cond, update)? {
            let (ivar, start, end, step) = canon;
            let annot = annot.as_ref().map(|a| self.lower_annot(a)).transpose()?;
            let id = self.fresh_loop();
            let body = self.lower_block(body)?;
            out.push(Stmt::For(ForLoop {
                id,
                var: ivar,
                start,
                end,
                step,
                body,
                annot,
                span: sp(pos),
            }));
            return Ok(());
        }
        if annot.is_some() {
            return Err(CompileError::at(
                pos,
                "annotated loops must be canonical: `for (int i = s; i < e; i += c)` \
                 with a positive constant-free step",
            ));
        }
        // Desugar a general for-loop into init + while { body; update }.
        if let Some(i) = init {
            self.lower_stmt(i, out)?;
        }
        let cond = self.lower_expr(cond)?;
        let mut wbody = self.lower_block(body)?;
        if contains_continue(body) {
            return Err(CompileError::at(
                pos,
                "`continue` in a non-canonical for loop is not supported",
            ));
        }
        if let Some(u) = update {
            self.lower_stmt(u, &mut wbody)?;
        }
        out.push(Stmt::While { cond, body: wbody });
        Ok(())
    }

    /// Recognize `for (int i = s; i < e; i += c)` shapes.
    /// Returns `(ivar, start, end, step)` when canonical.
    fn try_canonical(
        &mut self,
        init: &Option<Box<AStmt>>,
        cond: &AExpr,
        update: &Option<Box<AStmt>>,
    ) -> Result<Option<(VarId, Expr, Expr, Expr)>, CompileError> {
        // --- init must bind one int variable ---
        let (name, start_ast, declares) = match init.as_deref() {
            Some(AStmt {
                kind:
                    AStmtKind::Decl {
                        ty: AType::Prim(Ty::Int),
                        name,
                        init: Some(AInit::Expr(e)),
                    },
                ..
            }) => (name.clone(), e.clone(), true),
            Some(AStmt {
                kind:
                    AStmtKind::Assign {
                        target: ATarget::Var(name),
                        op: None,
                        value,
                    },
                ..
            }) => (name.clone(), value.clone(), false),
            _ => return Ok(None),
        };
        // --- cond must be `i < e` or `i <= e` ---
        let (end_ast, inclusive) = match &cond.kind {
            AExprKind::Binary(BinOp::Lt, l, r) => match &l.kind {
                AExprKind::Name(n) if *n == name => ((**r).clone(), false),
                _ => return Ok(None),
            },
            AExprKind::Binary(BinOp::Le, l, r) => match &l.kind {
                AExprKind::Name(n) if *n == name => ((**r).clone(), true),
                _ => return Ok(None),
            },
            _ => return Ok(None),
        };
        // --- update must advance i by a loop-invariant positive step ---
        let step_ast: Option<AExpr> = match update.as_deref() {
            Some(AStmt {
                kind: AStmtKind::IncDec { name: n, inc: true },
                pos,
            }) if *n == name => Some(AExpr::new(AExprKind::Int(1), *pos)),
            Some(AStmt {
                kind:
                    AStmtKind::Assign {
                        target: ATarget::Var(n),
                        op: Some(BinOp::Add),
                        value,
                    },
                ..
            }) if *n == name => Some(value.clone()),
            Some(AStmt {
                kind:
                    AStmtKind::Assign {
                        target: ATarget::Var(n),
                        op: None,
                        value,
                    },
                ..
            }) if *n == name => match &value.kind {
                // i = i + step  |  i = step + i
                AExprKind::Binary(BinOp::Add, l, r) => match (&l.kind, &r.kind) {
                    (AExprKind::Name(m), _) if *m == name => Some((**r).clone()),
                    (_, AExprKind::Name(m)) if *m == name => Some((**l).clone()),
                    _ => None,
                },
                _ => None,
            },
            _ => None,
        };
        let step_ast = match step_ast {
            Some(s) => s,
            None => return Ok(None),
        };
        // The step must not reference the induction variable.
        if expr_uses_name(&step_ast, &name) || expr_uses_name(&end_ast, &name) {
            return Ok(None);
        }

        // Lower pieces. The induction variable is declared in the loop's own
        // scope when the init was a declaration.
        let start = self.lower_expr(&start_ast)?;
        let end = self.lower_expr(&end_ast)?;
        let end = if inclusive {
            end.add(Expr::int(1))
        } else {
            end
        };
        let step = self.lower_expr(&step_ast)?;
        let ivar = if declares {
            self.declare(&name, AType::Prim(Ty::Int))
        } else {
            self.lookup(&name, Pos::default())?.0
        };
        Ok(Some((ivar, start, end, step)))
    }

    fn lower_annot(&mut self, a: &AAnnot) -> Result<LoopAnnotation, CompileError> {
        let mut out = LoopAnnotation {
            parallel: a.parallel,
            threads: a.threads,
            scheme: a.scheme,
            span: sp(a.pos),
            ..LoopAnnotation::default()
        };
        for (name, pos) in &a.private {
            out.private.push(self.lookup(name, *pos)?.0);
            out.private_spans.push(sp(*pos));
        }
        let lower_ranges = |lw: &mut Self,
                            src: &[crate::annot::ARange]|
         -> Result<Vec<ArrayRange>, CompileError> {
            src.iter()
                .map(|r| {
                    let (array, _) = lw.lookup(&r.name, r.pos)?;
                    Ok(ArrayRange {
                        array,
                        lo: r.lo.as_ref().map(|e| lw.lower_expr(e)).transpose()?,
                        hi: r.hi.as_ref().map(|e| lw.lower_expr(e)).transpose()?,
                        span: sp(r.pos),
                    })
                })
                .collect()
        };
        out.copyin = lower_ranges(self, &a.copyin)?;
        out.copyout = lower_ranges(self, &a.copyout)?;
        out.create = lower_ranges(self, &a.create)?;
        Ok(out)
    }

    fn lower_expr(&mut self, e: &AExpr) -> Result<Expr, CompileError> {
        Ok(match &e.kind {
            AExprKind::Int(v) => Expr::int(*v),
            AExprKind::Long(v) => Expr::long(*v),
            AExprKind::Float(v) => Expr::float(*v),
            AExprKind::Double(v) => Expr::double(*v),
            AExprKind::Bool(v) => Expr::bool(*v),
            AExprKind::Name(n) => Expr::Var(self.lookup(n, e.pos)?.0),
            AExprKind::Unary(op, a) => Expr::Unary(*op, Box::new(self.lower_expr(a)?)),
            AExprKind::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(self.lower_expr(a)?),
                Box::new(self.lower_expr(b)?),
            ),
            AExprKind::Cast(ty, a) => Expr::Cast(*ty, Box::new(self.lower_expr(a)?)),
            AExprKind::Index(n, idx) => Expr::Index {
                array: self.lookup(n, e.pos)?.0,
                index: Box::new(self.lower_expr(idx)?),
            },
            AExprKind::Length(n) => Expr::Len(self.lookup(n, e.pos)?.0),
            AExprKind::Math(f, args) => Expr::Intrinsic(
                *f,
                args.iter()
                    .map(|a| self.lower_expr(a))
                    .collect::<Result<_, _>>()?,
            ),
            AExprKind::Call(name, args) => {
                let fid = *self
                    .fn_ids
                    .get(name.as_str())
                    .ok_or_else(|| CompileError::at(e.pos, format!("unknown function `{name}`")))?;
                Expr::Call(
                    fid,
                    args.iter()
                        .map(|a| self.lower_expr(a))
                        .collect::<Result<_, _>>()?,
                )
            }
            AExprKind::Ternary(c, t, f) => Expr::Ternary(
                Box::new(self.lower_expr(c)?),
                Box::new(self.lower_expr(t)?),
                Box::new(self.lower_expr(f)?),
            ),
        })
    }
}

fn expr_uses_name(e: &AExpr, name: &str) -> bool {
    match &e.kind {
        AExprKind::Name(n) => n == name,
        AExprKind::Index(n, idx) => n == name || expr_uses_name(idx, name),
        AExprKind::Length(n) => n == name,
        AExprKind::Unary(_, a) | AExprKind::Cast(_, a) => expr_uses_name(a, name),
        AExprKind::Binary(_, a, b) => expr_uses_name(a, name) || expr_uses_name(b, name),
        AExprKind::Math(_, args) | AExprKind::Call(_, args) => {
            args.iter().any(|a| expr_uses_name(a, name))
        }
        AExprKind::Ternary(c, t, f) => {
            expr_uses_name(c, name) || expr_uses_name(t, name) || expr_uses_name(f, name)
        }
        _ => false,
    }
}

fn contains_continue(stmts: &[AStmt]) -> bool {
    stmts.iter().any(|s| match &s.kind {
        AStmtKind::Continue => true,
        AStmtKind::If {
            then_branch,
            else_branch,
            ..
        } => contains_continue(then_branch) || contains_continue(else_branch),
        AStmtKind::Block(b) => contains_continue(b),
        // continue inside a nested loop binds to that loop
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;
    use japonica_ir::{Heap, HeapBackend, Interp, Value};

    #[test]
    fn canonical_for_becomes_forloop() {
        let p = compile_source(
            r#"static void f(double[] a, int n) {
                /* acc parallel */
                for (int i = 0; i < n; i++) { a[i] = 1.0; }
            }"#,
        )
        .unwrap();
        let f = &p.functions[0];
        match &f.body[0] {
            Stmt::For(l) => {
                assert!(l.is_annotated());
                assert_eq!(l.step, Expr::int(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn le_condition_becomes_exclusive_end() {
        let p = compile_source(
            "static void f(int[] a, int n) { for (int i = 0; i <= n; i++) { a[i] = i; } }",
        )
        .unwrap();
        match &p.functions[0].body[0] {
            Stmt::For(l) => assert_eq!(l.end, Expr::Var(VarId(1)).add(Expr::int(1))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_canonical_annotated_loop_rejected() {
        let err = compile_source(
            r#"static void f(int[] a, int n) {
                /* acc parallel */
                for (int i = n; i > 0; i = i - 1) { a[i] = i; }
            }"#,
        )
        .unwrap_err();
        assert!(err.msg.contains("canonical"));
    }

    #[test]
    fn non_canonical_plain_loop_desugars_to_while() {
        let p = compile_source(
            "static void f(int[] a, int n) { for (int i = n; i > 0; i = i - 1) { a[i - 1] = i; } }",
        )
        .unwrap();
        assert!(matches!(&p.functions[0].body[1], Stmt::While { .. }));
    }

    #[test]
    fn desugared_loop_executes_correctly() {
        let p = compile_source(
            "static int f(int n) {
                int s = 0;
                for (int i = n; i > 0; i = i - 1) { s += i; }
                return s;
            }",
        )
        .unwrap();
        let mut heap = Heap::new();
        let mut be = HeapBackend::new(&mut heap);
        let r = Interp::new(&p)
            .call_by_name("f", &[Value::Int(4)], &mut be)
            .unwrap();
        assert_eq!(r, Some(Value::Int(10)));
    }

    #[test]
    fn end_to_end_annotated_gemm_like_loop() {
        let p = compile_source(
            r#"static void axpy(double[] x, double[] y, double a, int n) {
                /* acc parallel copyin(x[0:n]) copyout(y[0:n]) */
                for (int i = 0; i < n; i++) {
                    y[i] = a * x[i] + y[i];
                }
            }"#,
        )
        .unwrap();
        let mut heap = Heap::new();
        let x = heap.alloc_doubles(&[1.0, 2.0]);
        let y = heap.alloc_doubles(&[10.0, 20.0]);
        let mut be = HeapBackend::new(&mut heap);
        Interp::new(&p)
            .call_by_name(
                "axpy",
                &[
                    Value::Array(x),
                    Value::Array(y),
                    Value::Double(2.0),
                    Value::Int(2),
                ],
                &mut be,
            )
            .unwrap();
        assert_eq!(heap.read_doubles(y).unwrap(), vec![12.0, 24.0]);
    }

    #[test]
    fn annotation_ranges_are_lowered() {
        let p = compile_source(
            r#"static void f(double[] a, int n) {
                /* acc parallel copyin(a[0:n*n]) threads(8) scheme(stealing) */
                for (int i = 0; i < n; i++) { a[i] = 0.0; }
            }"#,
        )
        .unwrap();
        match &p.functions[0].body[0] {
            Stmt::For(l) => {
                let a = l.annot.as_ref().unwrap();
                assert_eq!(a.threads, Some(8));
                assert_eq!(a.scheme, Some(japonica_ir::Scheme::Stealing));
                assert_eq!(a.copyin.len(), 1);
                assert!(a.copyin[0].lo.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spans_thread_from_source_into_ir() {
        let p = compile_source(
            "static void f(double[] a, int n) {\n    /* acc parallel copyin(a[0:n]) */\n    for (int i = 0; i < n; i++) { a[i] = 0.0; }\n}",
        )
        .unwrap();
        let f = &p.functions[0];
        assert_eq!((f.span.line, f.span.col), (1, 1));
        match &f.body[0] {
            Stmt::For(l) => {
                assert_eq!(l.span.line, 3);
                assert!(l.span.is_known());
                let a = l.annot.as_ref().unwrap();
                assert_eq!(a.span.line, 2);
                assert_eq!(a.copyin[0].span.line, 2);
                assert!(a.copyin[0].span.col > a.span.col);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn loop_ids_unique_across_functions() {
        let p = compile_source(
            r#"
            static void f(int[] a, int n) { for (int i = 0; i < n; i++) { a[i] = i; } }
            static void g(int[] a, int n) { for (int i = 0; i < n; i++) { a[i] = i; } }
            "#,
        )
        .unwrap();
        let l0 = match &p.functions[0].body[0] {
            Stmt::For(l) => l.id,
            _ => panic!(),
        };
        let l1 = match &p.functions[1].body[0] {
            Stmt::For(l) => l.id,
            _ => panic!(),
        };
        assert_ne!(l0, l1);
    }

    #[test]
    fn function_calls_resolve_across_declaration_order() {
        let p = compile_source(
            r#"
            static int f(int x) { return g(x) + 1; }
            static int g(int x) { return x * 2; }
            "#,
        )
        .unwrap();
        let mut heap = Heap::new();
        let mut be = HeapBackend::new(&mut heap);
        let r = Interp::new(&p)
            .call_by_name("f", &[Value::Int(5)], &mut be)
            .unwrap();
        assert_eq!(r, Some(Value::Int(11)));
    }

    #[test]
    fn compound_and_incdec_lowering_runs() {
        let p = compile_source(
            r#"static int f(int n) {
                int s = 0;
                int i = 0;
                while (i < n) { s += i * 2; i++; }
                return s;
            }"#,
        )
        .unwrap();
        let mut heap = Heap::new();
        let mut be = HeapBackend::new(&mut heap);
        let r = Interp::new(&p)
            .call_by_name("f", &[Value::Int(4)], &mut be)
            .unwrap();
        assert_eq!(r, Some(Value::Int(12)));
    }

    #[test]
    fn step_referencing_induction_var_is_not_canonical() {
        let p = compile_source(
            "static void f(int[] a, int n) { for (int i = 1; i < n; i = i + i) { a[i] = 1; } }",
        )
        .unwrap();
        // geometric step -> desugared to while, not ForLoop
        assert!(matches!(&p.functions[0].body[1], Stmt::While { .. }));
    }
}

//! Round-trip property: source → IR → pretty-printed MiniJava → IR, with
//! identical execution semantics.

use japonica_frontend::compile_source;
use japonica_ir::{pretty, Heap, HeapBackend, Interp, Value};

fn roundtrip_and_compare(src: &str, entry: &str, args_factory: impl Fn(&mut Heap) -> Vec<Value>) {
    let p1 = compile_source(src).unwrap();
    let printed = pretty::program(&p1);
    let p2 = compile_source(&printed)
        .unwrap_or_else(|e| panic!("pretty output must re-parse: {e}\n{printed}"));

    let run = |p: &japonica_ir::Program| {
        let mut heap = Heap::new();
        let args = args_factory(&mut heap);
        let ret = {
            let mut be = HeapBackend::new(&mut heap);
            Interp::new(p).call_by_name(entry, &args, &mut be).unwrap()
        };
        let arrays: Vec<Vec<f64>> = args
            .iter()
            .filter_map(|v| v.as_array())
            .map(|a| heap.read_doubles(a).unwrap())
            .collect();
        (ret, arrays)
    };
    assert_eq!(run(&p1), run(&p2), "semantics diverged:\n{printed}");
}

#[test]
fn roundtrip_annotated_stencil() {
    roundtrip_and_compare(
        r#"static void st(double[] a, double[] b, int n) {
            /* acc parallel copyin(a[0:n]) copyout(b[1:n]) threads(8) */
            for (int i = 1; i < n - 1; i++) {
                b[i] = (a[i - 1] + a[i + 1]) * 0.5;
            }
        }"#,
        "st",
        |heap| {
            let a = heap.alloc_doubles(&(0..64).map(|i| (i * i) as f64).collect::<Vec<_>>());
            let b = heap.alloc_doubles(&vec![0.0; 64]);
            vec![Value::Array(a), Value::Array(b), Value::Int(64)]
        },
    );
}

#[test]
fn roundtrip_control_flow_zoo() {
    roundtrip_and_compare(
        r#"static double zoo(double[] a, int n) {
            double acc = 0.0;
            int i = 0;
            while (i < n) {
                if (i % 3 == 0) { acc += a[i] * 2.0; }
                else {
                    if (i % 3 == 1) { acc -= a[i]; } else { acc += Math.sqrt(Math.abs(a[i])); }
                }
                i++;
            }
            for (int j = 0; j < n; j += 2) { a[j] = acc > 0.0 ? acc : 0.0 - acc; }
            return acc;
        }"#,
        "zoo",
        |heap| {
            let a = heap.alloc_doubles(&(0..32).map(|i| i as f64 - 16.0).collect::<Vec<_>>());
            vec![Value::Array(a), Value::Int(32)]
        },
    );
}

#[test]
fn roundtrip_calls_and_bitops() {
    roundtrip_and_compare(
        r#"
        static int mix(int v, int k) {
            v = v ^ k;
            v = (v << 5) | (v >>> 27);
            return v;
        }
        static void enc(double[] out, int n) {
            for (int i = 0; i < n; i++) {
                out[i] = mix(i * 1640531527, 12345) % 1000;
            }
        }"#,
        "enc",
        |heap| {
            let out = heap.alloc_doubles(&vec![0.0; 50]);
            vec![Value::Array(out), Value::Int(50)]
        },
    );
}

#[test]
fn roundtrip_scheme_and_create_clauses() {
    roundtrip_and_compare(
        r#"static void f(double[] t, double[] o, int n, int b) {
            /* acc parallel create(t) copyout(o[0:n]) scheme(stealing) */
            for (int i = 0; i < n; i++) {
                t[i % b] = i * 1.5;
                o[i] = t[i % b];
            }
        }"#,
        "f",
        |heap| {
            let t = heap.alloc_doubles(&[0.0; 16]);
            let o = heap.alloc_doubles(&vec![0.0; 200]);
            vec![
                Value::Array(t),
                Value::Array(o),
                Value::Int(200),
                Value::Int(16),
            ]
        },
    );
}

#[test]
fn pretty_output_preserves_annotations() {
    let p = compile_source(
        r#"static void f(double[] a, int n) {
            /* acc parallel copyin(a[0:n]) threads(4) scheme(sharing) */
            for (int i = 0; i < n; i++) { a[i] = 0.0; }
        }"#,
    )
    .unwrap();
    let printed = pretty::program(&p);
    assert!(printed.contains("/* acc parallel"));
    assert!(printed.contains("copyin(a[0:n])"));
    assert!(printed.contains("threads(4)"));
    assert!(printed.contains("scheme(sharing)"));
    // and the re-parsed program keeps the annotation
    let p2 = compile_source(&printed).unwrap();
    let l = p2.functions[0].all_loops()[0].clone();
    let a = l.annot.unwrap();
    assert_eq!(a.threads, Some(4));
    assert_eq!(a.copyin.len(), 1);
}

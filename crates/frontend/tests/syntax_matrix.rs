//! Broad syntax/semantics matrix for the MiniJava front end: each case is a
//! small program executed through the interpreter with a known result, or a
//! source that must be rejected with a specific diagnostic.

use japonica_frontend::compile_source;
use japonica_ir::{Heap, HeapBackend, Interp, Value};

fn eval(src: &str, entry: &str, args: &[Value]) -> Option<Value> {
    let p = compile_source(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let mut heap = Heap::new();
    let mut be = HeapBackend::new(&mut heap);
    Interp::new(&p).call_by_name(entry, args, &mut be).unwrap()
}

fn eval_int(src: &str) -> i64 {
    eval(src, "f", &[]).unwrap().as_i64().unwrap()
}

fn eval_f64(src: &str) -> f64 {
    eval(src, "f", &[]).unwrap().as_f64().unwrap()
}

fn rejected(src: &str) -> String {
    compile_source(src).unwrap_err().msg
}

// ---- operator precedence & semantics ----------------------------------

#[test]
fn precedence_matrix() {
    let cases: &[(&str, i64)] = &[
        ("2 + 3 * 4", 14),
        ("(2 + 3) * 4", 20),
        ("2 - 3 - 4", -5),   // left assoc
        ("100 / 10 / 5", 2), // left assoc
        ("7 % 3 + 1", 2),
        ("1 << 3 + 1", 16), // shift below additive
        ("16 >> 1 >> 1", 4),
        ("5 & 3 | 8", 9), // & binds tighter than |
        ("5 ^ 3 & 1", 4), // & tighter than ^
        ("-2 * 3", -6),
        ("~0 + 1", 0),
        ("1 + 2 < 4 ? 10 : 20", 10), // relational in ternary guard
    ];
    for (expr, expect) in cases {
        let src = format!("static int f() {{ return {expr}; }}");
        assert_eq!(eval_int(&src), *expect, "{expr}");
    }
}

#[test]
fn boolean_operator_matrix() {
    let cases: &[(&str, bool)] = &[
        ("true && false || true", true), // && tighter than ||
        ("!(1 > 2) && 3 >= 3", true),
        ("1 != 2 == true", true), // relational then equality
        ("true ^ true", false),
        ("false | true", true),
    ];
    for (expr, expect) in cases {
        let src = format!("static boolean f() {{ return {expr}; }}");
        assert_eq!(
            eval(&src, "f", &[]).unwrap(),
            Value::Bool(*expect),
            "{expr}"
        );
    }
}

#[test]
fn numeric_literal_and_cast_matrix() {
    assert_eq!(eval_f64("static double f() { return 1e2 + 0.5; }"), 100.5);
    assert_eq!(eval_int("static int f() { return (int) 3.99; }"), 3);
    assert_eq!(eval_int("static int f() { return (int) -3.99; }"), -3);
    assert_eq!(
        eval("static long f() { return 0x7fffffffffffffffL; }", "f", &[]).unwrap(),
        Value::Long(i64::MAX)
    );
    assert_eq!(
        eval_f64("static double f() { return (double) 7 / 2; }"),
        3.5
    );
    assert_eq!(eval_int("static int f() { return 7 / 2; }"), 3);
}

#[test]
fn string_of_control_flow_forms() {
    let src = r#"
        static int f() {
            int total = 0;
            for (int i = 0; i < 10; i++) {
                if (i == 3) { continue; }
                if (i == 8) { break; }
                int j = 0;
                while (j < i) {
                    total += 1;
                    j++;
                }
            }
            return total;
        }
    "#;
    // i in {0,1,2,4,5,6,7}: sum = 0+1+2+4+5+6+7 = 25
    assert_eq!(eval_int(src), 25);
}

#[test]
fn mutual_recursion_and_helpers() {
    let src = r#"
        static boolean isEven(int n) { if (n == 0) { return true; } return isOdd(n - 1); }
        static boolean isOdd(int n) { if (n == 0) { return false; } return isEven(n - 1); }
        static int f() { if (isEven(10)) { return 1; } return 0; }
    "#;
    assert_eq!(eval(src, "f", &[]).unwrap(), Value::Int(1));
}

#[test]
fn arrays_as_arguments_share_identity() {
    let src = r#"
        static void bump(int[] a, int k) { a[k] = a[k] + 1; }
        static int f() {
            int[] a = new int[3];
            bump(a, 1);
            bump(a, 1);
            return a[1];
        }
    "#;
    assert_eq!(eval_int(src), 2);
}

#[test]
fn math_intrinsics_smoke() {
    assert!((eval_f64("static double f() { return Math.exp(0.0); }") - 1.0).abs() < 1e-12);
    assert!((eval_f64("static double f() { return Math.pow(2.0, 10.0); }") - 1024.0).abs() < 1e-9);
    assert_eq!(
        eval_f64("static double f() { return Math.floor(2.7); }"),
        2.0
    );
    assert_eq!(
        eval_f64("static double f() { return Math.ceil(2.1); }"),
        3.0
    );
    assert_eq!(
        eval(
            "static int f() { return Math.max(3, Math.min(9, 5)); }",
            "f",
            &[]
        )
        .unwrap(),
        Value::Int(5)
    );
}

// ---- rejection matrix ---------------------------------------------------

#[test]
fn rejection_matrix() {
    let cases: &[(&str, &str)] = &[
        ("static int f() { return true; }", "cannot assign"),
        ("static void f() { int x = 1.5 }", "expected `;`"),
        ("static void f() { unknown(); }", "unknown function"),
        ("static void f(int n) { n[0] = 1; }", "not an array"),
        (
            "static void f(int[] a) { a.size = 3; }",
            "only `.length`",
        ),
        ("static void f() { for (int i = 0 i < 3; i++) { } }", "expected `;`"),
        (
            "static void f(int n) { /* acc parallel copyout(n) */ for (int i = 0; i < n; i++) { } }",
            "not an array",
        ),
        (
            "static void f(int n) { /* acc parallel threads(-2) */ for (int i = 0; i < n; i++) { } }",
            "positive int",
        ),
        ("static int f() { }", "without returning"),
        ("static void f() { double d = 1.0; int x = 0; boolean b = d && x > 0; }", "cannot apply"),
    ];
    for (src, needle) in cases {
        let msg = rejected(src);
        assert!(
            msg.contains(needle),
            "source {src:?}: expected {needle:?} in {msg:?}"
        );
    }
}

#[test]
fn deeply_nested_scopes_resolve_correctly() {
    let src = r#"
        static int f() {
            int x = 1;
            {
                int y = x + 1;
                {
                    int x2 = y * 10;
                    x = x2 + x;
                }
            }
            return x;
        }
    "#;
    assert_eq!(eval_int(src), 21);
}

#[test]
fn annotated_loop_inside_helper_function_compiles() {
    let src = r#"
        static void helper(double[] a, int n) {
            /* acc parallel */
            for (int i = 0; i < n; i++) { a[i] = 1.0; }
        }
        static void f(double[] a, int n) {
            helper(a, n);
        }
    "#;
    let p = compile_source(src).unwrap();
    assert_eq!(p.functions.len(), 2);
    assert!(p.functions[0].all_loops()[0].is_annotated());
}

#[test]
fn large_generated_program_compiles_quickly() {
    // 120 functions, each with a loop: exercises scale paths in the
    // lexer/parser/checker/lowering.
    let mut src = String::new();
    for k in 0..120 {
        src.push_str(&format!(
            "static int fn{k}(int n) {{
                int s = 0;
                for (int i = 0; i < n; i++) {{ s += i * {k}; }}
                return s;
            }}\n"
        ));
    }
    let p = compile_source(&src).unwrap();
    assert_eq!(p.functions.len(), 120);
}
